"""Ablation: degree buckets (§3.7).

DStress pads every vertex's circuit to the global degree bound D, so one
highly connected bank makes *everyone's* MPC steps expensive. §3.7
proposes bucketing: vertices with small degree use a small-D circuit,
leaking approximate degree but shrinking most banks' computation.

This bench quantifies the trade on a core-periphery population, where the
bucket win is largest (a few high-degree core banks, many low-degree
peripheral banks).
"""

from __future__ import annotations

import pytest

from repro.finance import EisenbergNoeProgram
from repro.mpc.cost import gmw_cost
from repro.mpc.fixedpoint import FixedPointFormat
from tables import emit_table

FMT = FixedPointFormat(16, 8)


def _per_vertex_ots(degree_bound: int, parties: int) -> int:
    circuit = EisenbergNoeProgram(FMT).build_update_circuit(degree_bound)
    return gmw_cost(circuit, parties, 1, 1).total_ots


def test_degree_buckets(benchmark):
    parties = 4
    # Stylized population: 10 core banks with degree <= 8, 90 peripheral
    # banks with degree <= 2 (the Appendix C shape).
    core_banks, periphery_banks = 10, 90
    big_d, small_d = 8, 2

    uniform_cost = (core_banks + periphery_banks) * _per_vertex_ots(big_d, parties)
    bucketed_cost = core_banks * _per_vertex_ots(big_d, parties) + periphery_banks * _per_vertex_ots(small_d, parties)

    rows = [
        ["uniform D=8", uniform_cost / 1e6],
        ["buckets {2, 8}", bucketed_cost / 1e6],
        ["savings", (1 - bucketed_cost / uniform_cost) * 100],
    ]
    # §3.7's claim: "the MPC block computations for most banks would be
    # much faster" — expect a large win.
    assert bucketed_cost < 0.55 * uniform_cost

    emit_table(
        "Ablation - §3.7 degree buckets (EN step OTs per iteration, millions / % saved)",
        ["configuration", "value"],
        rows,
        [
            "100 banks: 10 core (degree <= 8), 90 peripheral (degree <= 2)",
            "cost: revealing one bit of approximate degree per bank",
        ],
    )
    benchmark.pedantic(lambda: _per_vertex_ots(2, parties), rounds=2, iterations=1)


def test_bucket_crossover(benchmark):
    """Where buckets stop paying: as the population becomes uniformly
    high-degree the savings vanish."""
    parties = 4
    big_d, small_d = 6, 2
    big_cost = _per_vertex_ots(big_d, parties)
    small_cost = _per_vertex_ots(small_d, parties)

    rows = []
    savings = []
    for high_fraction in (0.1, 0.5, 0.9):
        uniform = big_cost
        bucketed = high_fraction * big_cost + (1 - high_fraction) * small_cost
        saved = 1 - bucketed / uniform
        savings.append(saved)
        rows.append([high_fraction, saved * 100])
    assert savings[0] > savings[1] > savings[2]
    emit_table(
        "Ablation - bucket savings vs fraction of high-degree banks [%]",
        ["high-degree fraction", "savings"],
        rows,
        ["savings decay linearly as the high-degree bucket fills"],
    )
    benchmark.pedantic(lambda: _per_vertex_ots(2, parties), rounds=2, iterations=1)
