"""Ablation: OT backends under the GMW engine.

The paper's GMW inherits OT extension from Choi et al.; this bench prices
the alternatives on the same circuit: DDH base OT (public-key per AND
gate), IKNP extension (amortized symmetric crypto), the fast simulated
backend, and trusted-dealer Beaver triples.
"""

from __future__ import annotations

import time

import pytest

from repro.crypto.group import TOY_GROUP_64
from repro.crypto.ot import DDHObliviousTransfer, SimulatedObliviousTransfer
from repro.crypto.ot_extension import IKNPOTExtension
from repro.crypto.rng import DeterministicRNG
from repro.mpc.builder import CircuitBuilder
from repro.mpc.gmw import GMWEngine
from tables import emit_table


def _small_circuit():
    builder = CircuitBuilder()
    a = builder.input_bus("a", 8)
    b = builder.input_bus("b", 8)
    builder.output_bus("prod", builder.mul(a, b))
    return builder.circuit


def _run(engine: GMWEngine, circuit, rng) -> float:
    shares = {
        "a": engine.share_input(123, 8, rng),
        "b": engine.share_input(45, 8, rng),
    }
    started = time.perf_counter()
    result = engine.evaluate(circuit, shares, rng)
    elapsed = time.perf_counter() - started
    assert result.reveal("prod") == (123 * 45) & 0xFF
    return elapsed


def test_ot_backend_ablation(benchmark):
    rng = DeterministicRNG("ot-ablation")
    circuit = _small_circuit()
    parties = 3
    ands = circuit.stats().and_gates

    from repro.crypto.group import GROUP_256

    backends = [
        ("simulated", GMWEngine(parties, ot=SimulatedObliviousTransfer(TOY_GROUP_64))),
        # Base OT priced at a production group size — the whole reason
        # extension exists. (The toy group makes base OT artificially cheap.)
        ("DDH base OT", GMWEngine(parties, ot=DDHObliviousTransfer(GROUP_256))),
        (
            "IKNP extension",
            GMWEngine(
                parties,
                ot=IKNPOTExtension(DDHObliviousTransfer(TOY_GROUP_64), kappa=32, batch_size=2048),
            ),
        ),
        ("Beaver dealer", GMWEngine(parties, mode="beaver")),
    ]
    rows = []
    times = {}
    for label, engine in backends:
        elapsed = _run(engine, circuit, rng)
        times[label] = elapsed
        per_ot = elapsed / (ands * parties * (parties - 1))
        rows.append([label, elapsed * 1000, per_ot * 1e6])

    # Ordering claims: base OT is by far the slowest; extension beats it;
    # everything produces identical results (asserted inside _run).
    assert times["DDH base OT"] > 3 * times["IKNP extension"]
    assert times["DDH base OT"] > 3 * times["simulated"]

    emit_table(
        f"Ablation - GMW OT backends (8x8 multiplier, {ands} ANDs, 3 parties)",
        ["backend", "time [ms]", "per-OT cost [us]"],
        rows,
        [
            "all backends produce bit-identical outputs",
            "the paper's backend = extension regime; base OT per AND is untenable",
        ],
    )
    benchmark.pedantic(
        lambda: _run(GMWEngine(parties, ot=SimulatedObliviousTransfer(TOY_GROUP_64)), circuit, rng),
        rounds=3,
        iterations=1,
    )


def test_iknp_base_ot_amortization(benchmark):
    """Base-OT count is kappa per batch regardless of AND count."""
    rng = DeterministicRNG("amortize")
    circuit = _small_circuit()
    base = DDHObliviousTransfer(TOY_GROUP_64)
    ext = IKNPOTExtension(base, kappa=32, batch_size=4096)
    engine = GMWEngine(2, ot=ext)
    _run(engine, circuit, rng)
    total_ots = circuit.stats().and_gates * 2
    rows = [[total_ots, ext.base_ot_count, total_ots / max(1, ext.base_ot_count)]]
    assert ext.base_ot_count == 32  # exactly one extension phase
    emit_table(
        "Ablation - IKNP amortization (one batch)",
        ["extended OTs", "base OTs", "amortization factor"],
        rows,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
