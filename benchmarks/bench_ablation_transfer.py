"""Ablation: the §3.5 protocol refinements and the Kurosawa optimization.

The final transfer protocol is strawman #3 plus noise; each refinement
costs something. This bench prices the ladder — whole-share encryption
(#1), subshares (#2), per-bit + homomorphic sums (#3), noise (final) — and
quantifies the §5.1 Kurosawa ephemeral-key reuse, which trades L extra
public keys for saving L-1 exponentiations per subshare.
"""

from __future__ import annotations

import time

import pytest

from repro.crypto.elgamal import CountingGroup, ExponentialElGamal
from repro.crypto.group import TOY_GROUP_64
from repro.crypto.keys import SchnorrSigner
from repro.crypto.rng import DeterministicRNG
from repro.sharing import share_value
from repro.transfer.certificates import build_certificate, generate_member_keys
from repro.transfer.protocol import MessageTransferProtocol
from repro.transfer.strawman import Strawman1, Strawman2, Strawman3
from tables import emit_table

BITS = 12
BLOCK = 4


def test_protocol_ladder_costs(benchmark):
    rng = DeterministicRNG("ladder")
    rows = []

    def timed(label, fn):
        counting = CountingGroup(TOY_GROUP_64)
        elgamal = ExponentialElGamal(counting, dlog_half_width=4200)
        counting.reset()
        started = time.perf_counter()
        fn(elgamal)
        elapsed = time.perf_counter() - started
        rows.append([label, elapsed * 1000, counting.exp_count, counting.mul_count])

    timed("strawman #1 (whole shares)", lambda eg: Strawman1(eg, BITS).run(99, BLOCK, rng))
    timed("strawman #2 (subshares)", lambda eg: Strawman2(eg, BITS).run(99, BLOCK, rng))
    timed("strawman #3 (per-bit sums)", lambda eg: Strawman3(eg, BITS).run(99, BLOCK, rng))

    def final(eg):
        signer = SchnorrSigner(eg.group)
        tp = signer.keygen(rng)
        members = [generate_member_keys(eg, BITS, rng) for _ in range(BLOCK)]
        nk = eg.group.random_scalar(rng)
        cert = build_certificate(eg, signer, tp, 0, 0, members, nk, rng)
        proto = MessageTransferProtocol(eg, BITS, noise_alpha=0.5)
        shares = share_value(99, BITS, BLOCK, rng)
        proto.execute(shares, cert, nk, members, rng)

    timed("final (noise + rerandomized keys)", final)

    # The ladder must be monotone in exponentiation count: each privacy
    # refinement costs more crypto.
    exps = [row[2] for row in rows]
    assert exps[0] < exps[1] < exps[2]

    emit_table(
        "Ablation - §3.5 protocol ladder (block 4, 12-bit message)",
        ["protocol", "time [ms]", "exponentiations", "group mults"],
        rows,
        [
            "each refinement closes a demonstrated leak (see tests/test_transfer_strawmen.py)",
            "the final protocol adds noise + certificate handling on top of #3",
        ],
    )
    benchmark.pedantic(
        lambda: Strawman2(ExponentialElGamal(TOY_GROUP_64, dlog_half_width=4200), BITS).run(
            5, BLOCK, rng
        ),
        rounds=2,
        iterations=1,
    )


def test_kurosawa_optimization(benchmark):
    """§5.1: shared ephemeral keys across the L bit ciphertexts."""
    rng = DeterministicRNG("kurosawa")
    rows = []
    for bits in (4, 8, 12, 16):
        counting = CountingGroup(TOY_GROUP_64)
        elgamal = ExponentialElGamal(counting, dlog_half_width=64)
        keys = [elgamal.keygen(rng) for _ in range(bits)]
        publics = [kp.public for kp in keys]

        counting.reset()
        elgamal.encrypt_bits_kurosawa(publics, [1] * bits, rng)
        with_opt = counting.exp_count

        counting.reset()
        for pk in publics:
            elgamal.encrypt_int(pk, 1, rng)
        without_opt = counting.exp_count

        rows.append([bits, without_opt, with_opt, without_opt / with_opt])
        # Kurosawa: L+1+L exps (one g^y, per-bit pk^y and g^b) vs ~3L naive.
        assert with_opt < without_opt

    emit_table(
        "Ablation - Kurosawa multi-recipient encryption (exponentiations per subshare)",
        ["L bits", "naive", "Kurosawa", "speedup"],
        rows,
        ["the prototype applies this to every subshare (§5.1)"],
    )
    benchmark.pedantic(
        lambda: ExponentialElGamal(TOY_GROUP_64, dlog_half_width=16).keygen(rng),
        rounds=3,
        iterations=1,
    )


def test_noise_cost_negligible(benchmark):
    """Adding the edge-privacy noise costs L plaintext additions per
    receiver — it must not measurably change transfer time."""
    rng = DeterministicRNG("noise-cost")
    eg = ExponentialElGamal(TOY_GROUP_64, dlog_half_width=900)
    signer = SchnorrSigner(TOY_GROUP_64)
    tp = signer.keygen(rng)
    members = [generate_member_keys(eg, BITS, rng) for _ in range(BLOCK)]
    nk = TOY_GROUP_64.random_scalar(rng)
    cert = build_certificate(eg, signer, tp, 0, 0, members, nk, rng)

    def run(noise_alpha):
        proto = MessageTransferProtocol(eg, BITS, noise_alpha=noise_alpha)
        shares = share_value(7, BITS, BLOCK, rng)
        started = time.perf_counter()
        proto.execute(shares, cert, nk, members, rng)
        return time.perf_counter() - started

    base = min(run(None) for _ in range(3))
    noised = min(run(0.5) for _ in range(3))
    rows = [["no noise", base * 1000], ["with geometric noise", noised * 1000]]
    assert noised < base * 2.0
    emit_table(
        "Ablation - edge-privacy noise overhead per transfer [ms]",
        ["variant", "time"],
        rows,
        ["noise adds one g^n multiplication per bit ciphertext at node u"],
    )
    benchmark.pedantic(lambda: run(0.5), rounds=3, iterations=1)
