"""Async engine: overlap vs sequential under simulated WAN latency.

The async backend exists for exactly one reason: the paper's deployment
is WAN message-passing where rounds are transfer-bound (§6), so a vertex
that already holds its inbox should compute while slow links are still
in flight. This benchmark puts numbers on both claims the engine makes:

* **overlap wins wall-clock** — the same :class:`SimulatedWanTransport`
  schedule (10 ms per-link latency, the paper's same-continent regime)
  run sequentially (``overlap=False``: every send awaited one at a time)
  versus overlapped (per-vertex asyncio pipelines). The sequential run
  pays ``rounds x edges x latency``; the overlapped one pays roughly
  ``rounds x slowest-link`` — the gap is the benchmark.
* **pickling amortized to zero** — the sharded engine ships every
  shard's state through a process pool each round; the async engine's
  tasks share one address space. The table reports the per-run pickle
  bytes the sharded fan-out pays for the same graph, against the async
  engine's structural zero.

Correctness rides along: every timed run must be bit-identical to the
``plaintext`` reference before its row is worth printing.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI on every push) shrinks
the graphs so the full async path — transport, overlap, metering —
is exercised in seconds on both supported Pythons.
"""

from __future__ import annotations

import os
import pickle

from repro.api import StressTest
from repro.api.sharded import partition_vertices
from repro.core.program import NO_OP_MESSAGE
from repro.crypto.rng import DeterministicRNG
from repro.finance import apply_shock, uniform_shock
from repro.graphgen import (
    CorePeripheryParams,
    ScaleFreeParams,
    core_periphery_network,
    scale_free_network,
)
from tables import emit_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_BANKS = 8 if SMOKE else 24
ITERATIONS = 3 if SMOKE else 6
#: Paper regime: same-continent WAN links are ~10ms one way; the
#: acceptance bar for the async engine is beating sequential at >= 10ms.
LATENCY_SECONDS = 0.010
TASKS = 16


def _families():
    core = core_periphery_network(
        CorePeripheryParams(num_banks=NUM_BANKS, core_size=max(3, NUM_BANKS // 6)),
        DeterministicRNG(1),
    )
    free = scale_free_network(
        ScaleFreeParams(num_banks=NUM_BANKS, attach_links=2, degree_cap=8),
        DeterministicRNG(2),
    )
    return {
        "core-periphery": apply_shock(
            core, uniform_shock(range(max(3, NUM_BANKS // 6)), 0.9, "core")
        ),
        "scale-free": apply_shock(free, uniform_shock(range(3), 0.9, "hubs")),
    }


def _sharded_pickle_bytes(network, program_name, shards, iterations):
    """Bytes the sharded engine pickles per run for this graph: each round
    ships every shard's (states, inboxes) payload into the pool."""
    session = StressTest(network).program(program_name).seed(1)
    resolved = session.resolve(iterations, label="pickle-probe")
    graph, program = resolved.graph, resolved.program
    degree_bound = graph.degree_bound
    states = {
        v.vertex_id: program.initial_state(v, degree_bound) for v in graph.vertices()
    }
    inboxes = {v: [NO_OP_MESSAGE] * degree_bound for v in graph.vertex_ids}
    per_round = sum(
        len(
            pickle.dumps(
                (
                    {vid: states[vid] for vid in chunk},
                    {vid: inboxes[vid] for vid in chunk},
                )
            )
        )
        for chunk in partition_vertices(graph.vertex_ids, shards)
    )
    return per_round * (iterations + 1)


def test_async_overlap_beats_sequential_wan(benchmark):
    rows = []
    families = _families()
    for family, network in families.items():
        template = (
            StressTest(network)
            .program("eisenberg-noe")
            .seed(1)
            .configure(wan_latency_seconds=LATENCY_SECONDS, wan_jitter=0.25)
        )
        reference = template.clone().engine("plaintext").run(iterations=ITERATIONS)
        sequential = (
            template.clone()
            .engine("async", transport="wan", overlap=False)
            .run(iterations=ITERATIONS)
        )
        overlapped = (
            template.clone()
            .engine("async", transport="wan", tasks=TASKS)
            .run(iterations=ITERATIONS)
        )
        # correctness first: latency must never move a bit
        assert sequential.trajectory == reference.trajectory, family
        assert overlapped.trajectory == reference.trajectory, family
        # the acceptance bar: overlap beats the sequential schedule
        assert overlapped.wall_seconds < sequential.wall_seconds, (
            family,
            overlapped.wall_seconds,
            sequential.wall_seconds,
        )
        pickled = _sharded_pickle_bytes(network, "eisenberg-noe", 4, ITERATIONS)
        for label, run, pickle_note in (
            ("async-sequential", sequential, "-"),
            (f"async@{TASKS}", overlapped, pickled),
        ):
            rows.append(
                [
                    family,
                    NUM_BANKS,
                    label,
                    int(run.extras["messages_sent"]),
                    f"{run.extras['simulated_seconds']:.3f}",
                    f"{run.wall_seconds:.3f}",
                    f"{(sequential.wall_seconds / run.wall_seconds):.2f}x",
                    pickle_note,
                ]
            )
    emit_table(
        "Async engine - overlapped vs sequential schedule on a 10ms WAN",
        [
            "graph family",
            "N",
            "schedule",
            "messages",
            "sim link-s",
            "wall [s]",
            "speedup",
            "sharded@4 pickle bytes avoided",
        ],
        rows,
        [
            f"per-link latency {LATENCY_SECONDS * 1000:.0f}ms (+-25% deterministic jitter), "
            f"{ITERATIONS} rounds, smoke={SMOKE}",
            "sequential awaits every send one at a time (rounds x edges x latency);",
            "overlap pays ~rounds x slowest-link: ready vertices compute during deliveries",
            "pickle column: bytes/run the sharded pool ships that async tasks never pay",
            "all schedules verified bit-identical to plaintext before timing",
        ],
    )

    kernel_net = families["core-periphery"]
    benchmark.pedantic(
        lambda: StressTest(kernel_net)
        .program("eisenberg-noe")
        .engine("async", tasks=TASKS, transport="wan")
        .configure(wan_latency_seconds=LATENCY_SECONDS)
        .run(iterations=2),
        rounds=2,
        iterations=1,
    )
