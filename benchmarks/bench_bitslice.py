"""Bit-sliced GMW vs the scalar evaluator: gate throughput (Figure 3/5 regime).

The paper's §5 microbenchmarks (Figures 3-5) put GMW block evaluation on
the critical path: every vertex of every round runs one boolean circuit
under XOR sharing, and the evaluator's gate throughput bounds how large a
block (party count) and degree bound the deployment can afford. The
scalar evaluator pays Python interpreter overhead *per gate per
instance*; the bit-sliced backend (``repro/mpc/bitslice.py``) packs 64
circuit instances into one ``uint64`` lane word and evaluates whole
layers as numpy array ops, with the randomness precomputed in an offline
phase sized from ``mpc/cost.py``.

Benchmarks (all parity-asserted against the scalar transcript before any
timing — the lanes must be bit-identical, shares and ``pair_bits``
included, or the speedup is meaningless):

* ``test_scalar_gate_throughput`` — the scalar evaluator over a batch of
  instances, one ``evaluate`` per instance.
* ``test_bitsliced_gate_throughput`` — the same batch through
  ``evaluate_batch`` (offline + online), same RNG draws.
* ``test_bitsliced_online_phase`` — online phase only: pools are rebuilt
  in the pedantic setup hook (they are single-use), so the timed region
  is pure lane-wise array work — the part a deployment would overlap
  with the next block's wire time.

The scalar/bit-sliced pair is guarded in CI as a **ratio**
(``BENCH_BASELINE.json`` ``ratios`` section): both means come from the
same run on the same machine, so "bit-sliced must be ≥5x faster than
scalar" is portable where a wall-clock mean would not be.
"""

from __future__ import annotations

import os
import time

from repro.crypto.rng import DeterministicRNG
from repro.mpc.builder import CircuitBuilder
from repro.mpc.bitslice import LANE_BITS, BitslicedGMWEngine, lane_words
from repro.mpc.gmw import GMWEngine
from tables import emit_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
#: Block size for the guarded throughput pair (paper sweeps 8-20).
PARTIES = 3
WIDTH = 8
#: Circuit instances per batch: one full lane word in smoke mode, a few
#: lane words otherwise (ragged on purpose — exercises the tail mask).
INSTANCES = LANE_BITS if SMOKE else 3 * LANE_BITS + 17
ROUNDS = 2 if SMOKE else 3


def _mixed_circuit(width: int = WIDTH):
    """Adder + comparison + masked AND: XOR/AND/NOT at depth, the same
    gate mix the per-vertex DStress circuits produce."""
    builder = CircuitBuilder()
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    total = builder.add(a, b)
    builder.output_bus("sum", total)
    builder.output_bus("lt", [builder.lt_unsigned(a, b)])
    builder.output_bus("masked", builder.bitwise_and(total, builder.bitwise_not(b)))
    return builder.circuit


def _share_batch(engine, count, seed):
    rng = DeterministicRNG(f"bench-bitslice-{seed}")
    batch = []
    for index in range(count):
        batch.append(
            {
                "a": engine.share_input((index * 37) % 256, WIDTH, rng),
                "b": engine.share_input((index * 101 + 7) % 256, WIDTH, rng),
            }
        )
    return batch


def _scalar_run(circuit, batch, seed):
    engine = GMWEngine(PARTIES)
    rng = DeterministicRNG(f"bench-eval-{seed}")
    return [engine.evaluate(circuit, shares, rng) for shares in batch]


def _bitsliced_run(circuit, batch, seed, pools=None):
    engine = BitslicedGMWEngine(PARTIES)
    rng = None if pools is not None else DeterministicRNG(f"bench-eval-{seed}")
    return engine.evaluate_batch(circuit, batch, rng, pools=pools)


def _assert_parity(circuit, batch):
    """The admission bar: same RNG draws => bit-identical transcripts."""
    scalar = _scalar_run(circuit, batch, seed=0)
    sliced = _bitsliced_run(circuit, batch, seed=0)
    for lane, reference in zip(sliced, scalar):
        assert lane.output_shares == reference.output_shares
        assert list(lane.traffic.pair_bits.items()) == list(
            reference.traffic.pair_bits.items()
        )


def test_scalar_gate_throughput(benchmark):
    circuit = _mixed_circuit()
    engine = GMWEngine(PARTIES)
    batch = _share_batch(engine, INSTANCES, seed=1)
    _assert_parity(circuit, batch)
    benchmark.pedantic(
        lambda: _scalar_run(circuit, batch, seed=1), rounds=ROUNDS, iterations=1
    )


def test_bitsliced_gate_throughput(benchmark):
    circuit = _mixed_circuit()
    engine = BitslicedGMWEngine(PARTIES)
    batch = _share_batch(engine, INSTANCES, seed=1)
    _assert_parity(circuit, batch)
    benchmark.pedantic(
        lambda: _bitsliced_run(circuit, batch, seed=1), rounds=ROUNDS, iterations=1
    )


def test_bitsliced_online_phase(benchmark):
    """Online phase alone: pools are single-use, so each timed round gets
    a fresh pool from the (untimed) setup hook."""
    circuit = _mixed_circuit()
    engine = BitslicedGMWEngine(PARTIES)
    batch = _share_batch(engine, INSTANCES, seed=2)
    _assert_parity(circuit, batch)

    def setup():
        builder = engine.pool_builder(circuit)
        rng = DeterministicRNG("bench-offline-2")
        for _ in range(INSTANCES):
            builder.add_instance(rng)
        return (), {"pools": builder.build()}

    benchmark.pedantic(
        lambda pools: _bitsliced_run(circuit, batch, seed=2, pools=pools),
        setup=setup,
        rounds=ROUNDS,
        iterations=1,
    )

    _emit_throughput_table(circuit)


def _emit_throughput_table(circuit):
    """The Figure 3/5 companion table: gate-instance throughput per
    backend per block size, plus the offline/online split."""
    ands = circuit.stats().and_gates
    rows = []
    for parties in (2, PARTIES) if SMOKE else (2, 3, 5):
        for mode in ("ot", "beaver"):
            scalar = GMWEngine(parties, mode=mode)
            sliced = BitslicedGMWEngine(parties, mode=mode)
            batch = _share_batch(scalar, INSTANCES, seed=3)

            start = time.perf_counter()
            scalar_rng = DeterministicRNG(f"bench-table-{parties}-{mode}")
            for shares in batch:
                scalar.evaluate(circuit, shares, scalar_rng)
            scalar_s = time.perf_counter() - start

            start = time.perf_counter()
            builder = sliced.pool_builder(circuit)
            offline_rng = DeterministicRNG(f"bench-table-{parties}-{mode}")
            for _ in range(INSTANCES):
                builder.add_instance(offline_rng)
            pools = builder.build()
            offline_s = time.perf_counter() - start

            start = time.perf_counter()
            sliced.evaluate_batch(circuit, batch, pools=pools)
            online_s = time.perf_counter() - start

            gate_instances = ands * INSTANCES
            rows.append(
                [
                    mode,
                    parties,
                    gate_instances,
                    f"{scalar_s * 1e3:.1f}",
                    f"{offline_s * 1e3:.1f}",
                    f"{online_s * 1e3:.1f}",
                    f"{gate_instances / online_s / 1e3:.0f}",
                    f"{scalar_s / (offline_s + online_s):.1f}x",
                ]
            )
    emit_table(
        "Bit-sliced GMW - AND-gate throughput vs the scalar evaluator",
        [
            "mode",
            "N",
            "AND-inst",
            "scalar [ms]",
            "offline [ms]",
            "online [ms]",
            "kAND/s online",
            "speedup",
        ],
        rows,
        [
            f"{INSTANCES} circuit instances/batch packed into "
            f"{lane_words(INSTANCES)} uint64 lane word(s), smoke={SMOKE}",
            "offline = RNG replay + pool packing (cost.py-sized); online = lane ops only",
            "every row parity-locked: shares and pair_bits bit-identical to scalar",
            "speedup column compares scalar vs offline+online end to end",
        ],
    )
