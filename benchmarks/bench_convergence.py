"""Appendix C: iteration bounds on stylized interbank topologies.

The paper built a 50-bank core-periphery network (10-bank dense core,
regional banks linked to 1-2 core banks) and found that (a) shocks either
are absorbed by the core or cascade through it rapidly, and (b)
I = log2 N iterations suffice for the contagion algorithms to converge,
because every peripheral bank is within a couple of hops of the densely
connected core.

We regenerate both findings: the absorbed-vs-cascade scenario pair, and
measured convergence rounds vs log2 N across network sizes.
"""

from __future__ import annotations

import math

import pytest

from repro.api import StressTest
from repro.crypto.rng import DeterministicRNG
from repro.finance import apply_shock, clearing_vector, uniform_shock
from repro.graphgen import CorePeripheryParams, core_periphery_network
from repro.mpc.fixedpoint import FixedPointFormat
from tables import emit_table

FMT = FixedPointFormat(16, 8)


def _convergence_rounds(network, degree_bound: int, tolerance: float = 0.01) -> int:
    """Rounds until the EN program's TDS trajectory is within ``tolerance``
    (relative) of its final value.

    The Appendix C estimate concerns *useful approximation*, not exact
    fixpoints: the Jacobi payment iteration converges geometrically, and
    "a limited number of iterations provides a good approximation" (§4.3),
    so we measure rounds to 1% of the final TDS.
    """
    run = (
        StressTest(network)
        .program("eisenberg-noe")
        .engine("plaintext")
        .configure(fmt=FMT)
        .degree_bound(degree_bound)
        .run(iterations=2 * network.num_banks)
    )
    final = run.trajectory[-1]
    for round_index, value in enumerate(run.trajectory):
        if abs(value - final) <= tolerance * max(1.0, abs(final)):
            return round_index + 1
    return len(run.trajectory)


def test_absorbed_vs_cascading_shock(benchmark):
    """Appendix C's scenario pair on the 50-bank two-tier network."""
    network = core_periphery_network()

    # Scenario 1: a few regional banks fail; the core absorbs the loss.
    peripheral = apply_shock(network, uniform_shock(range(45, 50), 1.0, "peripheral"))
    absorbed = clearing_vector(peripheral)

    # Scenario 2: the shock takes out the core; failures cascade.
    core_shock = apply_shock(network, uniform_shock(range(0, 10), 1.0, "core"))
    cascade = clearing_vector(core_shock)

    baseline = clearing_vector(network)
    marginal_absorbed = absorbed.total_shortfall - baseline.total_shortfall
    marginal_cascade = cascade.total_shortfall - baseline.total_shortfall
    rows = [
        ["baseline", baseline.total_shortfall, 0.0, len(baseline.defaulters)],
        [
            "peripheral shock (5 banks)",
            absorbed.total_shortfall,
            marginal_absorbed,
            len(absorbed.defaulters),
        ],
        [
            "core shock (10 banks)",
            cascade.total_shortfall,
            marginal_cascade,
            len(cascade.defaulters),
        ],
    ]

    # The paper's qualitative finding: shocks either escalate rapidly or
    # not at all, and a core hit is "clearly visible". Compare *marginal*
    # damage over the baseline clearing state.
    assert marginal_cascade > 3 * marginal_absorbed
    assert len(cascade.defaulters) > len(absorbed.defaulters)

    emit_table(
        "Appendix C - absorbed vs cascading shocks (50-bank core-periphery)",
        ["scenario", "TDS [$1B units]", "marginal TDS", "defaulters"],
        rows,
        ["core shocks escalate; peripheral shocks are absorbed (Appendix C)"],
    )
    benchmark.pedantic(lambda: clearing_vector(core_shock), rounds=2, iterations=1)


def test_iterations_scale_as_log2_n(benchmark):
    """Appendix C's estimate: I = log2 N is enough for convergence."""
    rows = []
    for num_banks, core in ((16, 4), (32, 6), (64, 10)):
        params = CorePeripheryParams(num_banks=num_banks, core_size=core)
        network = core_periphery_network(params, DeterministicRNG(num_banks))
        shocked = apply_shock(network, uniform_shock(range(core), 0.9, "core"))
        degree = max(1, shocked.max_debt_degree())
        rounds = _convergence_rounds(shocked, degree)
        bound = math.ceil(math.log2(num_banks)) + 1
        rows.append([num_banks, rounds, bound, "yes" if rounds <= bound + 2 else "NO"])
        # Core-periphery networks converge fast; allow a small cushion
        # beyond the paper's log2 N estimate.
        assert rounds <= bound + 2, (num_banks, rounds)

    emit_table(
        "Appendix C - EN convergence rounds vs the log2 N estimate",
        ["N banks", "rounds to converge", "ceil(log2 N)+1", "within bound"],
        rows,
        ["the paper sets I = log2 N from the same style of simulation"],
    )
    def kernel():
        network = core_periphery_network(
            CorePeripheryParams(num_banks=16, core_size=4), DeterministicRNG(16)
        )
        shocked = apply_shock(network, uniform_shock(range(4), 0.9))
        return _convergence_rounds(shocked, max(1, shocked.max_debt_degree()))

    benchmark.pedantic(kernel, rounds=1, iterations=1)
