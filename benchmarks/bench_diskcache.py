"""Persistent scenario cache: a restarted sweep skips engine work AND budget.

The cache exists for the paper's economics, not convenience: every
released stress test costs irreplaceable epsilon from the yearly ``ln 2``
budget (§4.5), so a service that re-runs last quarter's sweep after a
restart must *replay* the released values, not recompute and re-charge
them. This benchmark times three passes of one secure-engine sweep:

* **cold** — empty cache directory: every scenario runs the full MPC
  stack and is charged against a fresh accountant;
* **restart-warm** — a brand-new :class:`PersistentScenarioCache`
  instance on the same directory (what a restarted process sees): zero
  engine executions, zero epsilon charged, all hits served from disk;
* **hot** — the same instance again: hits served from the in-process
  memory tier, the price today's memory-only cache charges.

Correctness rides along: all three passes must release bit-identical
values, and both warm passes must report zero misses and zero epsilon.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the sweep so CI exercises
the full disk path — store, sidecars, restart, hits — in seconds.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from repro import Bank, FinancialNetwork, PrivacyAccountant, Scenario, StressTest
from repro.api import PersistentScenarioCache
from tables import emit_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_SCENARIOS = 2 if SMOKE else 4
ITERATIONS = 2 if SMOKE else 3
EPSILON = 0.1


def _network() -> FinancialNetwork:
    network = FinancialNetwork()
    network.add_bank(Bank(0, cash=2.0))
    network.add_bank(Bank(1, cash=1.0))
    network.add_bank(Bank(2, cash=1.0))
    network.add_bank(Bank(3, cash=0.5))
    network.add_debt(0, 1, 4.0)
    network.add_debt(0, 2, 2.0)
    network.add_debt(1, 3, 3.0)
    network.add_debt(2, 3, 1.0)
    return network


def _template():
    return (
        StressTest(_network())
        .program("eisenberg-noe")
        .engine("secure")
        .preset("demo")
        .privacy(epsilon=EPSILON)
        .degree_bound(2)
    )


def _scenarios():
    return [
        Scenario(f"shock-{i}", seed=100 + i, iterations=ITERATIONS)
        for i in range(NUM_SCENARIOS)
    ]


def _sweep(template, cache):
    # time the whole call: fingerprinting and cache lookups happen in the
    # batch prelude, which batch.wall_seconds deliberately excludes
    accountant = PrivacyAccountant()
    started = time.perf_counter()
    batch = template.run_many(_scenarios(), accountant=accountant, cache=cache)
    elapsed = time.perf_counter() - started
    assert all(o.ok for o in batch), batch.summary()
    return batch, accountant, elapsed


def test_restarted_sweep_skips_engine_work_and_epsilon(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="repro-diskcache-bench-")
    try:
        template = _template()
        cold_cache = PersistentScenarioCache(cache_dir)
        cold, cold_acc, cold_s = _sweep(template, cold_cache)

        # a NEW instance on the same directory = a restarted process
        warm_cache = PersistentScenarioCache(cache_dir)
        warm, warm_acc, warm_s = _sweep(template, warm_cache)
        hot, hot_acc, hot_s = _sweep(template, warm_cache)

        # the whole point: zero executions, zero fresh epsilon, same bits
        assert (warm.cache_hits, warm.cache_misses) == (NUM_SCENARIOS, 0)
        assert (hot.cache_hits, hot.cache_misses) == (NUM_SCENARIOS, 0)
        assert warm_acc.spent == 0.0 and hot_acc.spent == 0.0
        assert warm.aggregates() == cold.aggregates() == hot.aggregates()
        assert warm_cache.disk_hits >= NUM_SCENARIOS
        assert warm_cache.memory_hits >= NUM_SCENARIOS  # the hot pass

        rows = []
        for label, batch, accountant, seconds in (
            ("cold (empty dir)", cold, cold_acc, cold_s),
            ("restart-warm (disk)", warm, warm_acc, warm_s),
            ("hot (memory tier)", hot, hot_acc, hot_s),
        ):
            rows.append(
                [
                    label,
                    batch.cache_misses,
                    batch.cache_hits,
                    f"{accountant.spent:g}",
                    f"{seconds:.4f}",
                    f"{(cold_s / max(seconds, 1e-9)):.0f}x",
                ]
            )
        emit_table(
            "Persistent scenario cache - restarted sweep vs cold sweep",
            [
                "pass",
                "engine runs",
                "cache hits",
                "epsilon charged",
                "wall [s]",
                "speedup",
            ],
            rows,
            [
                f"{NUM_SCENARIOS} secure-engine scenarios (demo preset), "
                f"{ITERATIONS} rounds each, smoke={SMOKE}",
                "restart-warm constructs a fresh cache object on the same "
                "directory: the process-restart shape",
                "released values verified bit-identical across all passes "
                "before timing",
            ],
        )

        benchmark.pedantic(
            lambda: _sweep(template, PersistentScenarioCache(cache_dir)),
            rounds=2,
            iterations=1,
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
