"""Appendix B: edge-privacy accounting of the transfer protocol.

Reproduces the concrete example: blocks of k+1 = 20, L = 16-bit messages,
N = 1750 banks, D = 100, I = 11 iterations, R = 3 runs/year over Y = 10
years => N_q ~ 370 billion transfers; with a ~230M-entry dlog table and
per-transfer epsilon 2.34e-7 the failure budget holds, each iteration uses
0.0014 of the privacy budget and a year uses 0.0469 — comfortably inside
the ln 2 yearly budget.

Also validates the mechanism empirically: the noised bit-share sums the
receivers decrypt satisfy the claimed epsilon-DP ratio bound.
"""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.group import TOY_GROUP_64
from repro.crypto.rng import DeterministicRNG
from repro.privacy import (
    EdgePrivacyAnalysis,
    alpha_max_for_failure_budget,
    two_sided_geometric_sample,
)
from repro.transfer.scheme import ShareTransferScheme
from tables import emit_table


def test_appendix_b_concrete_example(benchmark):
    analysis = EdgePrivacyAnalysis()
    rows = [
        ["sensitivity Delta = k+1", "20", analysis.sensitivity],
        ["transfers N_q", "~370 billion", f"{analysis.transfers/1e9:.1f} billion"],
        ["per-transfer epsilon", "2.34e-7", f"{analysis.epsilon_per_transfer:.3g}"],
        ["alpha = e^-eps", "0.999999766", f"{analysis.alpha:.9f}"],
        ["budget per iteration", "0.0014", f"{analysis.epsilon_per_iteration:.4f}"],
        ["budget per year (33 iters)", "0.0469", f"{analysis.epsilon_per_year:.4f}"],
        ["P_fail <= 1/N_q", "yes", "yes" if analysis.meets_failure_budget else "NO"],
    ]
    assert analysis.sensitivity == 20
    assert analysis.epsilon_per_iteration == pytest.approx(0.0014, abs=1e-4)
    assert analysis.epsilon_per_year == pytest.approx(0.0469, abs=5e-4)
    assert analysis.meets_failure_budget
    emit_table(
        "Appendix B concrete example - paper vs reproduced",
        ["quantity", "paper", "ours"],
        rows,
    )
    benchmark.pedantic(lambda: EdgePrivacyAnalysis().transfers, rounds=5, iterations=1)


def test_alpha_max_frontier(benchmark):
    """Inequality (1): the largest usable alpha for several table sizes."""
    rows = []
    transfers = EdgePrivacyAnalysis().transfers
    for table_entries in (1_000_000, 50_000_000, 230_000_000):
        alpha = alpha_max_for_failure_budget(table_entries, 1.0 / transfers)
        eps = -math.log(alpha)
        rows.append([table_entries, f"{alpha:.12f}", f"{eps:.3g}"])
    # Bigger tables allow alpha closer to 1 (more noise, less leakage).
    alphas = [float(row[1]) for row in rows]
    assert alphas == sorted(alphas)
    emit_table(
        "Appendix B - alpha_max vs dlog table size (failure budget 1/N_q)",
        ["table entries N_l", "alpha_max", "per-transfer epsilon"],
        rows,
        ["more decryption RAM -> more edge-privacy noise affordable"],
    )
    benchmark.pedantic(
        lambda: alpha_max_for_failure_budget(1_000_000, 1e-9), rounds=3, iterations=1
    )


def test_empirical_dp_ratio_of_transfer_sums(benchmark):
    """Run many real transfers for two adjacent share-sum configurations
    and verify the observed sum distributions obey the DP ratio bound."""
    rng = DeterministicRNG("edge-dp")
    block_size = 3
    alpha_mech = 0.8  # heavy noise so the empirical test converges fast
    trials = 8000

    # The released quantity is sum(bits) + 2*Geo(alpha); simulate the two
    # adjacent worlds directly through the mechanism the scheme applies.
    def observe(total_bits: int) -> Counter:
        counts = Counter()
        for _ in range(trials):
            noise = 2 * two_sided_geometric_sample(alpha_mech, rng)
            counts[total_bits + noise] += 1
        return counts

    # Compare two worlds whose share sums differ by 2 (same parity: the
    # added noise is even, so a +-1 shift changes the output's parity and
    # the distributions are disjoint pointwise — what leaks is the parity
    # bit, i.e. the message share itself, which the receiver is *supposed*
    # to learn; edge privacy concerns the magnitude distribution, which
    # shifts by at most Delta across adjacent graphs).
    world_a = observe(0)
    world_b = observe(2)
    # noise = 2 * Y with Y ~ TSG(alpha), so P_A(d) / P_B(d) =
    # pmf(d/2) / pmf((d-2)/2), bounded by [alpha, 1/alpha].
    violations = 0
    checked = 0
    for output in range(-8, 10, 2):
        if world_a[output] > 250 and world_b[output] > 250:
            checked += 1
            ratio = world_a[output] / world_b[output]
            if not (alpha_mech * 0.7 <= ratio <= 1 / alpha_mech / 0.7):
                violations += 1
    assert checked >= 5
    assert violations == 0

    # And the full scheme produces exactly this distribution shape.
    elgamal = ExponentialElGamal(TOY_GROUP_64, dlog_half_width=600)
    scheme = ShareTransferScheme(elgamal, noise_alpha=alpha_mech)
    instance = scheme.run(1, block_size, rng)
    for y, total in enumerate(instance.decrypted_sums):
        raw = sum(instance.subshares[x][y] for x in range(block_size))
        assert total == raw + instance.noise_terms[y]

    emit_table(
        "Appendix B empirical check - DP ratio of noised transfer sums",
        ["outputs checked", "ratio violations"],
        [[checked, violations]],
        [f"alpha = {alpha_mech}, {trials} transfers per world, bound held everywhere"],
    )
    benchmark.pedantic(lambda: scheme.run(1, block_size, rng), rounds=3, iterations=1)
