"""Figure 3: computation time of the MPC building blocks.

Left plot: time of each MPC circuit (initialization, EN step, EGJ step,
aggregation, noising) as a function of block size — the paper reports
linear growth (GMW total cost is quadratic but parties work in parallel;
time tracks per-party work).

Right plot: EN/EGJ step time vs the degree bound D and aggregation time vs
the number of inputs N — linear, because these circuits' gate counts are
dominated by their input counts.

We sweep scaled-down parameters (see conftest) and fit/verify the same
shapes, printing measured times alongside the paper's reported regime.
"""

from __future__ import annotations

import time

import pytest

from conftest import AGG_SIZES, BLOCK_SIZES, DEGREE_BOUNDS
from repro.crypto.rng import DeterministicRNG
from repro.finance import EisenbergNoeProgram, ElliottGolubJacksonProgram
from repro.mpc.fixedpoint import FixedPointFormat
from repro.mpc.gmw import GMWEngine
from repro.mpc.noise_circuit import build_noised_sum_bits_circuit, build_partial_sum_circuit
from repro.sharing import share_value
from tables import emit_table

FMT = FixedPointFormat(16, 8)
BENCH_DEGREE = 3


def _time_gmw(circuit, parties: int, rng) -> float:
    engine = GMWEngine(parties)
    shares = {
        name: engine.share_input(rng.randbits(len(wires)), len(wires), rng)
        for name, wires in circuit.input_buses.items()
    }
    started = time.perf_counter()
    engine.evaluate(circuit, shares, rng)
    return time.perf_counter() - started


def _time_init(parties: int, registers: int, rng) -> float:
    started = time.perf_counter()
    for _ in range(registers):
        share_value(rng.randbits(FMT.total_bits), FMT.total_bits, parties, rng)
    return time.perf_counter() - started


def _linearity(xs, ys) -> float:
    """Correlation between y and a linear fit in x (1.0 = perfectly linear)."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def test_fig3_left_block_size_sweep(benchmark):
    """Figure 3 (left): MPC step time vs block size — expect linear."""
    rng = DeterministicRNG("fig3-left")
    en_circuit = EisenbergNoeProgram(FMT).build_update_circuit(BENCH_DEGREE)
    egj_circuit = ElliottGolubJacksonProgram(FMT).build_update_circuit(BENCH_DEGREE)
    agg_circuit = build_partial_sum_circuit(8, FMT.total_bits, FMT.total_bits + 4)
    noise_circuit = build_noised_sum_bits_circuit(
        4, FMT.total_bits, alpha=0.99, magnitude_bits=10, precision_bits=12
    )
    registers = len(EisenbergNoeProgram(FMT).state_registers(BENCH_DEGREE)) + BENCH_DEGREE

    rows = []
    series = {"EN": [], "EGJ": [], "agg": [], "noise": []}
    for parties in BLOCK_SIZES:
        init_s = _time_init(parties, registers, rng)
        en_s = _time_gmw(en_circuit, parties, rng)
        egj_s = _time_gmw(egj_circuit, parties, rng)
        agg_s = _time_gmw(agg_circuit, parties, rng)
        noise_s = _time_gmw(noise_circuit, parties, rng)
        series["EN"].append(en_s)
        series["EGJ"].append(egj_s)
        series["agg"].append(agg_s)
        series["noise"].append(noise_s)
        rows.append([parties, init_s, en_s, egj_s, agg_s, noise_s])

    notes = [
        "paper (Fig. 3 left): blocks 8-20, times up to ~80 s, linear in block size",
        f"scaled sweep: blocks {BLOCK_SIZES}, D={BENCH_DEGREE}, L={FMT.total_bits}",
    ]
    for name, ys in series.items():
        r = _linearity(list(BLOCK_SIZES), ys)
        notes.append(f"linearity({name} vs block size) r = {r:.3f}")
        # Wall-clock jitter at sub-100ms circuit runs caps how sharp this
        # can be; r > 0.9 still clearly separates linear from quadratic.
        assert r > 0.90, f"{name} step time not linear in block size"
    emit_table(
        "Figure 3 (left) - MPC computation time vs block size [seconds]",
        ["block", "init", "EN step", "EGJ step", "aggregation", "noising"],
        rows,
        notes,
    )

    benchmark.pedantic(
        lambda: _time_gmw(en_circuit, 3, rng), rounds=3, iterations=1
    )


def test_fig3_right_degree_and_n_sweep(benchmark):
    """Figure 3 (right): step time vs D; aggregation time vs N — linear."""
    rng = DeterministicRNG("fig3-right")
    parties = 3

    degree_rows = []
    en_times = []
    for degree in DEGREE_BOUNDS:
        en_circuit = EisenbergNoeProgram(FMT).build_update_circuit(degree)
        egj_circuit = ElliottGolubJacksonProgram(FMT).build_update_circuit(degree)
        en_s = _time_gmw(en_circuit, parties, rng)
        egj_s = _time_gmw(egj_circuit, parties, rng)
        en_times.append(en_s)
        degree_rows.append([degree, en_s, egj_s])

    agg_rows = []
    agg_times = []
    for n in AGG_SIZES:
        circuit = build_partial_sum_circuit(n, FMT.total_bits, FMT.total_bits + 6)
        agg_s = _time_gmw(circuit, parties, rng)
        agg_times.append(agg_s)
        agg_rows.append([n, agg_s])

    r_degree = _linearity(list(DEGREE_BOUNDS), en_times)
    r_agg = _linearity(list(AGG_SIZES), agg_times)
    emit_table(
        "Figure 3 (right) - EN/EGJ step time vs degree bound D [seconds]",
        ["D", "EN step", "EGJ step"],
        degree_rows,
        [
            "paper: D in 10-100, roughly linear (circuit inputs dominate)",
            f"linearity(EN vs D) r = {r_degree:.3f}",
        ],
    )
    emit_table(
        "Figure 3 (right) - aggregation time vs N inputs [seconds]",
        ["N", "aggregation"],
        agg_rows,
        [
            "paper: N in 50-200, roughly linear",
            f"linearity(agg vs N) r = {r_agg:.3f}",
        ],
    )
    # EN has a division, EGJ two multiplications per slot: at larger D the
    # EGJ step overtakes EN, as in the paper's Fig. 3 bars.
    assert r_degree > 0.9
    assert r_agg > 0.9

    benchmark.pedantic(
        lambda: _time_gmw(
            EisenbergNoeProgram(FMT).build_update_circuit(2), parties, rng
        ),
        rounds=3,
        iterations=1,
    )
