"""Figure 5: end-to-end DStress runs — time breakdown and traffic/node.

The paper runs N=100 banks, D=10, I=7 iterations of both EN and EGJ at
block sizes 8-20 and reports: (a) total time growing roughly quadratically
in the block size (each node serves in more blocks as k grows while
per-block time grows linearly), with computation steps dominating; and
(b) per-node traffic growing linearly, EGJ slightly above EN.

We execute the *complete* protocol stack (TP setup, GMW steps, ElGamal
transfers, MPC aggregation+noising) at a scaled N=10, D=3, I=3 and check
the same orderings.
"""

from __future__ import annotations

import pytest

from repro.core.config import DStressConfig
from repro.core.secure_engine import SecureEngine
from repro.crypto.group import TOY_GROUP_64
from repro.crypto.rng import DeterministicRNG
from repro.finance import EisenbergNoeProgram, ElliottGolubJacksonProgram
from repro.graphgen import RandomNetworkParams, random_network
from repro.mpc.fixedpoint import FixedPointFormat
from tables import emit_table

FMT = FixedPointFormat(16, 8)
N_BANKS = 10
DEGREE = 3
ITERATIONS = 3
BLOCKS = (2, 3, 4)


def _network():
    return random_network(
        RandomNetworkParams(num_banks=N_BANKS, mean_degree=2.0, degree_cap=DEGREE),
        DeterministicRNG("fig5-network"),
    )


def _run(program_cls, block_size: int):
    network = _network()
    program = program_cls(FMT)
    graph = (
        network.to_en_graph(DEGREE)
        if program_cls is EisenbergNoeProgram
        else network.to_egj_graph(DEGREE)
    )
    config = DStressConfig(
        collusion_bound=block_size - 1,
        fmt=FMT,
        group=TOY_GROUP_64,
        dlog_half_width=400,
        edge_noise_alpha=0.4,
        output_epsilon=0.5,
        seed=42,
    )
    return SecureEngine(program, config).run(graph, iterations=ITERATIONS)


def test_fig5_left_time_breakdown(benchmark):
    rows = []
    totals = {}
    for program_cls, label in ((EisenbergNoeProgram, "EN"), (ElliottGolubJacksonProgram, "EGJ")):
        for block in BLOCKS:
            result = _run(program_cls, block)
            phases = result.phases.seconds
            total = result.phases.total
            totals[(label, block)] = total
            rows.append(
                [
                    f"{label}/{block}",
                    phases.get("initialization", 0),
                    phases.get("computation", 0),
                    phases.get("communication", 0),
                    phases.get("aggregation", 0),
                    total,
                ]
            )

    # Paper shapes: super-linear growth in block size; computation steps
    # dominate; EGJ >= EN at equal block size.
    for label in ("EN", "EGJ"):
        small, large = totals[(label, BLOCKS[0])], totals[(label, BLOCKS[-1])]
        linear_ratio = BLOCKS[-1] / BLOCKS[0]
        assert large / small > linear_ratio, f"{label} should grow super-linearly"
    for block in BLOCKS:
        assert totals[("EGJ", block)] > 0.8 * totals[("EN", block)]

    emit_table(
        "Figure 5 (left) - end-to-end time breakdown [seconds]"
        f" (N={N_BANKS}, D={DEGREE}, I={ITERATIONS}, scaled)",
        ["run/block", "init", "computation", "transfers", "agg+noise", "total"],
        rows,
        [
            "paper: N=100, D=10, I=7, blocks 8-20; total 2-14 min, O(k^2) overall,",
            "computation steps dominate; same orderings hold in the scaled runs",
        ],
    )
    benchmark.pedantic(lambda: _run(EisenbergNoeProgram, 2), rounds=1, iterations=1)


def test_fig5_right_traffic_per_node(benchmark):
    rows = []
    series = {}
    for program_cls, label in ((EisenbergNoeProgram, "EN"), (ElliottGolubJacksonProgram, "EGJ")):
        traffic = []
        for block in BLOCKS:
            result = _run(program_cls, block)
            mean_mb = result.traffic.mean_node_bytes_sent() / 1e6
            traffic.append(mean_mb)
            rows.append([f"{label}/{block}", mean_mb, result.traffic.max_node_bytes_sent() / 1e6])
        series[label] = traffic

    # Roughly linear-in-block-size traffic; EGJ above EN.
    for label, values in series.items():
        assert values[-1] > values[0], f"{label} traffic must grow with block size"
    for en_val, egj_val in zip(series["EN"], series["EGJ"]):
        assert egj_val > 0.8 * en_val

    emit_table(
        "Figure 5 (right) - per-node traffic [MB/node]"
        f" (N={N_BANKS}, D={DEGREE}, I={ITERATIONS}, scaled)",
        ["run/block", "mean sent", "max sent"],
        rows,
        [
            "paper: 10-80 MB/node at blocks 8-20, linear in block size, EGJ >= EN",
            "ours: base-OT GMW accounting (no bit packing), same shape",
        ],
    )
    benchmark.pedantic(
        lambda: _run(ElliottGolubJacksonProgram, 2), rounds=1, iterations=1
    )
