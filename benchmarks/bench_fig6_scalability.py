"""Figure 6: projected cost of full-scale deployments, with validation.

The paper's headline: running Eisenberg-Noe over the whole U.S. banking
system (N=1750, D=100, block 20, I = log2 N) would take about 4.8 hours
and ~750 MB of traffic per bank; both metrics grow linearly in D and the
time grows with N through the iteration count. The numbers are projected
from microbenchmarks, with real runs at N=20 and N=100 as validation
points (the red circles).

We reproduce the whole pipeline: the same projection arithmetic fed by
(a) the paper's back-solved unit costs and (b) unit costs measured on this
machine, plus validation by executing the real engine at simulation scale
and comparing against the estimator's prediction for those parameters.
"""

from __future__ import annotations

import math

import pytest

from repro.core.config import DStressConfig
from repro.core.secure_engine import SecureEngine
from repro.crypto.group import TOY_GROUP_64
from repro.crypto.rng import DeterministicRNG
from repro.finance import EisenbergNoeProgram
from repro.graphgen import RandomNetworkParams, random_network
from repro.mpc.fixedpoint import FixedPointFormat
from repro.simulation import PAPER_COST_CONSTANTS, ScalabilityEstimator, measure_cost_constants
from tables import emit_table

FMT = FixedPointFormat(16, 8)


def test_fig6_projection_paper_regime(benchmark):
    """Project the paper's sweep: D in {10,40,70,100}, N up to 2000."""
    program = EisenbergNoeProgram(FMT)
    estimator = ScalabilityEstimator(
        program, PAPER_COST_CONSTANTS, collusion_bound=19, element_bytes=97
    )
    rows = []
    headline = None
    for num_nodes in (100, 500, 1000, 1750, 2000):
        iterations = max(1, math.ceil(math.log2(num_nodes)))
        row = [num_nodes, iterations]
        for degree in (10, 40, 70, 100):
            estimate = estimator.estimate(num_nodes, degree, iterations)
            row.append(estimate.minutes_total)
            if num_nodes == 1750 and degree == 100:
                headline = estimate
        rows.append(row)

    # Headline claim: about five hours and high-hundreds-of-MB per node.
    assert headline is not None
    assert 1.5 < headline.hours_total < 10.0, headline.hours_total
    assert 300 < headline.traffic_per_node_mb < 3000

    # Linear-in-D at fixed N (compare D=100 vs D=10 cost ratio ~ 10x
    # within generous slack; constant terms damp it).
    last = rows[-1]  # columns: N, I, D=10, D=40, D=70, D=100
    assert 4 < last[5] / last[2] < 14

    emit_table(
        "Figure 6 (left) - projected completion time [minutes], paper cost regime",
        ["N", "I=log2N", "D=10", "D=40", "D=70", "D=100"],
        rows,
        [
            "paper: up to ~400 min at N=2000/D=100; N=1750/D=100 ~ 4.8 h",
            f"our projection at N=1750/D=100: {headline.hours_total:.2f} h, "
            f"{headline.traffic_per_node_mb:.0f} MB/node (paper: ~750 MB)",
        ],
    )

    traffic_rows = []
    for degree in (10, 40, 70, 100):
        estimate = estimator.estimate(1750, degree, 11)
        traffic_rows.append([degree, estimate.traffic_per_node_mb])
    assert traffic_rows[-1][1] > traffic_rows[0][1] * 4
    emit_table(
        "Figure 6 (right) - projected traffic per node [MB], N=1750",
        ["D", "MB/node"],
        traffic_rows,
        ["paper: ~10 MB (D=10) up to ~750 MB (D=100), linear in D"],
    )
    benchmark.pedantic(
        lambda: estimator.estimate(1750, 100, 11), rounds=3, iterations=1
    )


def test_fig6_validation_points(benchmark):
    """The red circles: run the real engine and compare to the estimator
    fed with unit costs measured on this machine."""
    program = EisenbergNoeProgram(FMT)
    constants = measure_cost_constants(TOY_GROUP_64)

    rows = []
    for num_banks in (6, 10):
        degree, iterations, block = 2, 2, 3
        network = random_network(
            RandomNetworkParams(num_banks=num_banks, mean_degree=1.5, degree_cap=degree),
            DeterministicRNG(f"fig6-val-{num_banks}"),
        )
        graph = network.to_en_graph(degree)
        config = DStressConfig(
            collusion_bound=block - 1,
            fmt=FMT,
            group=TOY_GROUP_64,
            dlog_half_width=400,
            edge_noise_alpha=0.4,
            output_epsilon=0.5,
            seed=1,
        )
        result = SecureEngine(program, config).run(graph, iterations=iterations)
        measured_minutes = result.phases.total / 60.0

        estimator = ScalabilityEstimator(
            program,
            constants,
            collusion_bound=block - 1,
            element_bytes=TOY_GROUP_64.element_size_bytes,
        )
        predicted = estimator.estimate(num_banks, degree, iterations)
        # The simulation serializes all blocks on one core, so measured
        # wall time corresponds to ~N x the per-node projection.
        predicted_serialized = predicted.seconds_total * num_banks / 60.0
        rows.append(
            [num_banks, measured_minutes * 60, predicted_serialized * 60,
             measured_minutes / predicted_serialized if predicted_serialized else float("nan")]
        )
        # Same order of magnitude — the paper's circles also sit below the
        # projected curves ("actual runs tend to be a bit faster").
        assert 0.1 < measured_minutes / predicted_serialized < 10

    emit_table(
        "Figure 6 validation - real engine runs vs projection [seconds, serialized]",
        ["N", "measured", "predicted", "ratio"],
        rows,
        [
            "paper validated at N=20 and N=100 on EC2; we validate the same",
            "estimation pipeline at simulation scale with measured unit costs",
        ],
    )
    benchmark.pedantic(
        lambda: measure_cost_constants(TOY_GROUP_64, gmw_parties=2, sample_and_gates=16),
        rounds=2,
        iterations=1,
    )
