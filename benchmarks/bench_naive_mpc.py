"""§5.5 baseline: systemic risk as one monolithic MPC.

The paper's comparison: a straightforward MPC of the Eisenberg-Noe closed
form raises an N x N matrix to the I-th power; their Wysteria matmul took
1.8 min at N=10 and 40 min at N=25, and the O(N^3) extrapolation gives
(1750/25)^3 * 40 min * 11 multiplies ~ 287 years — versus DStress's ~5
hours, the motivating five-orders-of-magnitude gap.

We run the same experiment: GMW-evaluate fixed-point matrix multiplies at
small N, fit the cubic, extrapolate to the banking system, and print the
speedup over the Figure 6 DStress projection.
"""

from __future__ import annotations

import math

import pytest

from repro.finance import EisenbergNoeProgram
from repro.mpc.fixedpoint import FixedPointFormat
from repro.simulation import PAPER_COST_CONSTANTS, ScalabilityEstimator
from repro.simulation.naive_baseline import (
    fit_naive_baseline,
    matrix_multiply_circuit,
    measure_matmul_seconds,
)
from tables import emit_table

FMT = FixedPointFormat(16, 8)


def test_naive_matrix_power_extrapolation(benchmark):
    sizes = (2, 3, 4)
    fit = fit_naive_baseline(sizes, FMT, parties=2)

    rows = []
    for n, seconds in fit.sample_points:
        rows.append([n, seconds, fit.seconds_for_multiply(n)])
    for n in (10, 25):
        rows.append([n, "-", fit.seconds_for_multiply(n)])

    # Cubic shape: quadrupling N multiplies cost by ~64.
    t2 = fit.sample_points[0][1]
    t4 = fit.sample_points[2][1]
    assert 4 < t4 / t2 < 20  # 2->4 is 8x in N^3; slack for fixed costs

    years = fit.years_end_to_end(1750, iterations=12)
    assert years > 1.0, "naive MPC must be utterly impractical at N=1750"

    # DStress (projected at the paper's regime) vs naive (our GMW).
    dstress_hours = (
        ScalabilityEstimator(
            EisenbergNoeProgram(FMT), PAPER_COST_CONSTANTS, collusion_bound=19
        )
        .estimate(1750, 100, 11)
        .hours_total
    )
    speedup = years * 365.25 * 24 / dstress_hours

    emit_table(
        "§5.5 naive monolithic MPC baseline - one N x N matrix multiply [seconds]",
        ["N", "measured", "cubic fit"],
        rows,
        [
            "paper: 1.8 min at N=10, 40 min at N=25 (Wysteria), O(N^3)",
            f"extrapolated full run (N=1750, 11 multiplies): {years:,.0f} years"
            " (paper: ~287 years on their faster backend)",
            f"DStress projection: {dstress_hours:.1f} h -> naive/DStress ratio ~ {speedup:,.0f}x",
        ],
    )
    benchmark.pedantic(
        lambda: measure_matmul_seconds(2, FMT, parties=2), rounds=2, iterations=1
    )


def test_naive_and_gate_count_cubic(benchmark):
    rows = []
    counts = []
    for n in (2, 3, 4, 5):
        ands = matrix_multiply_circuit(n, FMT).stats().and_gates
        counts.append(ands)
        rows.append([n, ands, ands / n**3])
    # AND-gates per N^3 roughly constant => cubic circuit growth.
    per_cubed = [row[2] for row in rows]
    assert max(per_cubed) / min(per_cubed) < 1.6
    emit_table(
        "Naive baseline circuit growth - AND gates of N x N matmul",
        ["N", "AND gates", "ANDs / N^3"],
        rows,
        ["data-dependent sparsity cannot help: the matrix is private (§5.5)"],
    )
    benchmark.pedantic(
        lambda: matrix_multiply_circuit(3, FMT).stats().and_gates, rounds=2, iterations=1
    )
