"""Secure engine over the transport bus: overlap vs sequential at 10ms.

The paper's §6 deployment claim is that secure rounds are bound by
*communication*: a block's OT-extension batch spends longer on the WAN
than the block spends computing it. ``engine="secure-async"`` exists to
model exactly that — block ``b``'s bytes travel while block ``b + 1``
computes — and this benchmark puts numbers on the claim:

* **overlap wins wall-clock** — the same protocol run over the same
  :class:`SimulatedWanTransport` (10 ms per-link latency, the paper's
  same-continent regime), sequentially (``overlap=False``: every link of
  every batch awaited one at a time) versus overlapped (batches dispatched
  as asyncio tasks). The sequential schedule pays the sum of all link
  delays; the overlapped one hides most of them behind GMW computation.
* **the released outputs never move** — every timed run must be
  bit-identical to ``engine="secure"`` before its row is worth printing;
  scheduling must never touch the transcript.

Because the timed quantity is dominated by *simulated* link delays (the
bus really sleeps them), the wall-clock here is far more stable across
machines than a compute-bound benchmark — which is what makes it usable
as a CI regression guard (see ``benchmarks/check_regression.py``).

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI on every push) shrinks
the network and iteration count so the full secure-async path — GMW
block batches, transfer conveys, WAN metering — runs in seconds.
"""

from __future__ import annotations

import os

from repro.api import StressTest
from repro.finance import Bank, FinancialNetwork
from tables import emit_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_BANKS = 4 if SMOKE else 6
ITERATIONS = 2 if SMOKE else 3
#: Paper regime: same-continent WAN links are ~10ms one way; the
#: acceptance bar for the secure-async engine is beating sequential there.
LATENCY_SECONDS = 0.010
TASKS = 8


def _chain_network(num_banks: int) -> FinancialNetwork:
    """A debt chain with one under-reserved bank: a cascading default
    whose secure run exercises every protocol phase."""
    net = FinancialNetwork()
    for i in range(num_banks):
        net.add_bank(Bank(i, cash=2.0 if i == 0 else (0.5 if i == num_banks - 1 else 1.0)))
    net.add_debt(0, 1, 4.0)
    for i in range(1, num_banks - 1):
        net.add_debt(i, i + 1, 3.0 - i * 0.2)
    return net


def test_secure_async_overlap_beats_sequential_wan(benchmark):
    network = _chain_network(NUM_BANKS)
    template = (
        StressTest(network)
        .program("eisenberg-noe")
        .preset("demo")
        .degree_bound(2)
        .configure(wan_latency_seconds=LATENCY_SECONDS, wan_jitter=0.25)
    )
    reference = template.clone().engine("secure").run(iterations=ITERATIONS)
    sequential = (
        template.clone()
        .engine("secure-async", transport="wan", overlap=False)
        .run(iterations=ITERATIONS)
    )
    overlapped = (
        template.clone()
        .engine("secure-async", transport="wan", tasks=TASKS)
        .run(iterations=ITERATIONS)
    )
    # correctness first: the schedule must never move a released bit
    for run in (sequential, overlapped):
        assert run.aggregate == reference.aggregate
        assert run.pre_noise_aggregate == reference.pre_noise_aggregate
        assert run.trajectory == reference.trajectory
    # the acceptance bar: overlap beats the sequential schedule
    assert overlapped.wall_seconds < sequential.wall_seconds, (
        overlapped.wall_seconds,
        sequential.wall_seconds,
    )
    rows = []
    for label, run in (
        ("secure (no bus)", reference),
        ("secure-async sequential", sequential),
        (f"secure-async@{TASKS}", overlapped),
    ):
        rows.append(
            [
                label,
                NUM_BANKS,
                int(run.extras.get("gmw_ot_count", 0)),
                f"{run.extras.get('simulated_seconds', 0.0):.3f}",
                f"{run.wall_seconds:.3f}",
                f"{(sequential.wall_seconds / run.wall_seconds):.2f}x",
            ]
        )
    emit_table(
        "Secure engine over the transport bus - overlap vs sequential on a 10ms WAN",
        ["schedule", "N", "GMW OTs", "sim link-s", "wall [s]", "vs sequential"],
        rows,
        [
            f"per-link latency {LATENCY_SECONDS * 1000:.0f}ms (+-25% deterministic jitter), "
            f"{ITERATIONS} rounds, demo preset, smoke={SMOKE}",
            "sequential awaits every OT batch link one at a time (sum of link delays);",
            "overlap dispatches block b's batch while block b+1's GMW evaluation runs",
            "all schedules verified bit-identical to engine='secure' before timing",
        ],
    )

    benchmark.pedantic(
        lambda: template.clone()
        .engine("secure-async", transport="wan", tasks=TASKS)
        .run(iterations=ITERATIONS),
        rounds=2,
        iterations=1,
    )
