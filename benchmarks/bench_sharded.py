"""Sharded engine: wall-clock vs ``plaintext`` at 1/2/4 shards.

The sharded backend is the repo's first intra-run distribution mechanism:
vertices partition across a process pool and ghost messages cross the
round barrier. This benchmark measures what that buys (or costs) on two
stylized interbank families — the Appendix C core-periphery network and
the scale-free alternative — and verifies on the way that every shard
count reproduces the plaintext trajectory bit-for-bit.

Expectations: per-round superstep fan-out pays one pickle/unpickle of the
shard state per round, so small pure-Python graphs on few cores show the
*overhead* (speedup < 1); the table exists to quantify exactly that
crossover, the way Fig. 6 quantifies the naive baseline's. Ghost-edge
counts contextualize the barrier traffic each shard count induces.
"""

from __future__ import annotations

import os

from repro.api import StressTest
from repro.crypto.rng import DeterministicRNG
from repro.finance import apply_shock, uniform_shock
from repro.graphgen import (
    CorePeripheryParams,
    ScaleFreeParams,
    core_periphery_network,
    scale_free_network,
)
from tables import emit_table

SHARD_COUNTS = (1, 2, 4)
ITERATIONS = 8
NUM_BANKS = 48


def _families():
    core = core_periphery_network(
        CorePeripheryParams(num_banks=NUM_BANKS, core_size=8), DeterministicRNG(1)
    )
    free = scale_free_network(
        ScaleFreeParams(num_banks=NUM_BANKS, attach_links=2, degree_cap=10),
        DeterministicRNG(2),
    )
    return {
        "core-periphery": apply_shock(core, uniform_shock(range(8), 0.9, "core")),
        "scale-free": apply_shock(free, uniform_shock(range(4), 0.9, "hubs")),
    }


def test_sharded_speedup_vs_plaintext(benchmark):
    rows = []
    for family, network in _families().items():
        template = StressTest(network).program("eisenberg-noe").seed(1)
        baseline = template.clone().engine("plaintext").run(iterations=ITERATIONS)
        rows.append(
            [family, NUM_BANKS, "plaintext", "-", f"{baseline.wall_seconds:.4f}", "1.00x", "-"]
        )
        for shards in SHARD_COUNTS:
            run = (
                template.clone()
                .engine("sharded", shards=shards)
                .run(iterations=ITERATIONS)
            )
            # correctness rides along: the table is only worth printing if
            # every shard count reproduces the reference bit-for-bit
            assert run.trajectory == baseline.trajectory, (family, shards)
            speedup = baseline.wall_seconds / run.wall_seconds
            rows.append(
                [
                    family,
                    NUM_BANKS,
                    f"sharded@{shards}",
                    int(run.extras["ghost_edges"]),
                    f"{run.wall_seconds:.4f}",
                    f"{speedup:.2f}x",
                    int(run.extras["ghost_messages"]),
                ]
            )

    emit_table(
        "Sharded engine - wall clock vs plaintext at 1/2/4 shards",
        [
            "graph family",
            "N",
            "engine",
            "ghost edges",
            "wall [s]",
            "speedup",
            "ghost msgs",
        ],
        rows,
        [
            f"host exposes {os.cpu_count()} CPU(s); speedup > 1 needs cores >= shards",
            "per-round state pickling is the fixed cost the async engine will amortize",
            "all shard counts verified bit-identical to plaintext before timing",
        ],
    )

    kernel_net = _families()["core-periphery"]
    benchmark.pedantic(
        lambda: StressTest(kernel_net)
        .program("eisenberg-noe")
        .engine("sharded", shards=2)
        .run(iterations=4),
        rounds=2,
        iterations=1,
    )
