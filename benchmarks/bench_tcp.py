"""Real sockets vs the WAN model: measured loopback wall-clock next to
the :func:`~repro.simulation.netsim.project_wan_seconds` projection.

Every WAN number this repo has reported so far was *projected*: a meter
added up the protocol's per-link bytes and arithmetic turned them into
seconds. The TCP transport closes that loop. This benchmark runs the
full secure protocol as a 3-party localhost cluster — one OS process per
party, every OT-extension byte framed onto a real socket, sender-paced
by genuine kernel backpressure — measures wall-clock, and prints it next
to what the WAN model projects for the *same* byte profile
(:func:`~repro.simulation.netsim.validate_wan_projection`).

The comparison direction matters: loopback has ~zero latency and
memory-speed bandwidth, so the measured time bounds the WAN projection
from *below*. A loopback measurement exceeding the projected WAN time
would mean the model underestimates real serialization/framing costs —
worth knowing, but not a CI gate: process spawn (~100ms per party) and
machine load dominate at smoke sizes, so the wall-clock column is
reported, not asserted. What *is* asserted, every run: all three
processes release output bit-identical to the in-memory secure engine.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI on every push) shrinks
the network and iteration count so the cluster spin-up stays in seconds.
"""

from __future__ import annotations

import os
import time

from repro.api import StressTest
from repro.finance import Bank, FinancialNetwork
from repro.net import run_scenario_cluster
from repro.simulation.netsim import validate_wan_projection
from tables import emit_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_BANKS = 4 if SMOKE else 6
ITERATIONS = 2 if SMOKE else 3
NUM_PARTIES = 3
#: Paper regime: same-continent WAN — ~10ms one-way latency, ~10 Mbit/s
#: per link (1.25 MB/s). The projection uses these; loopback pays ~none.
LATENCY_SECONDS = 0.010
BANDWIDTH_BYTES = 1.25e6


def _chain_network(num_banks: int) -> FinancialNetwork:
    """A debt chain with one under-reserved bank: a cascading default
    whose secure run exercises every protocol phase."""
    net = FinancialNetwork()
    for i in range(num_banks):
        net.add_bank(
            Bank(i, cash=2.0 if i == 0 else (0.5 if i == num_banks - 1 else 1.0))
        )
    net.add_debt(0, 1, 4.0)
    for i in range(1, num_banks - 1):
        net.add_debt(i, i + 1, 3.0 - i * 0.2)
    return net


def _build(_party_id):
    """One party's scenario — identical at every replica by construction."""
    return (
        StressTest(_chain_network(NUM_BANKS))
        .program("eisenberg-noe")
        .preset("demo")
        .degree_bound(2)
    )


def _run_cluster(engine: str):
    started = time.perf_counter()
    outcomes = run_scenario_cluster(
        _build,
        num_parties=NUM_PARTIES,
        engine=engine,
        iterations=ITERATIONS,
        session=f"bench-tcp-{engine}",
        timeout=300.0,
    )
    return outcomes, time.perf_counter() - started


def test_tcp_loopback_measured_vs_wan_projection(benchmark):
    # the in-memory secure run supplies both the bit-identity reference
    # and the per-link byte profile (result.traffic meters every
    # OT-extension byte pairwise) that the WAN projection feeds on
    reference = _build(None).engine("secure").run(iterations=ITERATIONS)

    outcomes, measured = _run_cluster("secure-async")
    assert [o.status for o in outcomes] == ["ok"] * NUM_PARTIES, outcomes
    for outcome in outcomes:
        assert outcome.summary["aggregate"] == reference.aggregate
        assert outcome.summary["pre_noise_aggregate"] == reference.pre_noise_aggregate
        assert outcome.summary["noise_raw"] == reference.noise_raw
        assert outcome.summary["trajectory"] == reference.trajectory

    validation = validate_wan_projection(
        reference.traffic, LATENCY_SECONDS, BANDWIDTH_BYTES, measured
    )
    wire_bytes = sum(
        o.summary["extras"].get("wire_bytes_sent", 0.0) for o in outcomes
    )
    projection = validation.projection
    emit_table(
        "TCP transport - measured loopback cluster vs projected WAN",
        [
            "parties",
            "N",
            "iterations",
            "wire bytes (real)",
            "metered bytes",
            "measured [s]",
            "WAN seq [s]",
            "WAN overlap [s]",
            "measured/seq",
            "measured/overlap",
        ],
        [
            [
                NUM_PARTIES,
                NUM_BANKS,
                ITERATIONS,
                int(wire_bytes),
                int(projection.total_bytes),
                f"{measured:.3f}",
                f"{projection.sequential_seconds:.3f}",
                f"{projection.overlapped_seconds:.3f}",
                f"{validation.measured_vs_sequential:.2f}x",
                f"{validation.measured_vs_overlapped:.2f}x",
            ]
        ],
        [
            f"3 OS processes on 127.0.0.1, every byte framed over real TCP; smoke={SMOKE}",
            "measured includes process spawn + mesh handshake (~100ms/party), so it is",
            "reported next to the projection, not gated against it",
            f"projection: {LATENCY_SECONDS*1000:.0f}ms/link latency, "
            f"{BANDWIDTH_BYTES/1e6:.2f} MB/s links over the secure run's metered link profile",
            "all parties verified bit-identical to engine='secure' before timing",
        ],
    )

    # the timed kernel: the cheaper float-mode cluster, so the benchmark
    # tracks transport + harness cost rather than GMW compute
    def kernel():
        outcomes, _elapsed = _run_cluster("async")
        assert all(o.ok for o in outcomes), outcomes

    benchmark.pedantic(kernel, rounds=2, iterations=1)
