"""§5.2/§5.3 microbenchmarks of the message transfer protocol.

Time: one 12-bit message between two blocks took 285 ms (block 8) to
610 ms (block 20) on the paper's hardware — linear in k, dominated by
exponentiations.

Traffic: node u receives (k+1)^2 subshares (97-595 kB), members of B_u and
node v are linear in k (<= 29 kB), members of B_v constant (~1.4 kB).

We measure the same protocol at scaled block sizes over two group sizes
and print the role-by-role traffic with the paper's 97-byte uncompressed
secp384r1 elements alongside our compressed encodings.
"""

from __future__ import annotations

import time

import pytest

from conftest import BLOCK_SIZES
from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.group import GROUP_256, TOY_GROUP_64
from repro.crypto.keys import SchnorrSigner
from repro.crypto.rng import DeterministicRNG
from repro.sharing import share_value
from repro.transfer.certificates import build_certificate, generate_member_keys
from repro.transfer.protocol import MessageTransferProtocol, TransferTraffic
from tables import emit_table

BITS = 12  # the paper's share width


def _run_transfer(group, block_size: int, rng) -> float:
    elgamal = ExponentialElGamal(group, dlog_half_width=256)
    signer = SchnorrSigner(group)
    tp_key = signer.keygen(rng)
    members = [generate_member_keys(elgamal, BITS, rng) for _ in range(block_size)]
    neighbor_key = group.random_scalar(rng)
    certificate = build_certificate(
        elgamal, signer, tp_key, 0, 0, members, neighbor_key, rng
    )
    protocol = MessageTransferProtocol(elgamal, BITS, noise_alpha=0.5)
    shares = share_value(rng.randbits(BITS), BITS, block_size, rng)
    started = time.perf_counter()
    result = protocol.execute(shares, certificate, neighbor_key, members, rng)
    elapsed = time.perf_counter() - started
    assert result.reconstruct(BITS) == result.reconstruct(BITS)  # stable
    return elapsed


def test_transfer_time_linear_in_block_size(benchmark):
    rng = DeterministicRNG("transfer-time")
    rows = []
    toy_times = []
    for block in BLOCK_SIZES:
        toy = _run_transfer(TOY_GROUP_64, block, rng)
        big = _run_transfer(GROUP_256, block, rng)
        toy_times.append(toy)
        rows.append([block, toy * 1000, big * 1000])

    # Single-node simulation executes all (k+1) senders serially, so the
    # end-to-end simulated time grows ~quadratically; per-node (paper's
    # metric) is time / block size — check that is ~linear.
    per_node = [t / b for t, b in zip(toy_times, BLOCK_SIZES)]
    ratio = per_node[-1] / per_node[0]
    expected = BLOCK_SIZES[-1] / BLOCK_SIZES[0]
    assert ratio == pytest.approx(expected, rel=0.6)

    emit_table(
        "Transfer microbenchmark (§5.2) - one 12-bit message [ms, all roles serialized]",
        ["block", "toy-64 group", "schnorr-256"],
        rows,
        [
            "paper: 285 ms (block 8) -> 610 ms (block 20), linear in k per node",
            "simulation runs every role on one core; divide by block size for per-node time",
        ],
    )
    benchmark.pedantic(lambda: _run_transfer(TOY_GROUP_64, 3, rng), rounds=3, iterations=1)


def test_transfer_traffic_roles(benchmark):
    """§5.3 role traffic, exact formulas. Two element encodings: ours
    (compressed P-384, 49 B) and the paper's (uncompressed, 97 B)."""
    rows = []
    for block in (8, 12, 16, 20):
        paper = TransferTraffic(element_bytes=97, block_size=block, message_bits=12)
        ours = TransferTraffic(element_bytes=49, block_size=block, message_bits=12)
        rows.append(
            [
                block,
                paper.node_u_received_bytes / 1e3,
                paper.sender_member_bytes / 1e3,
                paper.receiver_member_bytes / 1e3,
                ours.node_u_received_bytes / 1e3,
            ]
        )

    # Paper anchor points: 97 kB at block 8, 595 kB at block 20 for node u;
    # <= 29 kB for linear roles; ~1.4 kB for receivers.
    block8 = TransferTraffic(element_bytes=97, block_size=8, message_bits=12)
    block20 = TransferTraffic(element_bytes=97, block_size=20, message_bits=12)
    assert block8.node_u_received_bytes == pytest.approx(97e3, rel=0.25)
    assert block20.node_u_received_bytes == pytest.approx(595e3, rel=0.25)
    assert block20.sender_member_bytes < 29e3 * 1.2
    assert block20.receiver_member_bytes == pytest.approx(1.4e3, rel=0.25)

    emit_table(
        "Transfer traffic by role (§5.3) [kB]",
        ["block", "node u recv (97B)", "B_u member (97B)", "B_v member (97B)", "node u recv (49B)"],
        rows,
        [
            "paper anchors: u recv 97 kB @ block 8, 595 kB @ block 20;",
            "members linear <= 29 kB; receivers constant ~1.4 kB - all reproduced",
        ],
    )
    benchmark.pedantic(
        lambda: TransferTraffic(element_bytes=97, block_size=20, message_bits=12).node_u_received_bytes,
        rounds=5,
        iterations=1,
    )
