"""§4.5 utility analysis + the appendix's noise-impact experiment.

Two questions the paper answers with policy arithmetic and one experiment:

1. How should epsilon be chosen, and how often can the stress test run?
   (eps_max = ln 2, T = $1B, s = 2/r = 20, +-$200B at 95% => eps >= 0.23,
   3 runs/year.)
2. Does the DP noise destroy the utility of the risk measure? (No: the
   noise scale is tiny relative to a crisis-scale TDS.)

We reproduce the arithmetic exactly and run the experiment: noisy vs exact
TDS across shock severities on a 50-bank core-periphery network, checking
that noisy readings preserve the severity ordering.
"""

from __future__ import annotations

import math

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.finance import apply_shock, clearing_vector, uniform_shock
from repro.graphgen import core_periphery_network
from repro.privacy import DollarPrivacySpec, UtilityAnalysis, measure_noise_impact
from tables import emit_table


def test_policy_arithmetic(benchmark):
    analysis = UtilityAnalysis()
    rows = [
        ["epsilon_max (ln 2)", f"{math.log(2):.4f}", f"{analysis.epsilon_max:.4f}"],
        ["granularity T", "$1B", f"${analysis.granularity_usd/1e9:.0f}B"],
        ["sensitivity 2/r", "20", f"{analysis.sensitivity_units:.0f}"],
        ["epsilon_query", ">= 0.23", f"{analysis.epsilon_query:.4f}"],
        ["runs per year", "3", str(analysis.runs_per_year)],
        ["noise scale", "T*20/0.23", f"${analysis.noise_scale_usd/1e9:.1f}B"],
    ]
    assert analysis.epsilon_query == pytest.approx(0.2303, abs=0.001)
    assert analysis.runs_per_year == 3
    emit_table(
        "§4.5 utility analysis - paper vs reproduced",
        ["quantity", "paper", "ours"],
        rows,
    )
    benchmark.pedantic(lambda: UtilityAnalysis().epsilon_query, rounds=5, iterations=1)


def test_noise_impact_on_tds(benchmark):
    """The appendix experiment: DP noise vs the $500B-scale TDS."""
    rng = DeterministicRNG("utility-bench")
    spec = UtilityAnalysis().spec()
    stats = measure_noise_impact(500e9, spec, rng, trials=2000)
    rows = [
        ["true TDS", f"${stats['true_value']/1e9:.0f}B"],
        ["mean release", f"${stats['mean_release']/1e9:.1f}B"],
        ["median |error|", f"${stats['median_abs_error']/1e9:.1f}B"],
        ["95th pct |error|", f"${stats['p95_abs_error']/1e9:.1f}B"],
        ["relative p95 error", f"{stats['relative_p95_error']*100:.1f}%"],
    ]
    # §4.5's requirement: under $200B with ~95% confidence.
    assert stats["p95_abs_error"] < 270e9
    assert abs(stats["mean_release"] - 500e9) < 30e9
    emit_table(
        "Appendix utility experiment - released vs exact TDS ($500B scale)",
        ["quantity", "value"],
        rows,
        ["a $0.95B reading of a $1B shortfall is still an early warning (§2.3)"],
    )
    benchmark.pedantic(
        lambda: measure_noise_impact(500e9, spec, rng, trials=100), rounds=2, iterations=1
    )


def test_noisy_tds_preserves_severity_ordering(benchmark):
    """Escalating shocks must stay distinguishable through the noise."""
    network = core_periphery_network()
    rng = DeterministicRNG("ordering")
    # Amounts are in units of T ($1B); use the paper's EN sensitivity 1/r.
    spec = DollarPrivacySpec(granularity=1.0, sensitivity=10.0, epsilon=0.23)

    severities = (0.0, 0.5, 0.9)
    rows = []
    exact_values = []
    noisy_means = []
    for severity in severities:
        shocked = apply_shock(
            network, uniform_shock(range(10), severity, label=f"core-{severity}")
        )
        exact = clearing_vector(shocked).total_shortfall
        releases = [spec.release(exact, rng) for _ in range(200)]
        mean_release = sum(releases) / len(releases)
        exact_values.append(exact)
        noisy_means.append(mean_release)
        rows.append([severity, exact, mean_release])

    assert exact_values == sorted(exact_values)
    assert noisy_means == sorted(noisy_means), "noise must not scramble severities"
    emit_table(
        "Noisy TDS across core-shock severities [units of $1B]",
        ["severity", "exact TDS", "mean noisy TDS (200 releases)"],
        rows,
        ["escalating core shocks remain ordered through DP noise"],
    )
    benchmark.pedantic(
        lambda: clearing_vector(apply_shock(network, uniform_shock(range(10), 0.5))),
        rounds=2,
        iterations=1,
    )
