"""Continual release: what a windowed schedule costs over one-shot.

The lifecycle seam (``release="windowed"``) splits one run's round
schedule into windows, each publishing its own noised value at a
per-window epsilon — the continual-release half of the streaming item
in ROADMAP.md. The seam's promise is that windowing is *bookkeeping*,
not a different protocol: the rounds executed are the same rounds, so
the only new cost is the per-window aggregate/noise/release tail. This
benchmark puts numbers on that claim:

* **overhead is the tail, not the rounds** — the same schedule run
  one-shot versus split into windows, for the float-path reference
  engine and the paper's secure engine. The wall-clock gap is the
  per-window aggregation + noise draw + ledger entry; the table prints
  it next to the per-stage timings so a regression in the seam itself
  (rather than the engines) is visible.
* **budget shape** — one-shot spends ``output_epsilon`` once; windowed
  spends ``W x window_epsilon`` as W audit-ledger entries that must
  reconcile bit-for-bit.

Correctness rides along: the windowed run's pre-noise aggregate and
trajectory must be bit-identical to the one-shot run's before its row
is worth printing, and the accountant's ledger must reconcile.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI on every push) shrinks
the schedule so the full windowed path — admission precharge, resumable
windows, per-window ledger entries — runs in seconds on both supported
Pythons. The timings are compute-bound (no WAN sleeps), so the timed
case sits in BENCH_BASELINE.json's ``volatile`` list: the correctness
assertions are the gate, not the mean.
"""

from __future__ import annotations

import os

from repro import Bank, FinancialNetwork, PrivacyAccountant, StressTest
from tables import emit_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
ITERATIONS = 4 if SMOKE else 6
WINDOWS = [2, 2] if SMOKE else [2, 2, 2]
WINDOW_EPSILON = 0.1
ENGINES = ("plaintext", "secure") if SMOKE else ("plaintext", "async", "secure")


def _network() -> FinancialNetwork:
    network = FinancialNetwork()
    network.add_bank(Bank(0, cash=2.0))
    network.add_bank(Bank(1, cash=1.0))
    network.add_bank(Bank(2, cash=1.0))
    network.add_bank(Bank(3, cash=0.5))
    network.add_debt(0, 1, 4.0)
    network.add_debt(0, 2, 2.0)
    network.add_debt(1, 3, 3.0)
    network.add_debt(2, 3, 1.0)
    return network


def _template() -> StressTest:
    return (
        StressTest(_network())
        .program("eisenberg-noe")
        .preset("demo")
        .degree_bound(2)
    )


def _stage_tail_seconds(result) -> float:
    """Seconds spent in the per-window tail stages (aggregate/noise/release)."""
    seconds = result.phases.seconds
    return sum(seconds.get(f"stage:{name}", 0.0) for name in ("aggregate", "noise", "release"))


def test_windowed_release_overhead(benchmark):
    rows = []
    for engine in ENGINES:
        oneshot = (
            _template()
            .engine(engine)
            .privacy(accountant=PrivacyAccountant())
            .run(iterations=ITERATIONS)
        )
        accountant = PrivacyAccountant()
        windowed = (
            _template()
            .engine(
                engine,
                release="windowed",
                windows=WINDOWS,
                window_epsilon=WINDOW_EPSILON,
            )
            .privacy(accountant=accountant)
            .run(iterations=ITERATIONS)
        )
        # correctness first: windowing must not move a bit of the protocol.
        # float engines are non-releasing one-shot (exact_aggregate is the
        # raw value); the secure family noises one-shot by default.
        assert windowed.trajectory == oneshot.trajectory, engine
        assert windowed.pre_noise_aggregate == oneshot.exact_aggregate, engine
        assert len(windowed.releases) == len(WINDOWS), engine
        # budget shape: W ledger entries summing to W x window_epsilon
        assert accountant.spent == len(WINDOWS) * WINDOW_EPSILON
        assert accountant.reconcile().ok
        for label, run, releases in (
            ("one-shot", oneshot, 1 if oneshot.releases_output else 0),
            ("windowed " + "+".join(str(w) for w in WINDOWS), windowed, len(WINDOWS)),
        ):
            rows.append(
                [
                    engine,
                    label,
                    ITERATIONS,
                    releases,
                    f"{_stage_tail_seconds(run) * 1000:.2f}",
                    f"{run.wall_seconds:.4f}",
                    f"{run.epsilon:.2f}" if run.epsilon is not None else "-",
                ]
            )
    emit_table(
        "Continual release - windowed schedule vs one-shot (same rounds)",
        [
            "engine",
            "schedule",
            "rounds",
            "releases",
            "agg+noise+release [ms]",
            "wall [s]",
            "epsilon",
        ],
        rows,
        [
            f"{ITERATIONS} rounds, windows {WINDOWS}, "
            f"epsilon {WINDOW_EPSILON}/window, smoke={SMOKE}",
            "same rounds either way: the delta is the per-window release tail",
            "windowed pre-noise aggregate + trajectory verified bit-identical",
            "to one-shot, and the audit ledger reconciled, before timing",
        ],
    )

    benchmark.pedantic(
        lambda: _template()
        .engine(
            "plaintext",
            release="windowed",
            windows=WINDOWS,
            window_epsilon=WINDOW_EPSILON,
        )
        .run(iterations=ITERATIONS),
        rounds=3,
        iterations=1,
    )
