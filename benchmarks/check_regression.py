"""The CI benchmark-regression guard.

CI reruns the smoke benchmarks (``bench_async.py``,
``bench_secure_async.py`` under ``REPRO_BENCH_SMOKE=1``) on every push
with ``--benchmark-json``, and this script compares the fresh means
against the committed ``BENCH_BASELINE.json``: a benchmark more than
``--threshold`` (default 30%) slower than its baseline fails the build,
and every comparison lands as a markdown delta table in
``$GITHUB_STEP_SUMMARY`` (or stdout when unset).

Why wall-clock comparison is not hopeless noise here: both guarded
benchmarks run over a realtime :class:`SimulatedWanTransport`, so their
timings are dominated by *simulated link delays* the bus genuinely
sleeps — a scheduling regression (an await that should overlap but
doesn't) moves the number by integer factors, while machine speed moves
it by percents. The 30% gate sits between the two.

Usage::

    # refresh the committed baseline (run on the reference machine):
    python benchmarks/check_regression.py --write-baseline \
        --results bench_results.json --baseline BENCH_BASELINE.json

    # gate a CI run:
    python benchmarks/check_regression.py --check \
        --results bench_results.json --baseline BENCH_BASELINE.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict

DEFAULT_THRESHOLD = 0.30


def load_result_means(results_path: Path) -> Dict[str, float]:
    """Benchmark name -> mean seconds, from a pytest-benchmark JSON file."""
    with results_path.open() as handle:
        payload = json.load(handle)
    means = {}
    for bench in payload.get("benchmarks", []):
        means[bench["name"]] = float(bench["stats"]["mean"])
    if not means:
        raise SystemExit(f"no benchmarks found in {results_path}")
    return means


def write_baseline(means: Dict[str, float], baseline_path: Path) -> None:
    baseline = {
        "comment": (
            "Smoke-benchmark means (seconds) the CI regression guard compares "
            "against; refresh with benchmarks/check_regression.py --write-baseline"
        ),
        "threshold": DEFAULT_THRESHOLD,
        "benchmarks": {name: {"mean": mean} for name, mean in sorted(means.items())},
    }
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {len(means)} baseline entr{'y' if len(means) == 1 else 'ies'} to {baseline_path}")


def markdown_delta_table(rows) -> str:
    lines = [
        "## Benchmark regression guard",
        "",
        "| benchmark | baseline [s] | current [s] | delta | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    for name, base, current, delta, verdict in rows:
        base_cell = f"{base:.4f}" if base is not None else "-"
        delta_cell = f"{delta:+.1%}" if delta is not None else "-"
        lines.append(f"| `{name}` | {base_cell} | {current:.4f} | {delta_cell} | {verdict} |")
    lines.append("")
    return "\n".join(lines)


def check(means: Dict[str, float], baseline_path: Path, threshold: float) -> int:
    with baseline_path.open() as handle:
        baseline = json.load(handle)
    base_means = {
        name: float(entry["mean"]) for name, entry in baseline["benchmarks"].items()
    }
    rows = []
    failures = []
    for name in sorted(set(means) | set(base_means)):
        current = means.get(name)
        base = base_means.get(name)
        if current is None:
            rows.append((name, base, float("nan"), None, "MISSING from this run"))
            failures.append(f"{name}: present in baseline but not in results")
            continue
        if base is None:
            # a new benchmark has no history to regress against: record it
            # so the next --write-baseline picks it up, but don't fail
            rows.append((name, None, current, None, "NEW (no baseline)"))
            continue
        delta = (current - base) / base
        if delta > threshold:
            verdict = f"FAIL (> {threshold:.0%} slower)"
            failures.append(f"{name}: {base:.4f}s -> {current:.4f}s ({delta:+.1%})")
        else:
            verdict = "ok"
        rows.append((name, base, current, delta, verdict))

    table = markdown_delta_table(rows)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(table + "\n")
    print(table)
    if failures:
        print("benchmark regression guard FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"benchmark regression guard ok ({len(rows)} benchmarks within {threshold:.0%})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", type=Path, required=True,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_BASELINE.json"))
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max tolerated slowdown fraction (default 0.30)")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="compare results against the baseline; exit 1 on regression")
    mode.add_argument("--write-baseline", action="store_true",
                      help="(re)write the baseline from the results")
    args = parser.parse_args()

    means = load_result_means(args.results)
    if args.write_baseline:
        write_baseline(means, args.baseline)
        return 0
    return check(means, args.baseline, args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())
