"""The CI benchmark-regression guard.

CI reruns the smoke benchmarks (``bench_async.py``,
``bench_secure_async.py`` under ``REPRO_BENCH_SMOKE=1``) on every push
with ``--benchmark-json``, and this script compares the fresh means
against the committed ``BENCH_BASELINE.json``: a benchmark more than
``--threshold`` (default 30%) slower than its baseline fails the build,
and every comparison lands as a markdown delta table in
``$GITHUB_STEP_SUMMARY`` (or stdout when unset).

Why wall-clock comparison is not hopeless noise here: both guarded
benchmarks run over a realtime :class:`SimulatedWanTransport`, so their
timings are dominated by *simulated link delays* the bus genuinely
sleeps — a scheduling regression (an await that should overlap but
doesn't) moves the number by integer factors, while machine speed moves
it by percents. The 30% gate sits between the two.

Compute-bound benchmarks (the bit-sliced GMW throughput pair in
``bench_bitslice.py``) cannot be gated on a committed wall-clock mean —
CI machine speed would dominate. They are guarded as **ratios** instead:
the baseline's ``ratios`` section names a fast/slow benchmark pair and a
minimum speedup, and both means come from the *same* run on the *same*
machine, so the quotient is portable. Benchmarks listed in the
baseline's ``volatile`` list are exempt from the mean comparison (and
from ``--write-baseline``) precisely because a ratio entry covers them.

Usage::

    # refresh the committed baseline (run on the reference machine):
    python benchmarks/check_regression.py --write-baseline \
        --results bench_results.json --baseline BENCH_BASELINE.json

    # gate a CI run:
    python benchmarks/check_regression.py --check \
        --results bench_results.json --baseline BENCH_BASELINE.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict

DEFAULT_THRESHOLD = 0.30


def load_result_means(results_path: Path) -> Dict[str, float]:
    """Benchmark name -> mean seconds, from a pytest-benchmark JSON file."""
    with results_path.open() as handle:
        payload = json.load(handle)
    means = {}
    for bench in payload.get("benchmarks", []):
        means[bench["name"]] = float(bench["stats"]["mean"])
    if not means:
        raise SystemExit(f"no benchmarks found in {results_path}")
    return means


def write_baseline(means: Dict[str, float], baseline_path: Path) -> None:
    """Rewrite the mean entries; carry the machine-portable sections
    (``ratios``, ``volatile``) over from the existing baseline and keep
    volatile benchmarks out of the mean table."""
    existing = {}
    if baseline_path.exists():
        with baseline_path.open() as handle:
            existing = json.load(handle)
    volatile = list(existing.get("volatile", []))
    means = {name: mean for name, mean in means.items() if name not in volatile}
    baseline = {
        "comment": (
            "Smoke-benchmark means (seconds) the CI regression guard compares "
            "against; refresh with benchmarks/check_regression.py --write-baseline"
        ),
        "threshold": DEFAULT_THRESHOLD,
        "benchmarks": {name: {"mean": mean} for name, mean in sorted(means.items())},
    }
    if volatile:
        baseline["volatile"] = volatile
    if existing.get("ratios"):
        baseline["ratios"] = existing["ratios"]
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {len(means)} baseline entr{'y' if len(means) == 1 else 'ies'} to {baseline_path}")


def markdown_delta_table(rows) -> str:
    lines = [
        "## Benchmark regression guard",
        "",
        "| benchmark | baseline [s] | current [s] | delta | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    for name, base, current, delta, verdict in rows:
        base_cell = f"{base:.4f}" if base is not None else "-"
        delta_cell = f"{delta:+.1%}" if delta is not None else "-"
        lines.append(f"| `{name}` | {base_cell} | {current:.4f} | {delta_cell} | {verdict} |")
    lines.append("")
    return "\n".join(lines)


def markdown_ratio_table(rows) -> str:
    lines = [
        "### Speedup ratio guard",
        "",
        "| ratio | slow / fast | required | measured | verdict |",
        "|---|---|---:|---:|---|",
    ]
    for name, pair, required, measured, verdict in rows:
        measured_cell = f"{measured:.1f}x" if measured is not None else "-"
        lines.append(
            f"| `{name}` | {pair} | >= {required:.1f}x | {measured_cell} | {verdict} |"
        )
    lines.append("")
    return "\n".join(lines)


def check_ratios(means: Dict[str, float], baseline: dict):
    """Same-run speedup guards: ``means[slow] / means[fast]`` must reach
    each entry's ``min_speedup``. Missing benchmarks fail loudly — a
    silently skipped guard is how a 5x claim rots."""
    rows = []
    failures = []
    for name, spec in sorted(baseline.get("ratios", {}).items()):
        fast, slow = spec["fast"], spec["slow"]
        required = float(spec["min_speedup"])
        pair = f"`{slow}` / `{fast}`"
        if fast not in means or slow not in means:
            missing = [b for b in (fast, slow) if b not in means]
            rows.append((name, pair, required, None, "MISSING from this run"))
            failures.append(f"{name}: benchmark(s) missing from results: {missing}")
            continue
        measured = means[slow] / means[fast]
        if measured < required:
            verdict = f"FAIL (< {required:.1f}x)"
            failures.append(
                f"{name}: speedup {measured:.2f}x below required {required:.1f}x"
            )
        else:
            verdict = "ok"
        rows.append((name, pair, required, measured, verdict))
    return rows, failures


def deltas_json(rows, ratio_rows, failures, threshold: float) -> dict:
    """The markdown tables' machine-readable twin: a versioned document
    downstream tooling can diff without scraping markdown."""
    return {
        "schema": "dstress.bench.deltas",
        "version": 1,
        "threshold": threshold,
        "benchmarks": [
            {
                "name": name,
                "baseline_mean": base,
                # a benchmark missing from this run carries NaN in the
                # markdown row; null is the JSON-safe spelling
                "current_mean": None if current != current else current,
                "delta": delta,
                "verdict": verdict,
            }
            for name, base, current, delta, verdict in rows
        ],
        "ratios": [
            {
                "name": name,
                "pair": pair,
                "min_speedup": required,
                "measured": measured,
                "verdict": verdict,
            }
            for name, pair, required, measured, verdict in ratio_rows
        ],
        "failures": list(failures),
        "ok": not failures,
    }


def check(
    means: Dict[str, float],
    baseline_path: Path,
    threshold: float,
    json_out: Path | None = None,
) -> int:
    with baseline_path.open() as handle:
        baseline = json.load(handle)
    base_means = {
        name: float(entry["mean"]) for name, entry in baseline["benchmarks"].items()
    }
    volatile = set(baseline.get("volatile", []))
    rows = []
    failures = []
    for name in sorted(set(means) | set(base_means)):
        current = means.get(name)
        base = base_means.get(name)
        if current is None:
            rows.append((name, base, float("nan"), None, "MISSING from this run"))
            failures.append(f"{name}: present in baseline but not in results")
            continue
        if name in volatile:
            # compute-bound on purpose: gated by a ratio entry, not a mean
            rows.append((name, None, current, None, "volatile (ratio-guarded)"))
            continue
        if base is None:
            # a new benchmark has no history to regress against: record it
            # so the next --write-baseline picks it up, but don't fail
            rows.append((name, None, current, None, "NEW (no baseline)"))
            continue
        delta = (current - base) / base
        if delta > threshold:
            verdict = f"FAIL (> {threshold:.0%} slower)"
            failures.append(f"{name}: {base:.4f}s -> {current:.4f}s ({delta:+.1%})")
        else:
            verdict = "ok"
        rows.append((name, base, current, delta, verdict))

    ratio_rows, ratio_failures = check_ratios(means, baseline)
    failures.extend(ratio_failures)

    table = markdown_delta_table(rows)
    if ratio_rows:
        table += "\n" + markdown_ratio_table(ratio_rows)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(table + "\n")
    print(table)
    if json_out is not None:
        json_out.write_text(
            json.dumps(deltas_json(rows, ratio_rows, failures, threshold), indent=2)
            + "\n"
        )
    if failures:
        print("benchmark regression guard FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"benchmark regression guard ok ({len(rows)} benchmarks within "
        f"{threshold:.0%}, {len(ratio_rows)} speedup ratio(s) held)"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", type=Path, required=True,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_BASELINE.json"))
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max tolerated slowdown fraction (default 0.30)")
    parser.add_argument("--json-out", type=Path, default=None,
                        help="also write the deltas as a machine-readable "
                             "dstress.bench.deltas JSON document (--check only)")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="compare results against the baseline; exit 1 on regression")
    mode.add_argument("--write-baseline", action="store_true",
                      help="(re)write the baseline from the results")
    args = parser.parse_args()

    means = load_result_means(args.results)
    if args.write_baseline:
        write_baseline(means, args.baseline)
        return 0
    return check(means, args.baseline, args.threshold, json_out=args.json_out)


if __name__ == "__main__":
    raise SystemExit(main())
