"""Shared fixtures and scaled-down parameters for the benchmark suite.

Pure Python cannot run the paper's exact block sizes (8-20 GMW parties
with million-gate circuits) in benchmark time, so every benchmark runs a
*scaled* parameter sweep — enough points to exhibit the paper's shapes
(linear in block size / D / N, quadratic end-to-end in k, O(N^3) naive
baseline) — and prints the paper's reported regime next to ours. The
Figure 6 benchmark closes the loop by projecting to full scale with the
paper's own microbenchmark-calibration method.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.crypto.group import TOY_GROUP_64
from repro.crypto.rng import DeterministicRNG
from repro.mpc.fixedpoint import FixedPointFormat

#: Block sizes swept by the microbenchmarks (paper: 8, 12, 16, 20).
BLOCK_SIZES = (2, 3, 4, 5)
#: Degree bounds swept (paper: 10, 40, 70, 100).
DEGREE_BOUNDS = (1, 2, 4, 6)
#: Vertex counts for aggregation sweeps (paper: 50, 100, 150, 200).
AGG_SIZES = (4, 8, 12, 16)


@pytest.fixture
def rng():
    return DeterministicRNG("bench")


@pytest.fixture
def fmt():
    return FixedPointFormat(16, 8)


@pytest.fixture
def bench_group():
    """Crypto group for benchmark runs: the toy group keeps sweeps fast;
    group-size scaling is reported separately by the transfer bench."""
    return TOY_GROUP_64
