"""Table emission for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation and prints it in a uniform format, bypassing pytest's capture
so the series appear in the benchmark run's output (and in
``bench_output.txt``). Rows are also appended to ``bench_results.txt`` at
the repository root so paper-comparison write-ups can cite a stable log.
"""

from __future__ import annotations

import os
import sys
from typing import Iterable, Sequence

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "bench_results.txt")


def emit_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: Sequence[str] = (),
) -> None:
    """Print a fixed-width table to real stdout and log it to disk."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines = ["", "=" * 72, title, "=" * 72]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    for note in notes:
        lines.append(f"  note: {note}")
    text = "\n".join(lines) + "\n"

    # pytest replaces sys.stdout; __stdout__ is the real terminal stream.
    stream = sys.__stdout__ if sys.__stdout__ is not None else sys.stdout
    stream.write(text)
    stream.flush()
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(text)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)
