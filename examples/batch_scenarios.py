"""Batch scenario sweep: one session, many shocks, one privacy budget.

The regulator's real workload (§2, §4.5): compare several shock scenarios
on the interbank network, releasing one differentially private total
dollar shortfall per scenario, without ever exceeding the yearly ln 2
budget. The unified session API turns that into one ``run_many`` call:

* scenarios are resolved and budget-checked *before* any MPC runs —
  an over-budget batch is refused whole;
* the resolved runs fan across a multiprocessing pool;
* results come back in input order, bit-reproducible across runs and
  worker counts.

The sweep below runs the first four scenarios through the full secure
engine (demo parameters) and shows that the fifth would be refused: five
releases at epsilon 0.16 do not fit in ln 2 ≈ 0.693.

Run: python examples/batch_scenarios.py
"""

from repro import (
    Bank,
    FinancialNetwork,
    PrivacyAccountant,
    Scenario,
    StressTest,
)
from repro.exceptions import PrivacyBudgetExceeded
from repro.finance import apply_shock, uniform_shock


def build_network() -> FinancialNetwork:
    """Four banks with a cascading default when bank 0 is shocked."""
    network = FinancialNetwork()
    network.add_bank(Bank(0, cash=2.0))
    network.add_bank(Bank(1, cash=1.0))
    network.add_bank(Bank(2, cash=1.0))
    network.add_bank(Bank(3, cash=0.5))
    network.add_debt(0, 1, 4.0)
    network.add_debt(0, 2, 2.0)
    network.add_debt(1, 3, 3.0)
    network.add_debt(2, 3, 1.0)
    return network


def main() -> None:
    network = build_network()
    accountant = PrivacyAccountant()  # eps_max = ln 2 (§4.5)
    epsilon = 0.16

    template = (
        StressTest(network)
        .program("eisenberg-noe")
        .engine("secure")
        .preset("demo")
        .privacy(epsilon=epsilon)
        .degree_bound(2)
    )

    scenarios = [
        Scenario(name="baseline", seed=11),
        Scenario(
            name="bank-0 reserves -50%",
            network=apply_shock(network, uniform_shock([0], 0.5)),
            seed=12,
        ),
        Scenario(
            name="bank-0 wiped out",
            network=apply_shock(network, uniform_shock([0], 1.0)),
            seed=13,
        ),
        Scenario(
            name="system-wide -25%",
            network=apply_shock(network, uniform_shock(range(4), 0.25)),
            seed=14,
        ),
    ]

    batch = template.run_many(scenarios, workers=2, accountant=accountant)

    print(
        f"{'scenario':24s} {'released TDS':>13s} {'exact (sim)':>12s} "
        f"{'rounds':>7s} {'seconds':>8s}"
    )
    print("-" * 69)
    for outcome in batch:
        result = outcome.result
        print(
            f"{outcome.name:24s} {result.aggregate:13.3f} "
            f"{result.pre_noise_aggregate:12.3f} "
            f"{result.iterations:7d} {outcome.seconds:8.2f}"
        )
    print("-" * 69)
    print(batch.summary())
    print(
        "note: the Laplace scale s/eps = 10/0.16 ≈ 62 units dwarfs this toy "
        "network's TDS —\nthe paper's networks measure shortfalls in the "
        "hundreds of units, where the same\nnoise is a few percent."
    )
    print(
        f"budget: spent {accountant.spent:.3f} of {accountant.epsilon_max:.3f}; "
        f"remaining {accountant.remaining:.3f}"
    )

    # A fifth release would overrun the yearly budget — refused up front,
    # before a single MPC round runs.
    try:
        template.run_many([Scenario(name="one-too-many", seed=15)],
                          accountant=accountant)
    except PrivacyBudgetExceeded as exc:
        print(f"\nfifth release refused: {exc}")


if __name__ == "__main__":
    main()
