"""Elliott-Golub-Jackson contagion through equity cross-holdings.

The second model from §4: banks hold fractions of each other's equity, a
falling valuation discounts every holder's books, and crossing a failure
threshold triggers a discontinuous penalty — modelling distress (rating
downgrades) rather than formal bankruptcy.

This example runs the EGJ vertex program through the full DStress secure
engine on a small cross-holdings ring and shows the released, noised TDS
alongside the (simulation-only) exact fixpoint, plus the §3.6 execution
anatomy: per-phase timings and per-node traffic.

Run: python examples/egj_contagion.py
"""

from repro import StressTest
from repro.finance import (
    Bank,
    FinancialNetwork,
    apply_shock,
    egj_fixpoint,
    egj_sensitivity,
    uniform_shock,
)


def build_network() -> FinancialNetwork:
    """Five banks in a cross-holdings ring with one fragile member."""
    network = FinancialNetwork()
    specs = [
        # (base assets, original valuation, failure threshold, penalty)
        (2.0, 12.0, 6.0, 3.0),   # bank 0: thin primitive assets
        (7.0, 12.0, 6.0, 3.0),
        (8.0, 14.0, 7.0, 3.5),
        (6.5, 11.0, 5.5, 2.5),
        (9.0, 15.0, 7.5, 4.0),
    ]
    for bank_id, (base, orig, threshold, penalty) in enumerate(specs):
        network.add_bank(
            Bank(bank_id, base_assets=base, orig_value=orig, threshold=threshold, penalty=penalty)
        )
    for bank_id in range(5):
        network.add_holding(holder=(bank_id + 1) % 5, issuer=bank_id, fraction=0.35)
        network.add_holding(holder=(bank_id + 2) % 5, issuer=bank_id, fraction=0.15)
    return network


def main() -> None:
    iterations = 5
    network = apply_shock(build_network(), uniform_shock([0], 0.9, "asset crash"))

    exact = egj_fixpoint(network, iterations)
    print("exact EGJ fixpoint (simulation-only oracle)")
    print(f"  valuations: { {b: round(v, 2) for b, v in exact.values.items()} }")
    print(f"  distressed: {exact.distressed}")
    print(f"  exact TDS:  {exact.total_shortfall:.3f}")

    result = (
        network.stress_test()
        .program("elliott-golub-jackson")
        .engine("secure")
        .preset("demo")
        .privacy(epsilon=0.5)
        .seed(99)
        .degree_bound(2)
        .run(iterations=iterations)
    )

    print("\nDStress secure execution")
    print(f"  released TDS:        {result.aggregate:.3f}")
    print(f"  sensitivity (2/r):   {egj_sensitivity():.0f}")
    print(f"  AND gates per step:  {result.raw.gmw_and_gates_per_step:,}")
    print("  phase seconds:")
    for phase, seconds in result.phases.seconds.items():
        print(f"    {phase:15s} {seconds:7.2f}")
    busiest = max(result.traffic.node_ids, key=lambda n: result.traffic.node(n).bytes_sent)
    print(
        f"  busiest node: #{busiest} sent "
        f"{result.traffic.node(busiest).bytes_sent / 1e6:.2f} MB"
    )


if __name__ == "__main__":
    main()
