"""System-wide stress test on a core-periphery banking network.

Reproduces the paper's motivating workflow (§2, Appendix C): a regulator
wants to compare shock scenarios on the interbank network without any bank
disclosing its books. We generate the Appendix C two-tier topology
(50 banks, 10-bank dense core), apply peripheral and core shocks, and
release the Eisenberg-Noe total dollar shortfall for each scenario under
dollar-differential privacy, tracking the yearly privacy budget.

Run: python examples/en_stress_test.py
"""

import math

from repro import DollarPrivacySpec, PrivacyAccountant
from repro.crypto.rng import DeterministicRNG
from repro.finance import (
    apply_shock,
    clearing_vector,
    eisenberg_noe_sensitivity,
    en_risk_report,
    uniform_shock,
)
from repro.graphgen import core_periphery_network


def main() -> None:
    network = core_periphery_network()
    rng = DeterministicRNG("stress-test-2026")

    # Dollar-DP policy (§4.5): T = $1B granularity, EN sensitivity 1/r,
    # eps chosen to keep noise within policy bounds, three runs a year.
    sensitivity = eisenberg_noe_sensitivity(leverage_bound=0.1)
    # Granularity T = 0.1 units ($100M): appropriate for this regional-scale
    # network, where balance sheets are tens of units rather than hundreds.
    spec = DollarPrivacySpec(granularity=0.1, sensitivity=sensitivity, epsilon=0.23)
    accountant = PrivacyAccountant(epsilon_max=math.log(2))

    scenarios = [
        ("baseline (no shock)", None),
        ("5 regional banks fail", uniform_shock(range(45, 50), 1.0)),
        ("core money-center hit", uniform_shock(range(0, 10), 0.8)),
    ]

    print(f"{'scenario':28s} {'exact TDS':>10s} {'released TDS':>13s} {'defaults':>9s}")
    print("-" * 64)
    for label, shock in scenarios:
        world = network if shock is None else apply_shock(network, shock)
        report = en_risk_report(clearing_vector(world))
        accountant.charge(spec.epsilon, label=label)
        released = spec.release(report.total_dollar_shortfall, rng)
        print(
            f"{label:28s} {report.total_dollar_shortfall:10.2f} "
            f"{released:13.2f} {report.num_failures:9d}"
        )

    print("-" * 64)
    print(
        f"privacy budget: spent {accountant.spent:.3f} of "
        f"{accountant.epsilon_max:.3f} this period "
        f"({accountant.queries_per_period(spec.epsilon)} runs/period supported)"
    )
    print("amounts in units of $1B; positions up to T = $100M are fully protected")


if __name__ == "__main__":
    main()
