"""A scenario sweep that survives a process restart (and a crash).

The regulator's sweep budget is yearly and irreplaceable (eps_max = ln 2,
§4.5), so a restarted service must *replay* the releases it already paid
for instead of recomputing and re-charging them. This example drives the
persistent scenario cache end to end, across real process boundaries:

1. **populate** — a child process runs the full secure-engine sweep with
   ``cache=<dir>``: every scenario executes and is charged;
2. **crash while populating** — a second child starts the same sweep
   against an *empty* sibling directory and is SIGKILLed mid-flight, so
   the kill lands during engine work or entry writes; a third child then
   restarts on that half-populated directory and must still complete
   with the same released values — atomic entry writes mean a torn store
   is impossible, whatever was cached is valid, the rest recomputes;
3. **restart** — a final child re-runs the sweep on the fully-populated
   directory from pass 1: every scenario is a warm hit — zero engine
   executions, zero epsilon charged, released values bit-identical.

The script exits non-zero if the restarted sweep was not fully warm, so
CI uses it as the disk-cache smoke check.

Run: PYTHONPATH=src python examples/persistent_cache_sweep.py
"""

import glob
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from repro import Bank, FinancialNetwork, PrivacyAccountant, Scenario, StressTest


def build_network() -> FinancialNetwork:
    """Four banks with a cascading default when bank 0 is shocked."""
    network = FinancialNetwork()
    network.add_bank(Bank(0, cash=2.0))
    network.add_bank(Bank(1, cash=1.0))
    network.add_bank(Bank(2, cash=1.0))
    network.add_bank(Bank(3, cash=0.5))
    network.add_debt(0, 1, 4.0)
    network.add_debt(0, 2, 2.0)
    network.add_debt(1, 3, 3.0)
    network.add_debt(2, 3, 1.0)
    return network


def run_sweep(cache_dir: str) -> dict:
    """One process's view of the sweep: fresh session, fresh accountant,
    fresh cache object — only the directory persists between calls."""
    accountant = PrivacyAccountant()  # eps_max = ln 2
    template = (
        StressTest(build_network())
        .program("eisenberg-noe")
        .engine("secure")
        .preset("demo")
        .privacy(epsilon=0.16)
        .degree_bound(2)
    )
    scenarios = [Scenario(f"shock-{i}", seed=20 + i, iterations=2) for i in range(3)]
    batch = template.run_many(scenarios, accountant=accountant, cache=cache_dir)
    return {
        "aggregates": batch.aggregates(),
        "hits": batch.cache_hits,
        "misses": batch.cache_misses,
        "epsilon_charged": batch.epsilon_charged,
        "spent": accountant.spent,
    }


def child(cache_dir: str) -> subprocess.Popen:
    """The sweep as a separate OS process (a 'service instance')."""
    return subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--sweep", cache_dir],
        stdout=subprocess.PIPE,
        text=True,
    )


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="dstress-sweep-cache-")
    try:
        _demonstrate(cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
        shutil.rmtree(cache_dir + "-crash", ignore_errors=True)


def _demonstrate(cache_dir: str) -> None:
    print(f"cache directory: {cache_dir}\n")

    print("pass 1 - cold: a fresh process populates the cache ...")
    proc = child(cache_dir)
    cold = json.loads(proc.communicate()[0])
    assert proc.returncode == 0
    print(
        f"  executed {cold['misses']} scenarios, "
        f"charged epsilon {cold['spent']:.3f}"
    )

    print("pass 2 - crash: SIGKILL a sweep POPULATING an empty directory ...")
    crash_dir = cache_dir + "-crash"
    victim = child(crash_dir)
    # kill the instant the first entry lands: with scenarios completing
    # one at a time (hundreds of ms apart), that pins the genuinely
    # half-populated state — a fixed sleep would race the sweep's speed
    deadline = time.time() + 60
    while time.time() < deadline and not glob.glob(os.path.join(crash_dir, "*.json")):
        time.sleep(0.001)
    victim.send_signal(signal.SIGKILL)
    victim.communicate()
    landed = len(glob.glob(os.path.join(crash_dir, "*.json")))
    print(f"  killed pid {victim.pid} mid-populate ({landed}/3 entries on disk)")
    proc = child(crash_dir)
    recovered = json.loads(proc.communicate()[0])
    assert proc.returncode == 0
    assert recovered["aggregates"] == cold["aggregates"], "torn entry corrupted a value"
    print(
        f"  restart on the half-populated dir: {recovered['hits']} valid "
        f"entries reused, {recovered['misses']} recomputed, values intact"
    )

    print("pass 3 - restart: a fresh process replays the full sweep ...")
    proc = child(cache_dir)
    warm = json.loads(proc.communicate()[0])
    assert proc.returncode == 0
    print(
        f"  {warm['hits']} warm hits, {warm['misses']} engine runs, "
        f"charged epsilon {warm['spent']:.3f}"
    )

    # the contract this example (and the CI smoke step) enforces
    assert warm["misses"] == 0, "restarted sweep re-ran an engine"
    assert warm["spent"] == 0.0, "restarted sweep re-charged the accountant"
    assert warm["aggregates"] == cold["aggregates"], "replayed values drifted"
    print(
        "\nrestart survived: zero engine executions, zero epsilon charged, "
        "released values bit-identical."
    )


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--sweep":
        print(json.dumps(run_sweep(sys.argv[2])))
    else:
        main()
