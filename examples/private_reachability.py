"""Writing a custom vertex program: private k-hop reachability.

DStress is not finance-specific — §3.1 lists cloud reliability, criminal
intelligence and social-science graphs as applications. This example
implements a new vertex program from scratch against the public API: count
how many organizations an outage/compromise starting at some seed set can
reach within n hops, without any organization revealing its dependencies.

The program per vertex: state ``reached`` (0/1, seeds start at 1) and
``contribution`` (the aggregate register); each round a vertex tells its
out-neighbors whether it has been reached, and becomes reached if any
in-neighbor was. The released output is the differentially private count
of reached vertices.

Run: python examples/private_reachability.py
"""

from typing import Dict, List, Tuple

from repro import (
    DStressConfig,
    DistributedGraph,
    FixedPointFormat,
    PlaintextEngine,
    SecureEngine,
    VertexProgram,
    VertexView,
)
from repro.crypto.group import TOY_GROUP_64
from repro.mpc.circuit import Circuit


class ReachabilityProgram(VertexProgram):
    """Breadth-first reachability as a DStress vertex program."""

    @property
    def name(self) -> str:
        return "k-hop-reachability"

    @property
    def sensitivity(self) -> float:
        # Adding/removing one edge can change the count by at most the
        # number of vertices it newly connects; for a degree-bounded DAG
        # segment we declare a conservative unit-per-vertex bound of 1
        # per protected relationship (demo value).
        return 1.0

    @property
    def aggregate_register(self) -> str:
        return "contribution"

    def state_registers(self, degree_bound: int) -> List[str]:
        return ["reached", "contribution"]

    def initial_state(self, vertex: VertexView, degree_bound: int) -> Dict[str, float]:
        seed = vertex.data.get("seed", 0.0)
        return {"reached": seed, "contribution": seed}

    def float_update(
        self, state: Dict[str, float], messages: List[float], degree_bound: int
    ) -> Tuple[Dict[str, float], List[float]]:
        reached = state["reached"]
        if any(m > 0.5 for m in messages):
            reached = 1.0
        new_state = {"reached": reached, "contribution": reached}
        return new_state, [reached] * degree_bound

    def build_update_circuit(self, degree_bound: int) -> Circuit:
        builder = self.new_builder()
        fmt = self.fmt
        reached = builder.fx_input("reached")
        builder.fx_input("contribution")
        messages = [builder.fx_input(f"msg_in_{t}") for t in range(degree_bound)]

        half = builder.fx_const(0.5)
        one = builder.fx_const(1.0)
        incoming = [builder.lt_signed(half, message) for message in messages]
        already = builder.lt_signed(half, reached)
        now_reached = builder.or_tree(incoming + [already])
        reached_bus = builder.mux(now_reached, one, builder.fx_const(0.0))

        builder.output_bus("reached", reached_bus)
        builder.output_bus("contribution", reached_bus)
        for t in range(degree_bound):
            builder.output_bus(f"msg_out_{t}", reached_bus)
        return builder.circuit


def build_dependency_graph() -> DistributedGraph:
    """Eight organizations; 0 and 1 are initially compromised."""
    graph = DistributedGraph(degree_bound=2)
    seeds = {0, 1}
    for org in range(8):
        graph.add_vertex(org, seed=1.0 if org in seeds else 0.0)
    for src, dst in [(0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (1, 7)]:
        graph.add_edge(src, dst)
    return graph


def main() -> None:
    fmt = FixedPointFormat(16, 8)
    program = ReachabilityProgram(fmt)
    graph = build_dependency_graph()
    hops = 4

    clear = PlaintextEngine(program).run_float(graph, iterations=hops)
    print(f"exact organizations reached within {hops} hops: {clear.aggregate:.0f}")

    config = DStressConfig(
        collusion_bound=2,
        fmt=fmt,
        group=TOY_GROUP_64,
        dlog_half_width=300,
        edge_noise_alpha=0.4,
        output_epsilon=0.8,
        seed=11,
    )
    result = SecureEngine(program, config).run(graph, iterations=hops)
    print(f"released (DP) count:  {result.noisy_output:.2f}")
    print(
        f"protocol work: {result.gmw_ot_count:,} OTs, "
        f"{result.transfer_count} edge transfers, "
        f"{result.traffic.total_bytes_sent / 1e6:.2f} MB total"
    )


if __name__ == "__main__":
    main()
