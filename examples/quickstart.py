"""Quickstart: a private stress test over four banks.

Builds a tiny financial network with a known cascading default, then runs
the Eisenberg-Noe model three ways through the unified StressTest session
API — the same fluent call with a different engine string each time:

1. the exact plaintext solver (what an all-seeing regulator computes),
2. the plaintext vertex-program engine (the DStress semantics in the clear),
3. the full DStress secure engine — secret-shared state, GMW computation
   steps, ElGamal transfers, MPC aggregation — releasing only a
   differentially private total dollar shortfall.

Iteration counts are not hard-coded: ``run(iterations="auto")`` probes the
trajectory for the round at which the aggregate settles.

Run: python examples/quickstart.py
"""

from repro import Bank, FinancialNetwork, StressTest, clearing_vector


def main() -> None:
    # --- the (distributed, secret) financial network --------------------
    # Amounts are in units of the dollar-DP granularity T (think $1B).
    network = FinancialNetwork()
    network.add_bank(Bank(0, cash=20.0))  # under-reserved: owes 60, holds 20
    network.add_bank(Bank(1, cash=10.0))
    network.add_bank(Bank(2, cash=10.0))
    network.add_bank(Bank(3, cash=5.0))
    network.add_debt(0, 1, 40.0)
    network.add_debt(0, 2, 20.0)
    network.add_debt(1, 3, 30.0)
    network.add_debt(2, 3, 10.0)

    # --- 1. the all-seeing oracle ----------------------------------------
    exact = clearing_vector(network)
    print("exact clearing solution")
    print(f"  payments:    { {b: round(p, 3) for b, p in exact.payments.items()} }")
    print(f"  defaulters:  {exact.defaulters}")
    print(f"  exact TDS:   {exact.total_shortfall:.4f}")

    # --- 2. the vertex program in the clear -------------------------------
    # One session template; engines swap with a string.
    session = (
        StressTest(network)
        .program("eisenberg-noe")
        .preset("demo")
        .degree_bound(2)
    )
    clear_run = session.clone().engine("plaintext").run(iterations="auto")
    print("\nvertex program (plaintext engine)")
    print(f"  TDS trajectory: {[round(v, 3) for v in clear_run.trajectory]}")
    print(f"  converged after {clear_run.converged_at()} iterations (auto-detected)")

    # --- 3. the full DStress protocol -------------------------------------
    result = (
        session.clone()
        .engine("secure")
        .privacy(epsilon=0.5)        # DP budget for this release
        .seed(2017)
        .run(iterations="auto")
    )
    print("\nDStress secure engine")
    print(f"  released (noisy) TDS: {result.aggregate:.3f}")
    print(f"  iterations:           {result.iterations} (auto-detected)")
    print(f"  edge transfers:       {result.extras['transfer_count']:.0f}")
    print(f"  GMW oblivious transfers: {result.extras['gmw_ot_count']:,.0f}")
    print(f"  mean traffic/node:    {result.traffic.mean_node_bytes_sent() / 1e6:.2f} MB")
    print(
        "  (simulation-only check: pre-noise output "
        f"{result.pre_noise_aggregate:.4f} matches the clear run)"
    )


if __name__ == "__main__":
    main()
