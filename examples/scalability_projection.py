"""Regenerate the paper's headline scalability numbers (Figure 6, §5.5).

Projects DStress end-to-end cost for the full U.S. banking system
(N = 1750 large commercial banks, conservative D = 100, block size 20,
I = log2 N iterations, two-level aggregation) using the paper's own
microbenchmark-calibration method, under two cost regimes:

* the paper's 2014 EC2 unit costs (back-solved from its §5.2 numbers),
* unit costs measured on this machine at import time.

Also prints the naive monolithic-MPC comparison that motivates DStress.

Run: python examples/scalability_projection.py
"""

import math

from repro import EisenbergNoeProgram, ElliottGolubJacksonProgram, FixedPointFormat
from repro.simulation import (
    PAPER_COST_CONSTANTS,
    ScalabilityEstimator,
    fit_naive_baseline,
    measure_cost_constants,
)

FMT = FixedPointFormat(16, 8)


def project(constants, element_bytes: int, label: str) -> None:
    print(f"\n--- cost regime: {label}")
    print(f"{'model':10s} {'N':>5s} {'D':>4s} {'I':>3s} {'hours':>7s} {'MB/node':>8s}")
    for program in (EisenbergNoeProgram(FMT), ElliottGolubJacksonProgram(FMT)):
        estimator = ScalabilityEstimator(
            program, constants, collusion_bound=19, element_bytes=element_bytes
        )
        for num_nodes, degree in ((100, 10), (1750, 100)):
            iterations = max(1, math.ceil(math.log2(num_nodes)))
            estimate = estimator.estimate(num_nodes, degree, iterations)
            print(
                f"{program.name[:10]:10s} {num_nodes:5d} {degree:4d} {iterations:3d} "
                f"{estimate.hours_total:7.2f} {estimate.traffic_per_node_mb:8.0f}"
            )


def main() -> None:
    print("DStress scalability projection (paper claim: ~4.8 h / ~750 MB per bank")
    print("for Eisenberg-Noe at N=1750, D=100; 'about five hours' for both models)")

    project(PAPER_COST_CONSTANTS, element_bytes=97, label=PAPER_COST_CONSTANTS.label)
    measured = measure_cost_constants()
    project(measured, element_bytes=33, label=measured.label)

    print("\n--- naive monolithic MPC baseline (§5.5)")
    fit = fit_naive_baseline([2, 3], FMT, parties=2)
    for n, seconds in fit.sample_points:
        print(f"  measured {n}x{n} matrix multiply under GMW: {seconds:.2f} s")
    years = fit.years_end_to_end(1750, iterations=12)
    print(f"  extrapolated full run at N=1750 (11 multiplies): {years:,.0f} years")
    print("  (the paper's faster backend extrapolates to ~287 years; either way,")
    print("   five hours vs centuries is the point)")


if __name__ == "__main__":
    main()
