"""The service gauntlet: a real ``python -m repro.service`` process,
exercised end-to-end the way a fleet front-end would be.

The script launches the service as a genuine subprocess (scraping the
``LISTENING <port>`` announcement), then drives the full mixed batch the
CI smoke job asserts on:

* a **released** scenario — charged once, and the returned numbers are
  **bit-identical** to running the same scenario directly through
  ``StressTest`` in this process;
* N **concurrent identical** submissions — single-flight coalesces them
  into exactly one engine run and one epsilon charge, and all N clients
  get identical responses;
* a repeat submission — a **cache hit**, zero compute, zero charge;
* an **over-budget** request — a typed ``PrivacyBudgetExceeded``
  refusal, books untouched;
* a **malformed / unwhitelisted** document — a typed
  ``ScenarioValidationError`` rejection *before* anything is built or
  charged;
* a garbage (non-JSON) line — a typed protocol error, never silence;
* a clean ``shutdown`` op — the subprocess exits 0 with no orphans.

The script exits non-zero if any of that fails, so CI uses it as the
service smoke check.

Run: PYTHONPATH=src python examples/service_demo.py
"""

import json
import os
import socket
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

from repro.service import ServiceClient, build_session, validate_scenario

ITERATIONS = 2
EPSILON = 0.11
CONCURRENT_CLIENTS = 6


def scenario_doc(name="service-demo", seed=11, epsilon=EPSILON):
    """The demo scenario: a shocked core-periphery network through the
    full secure engine — the document form of a hand-built session."""
    return {
        "version": 1,
        "name": name,
        "network": {
            "generator": "core-periphery",
            "params": {"num_banks": 10, "core_size": 3},
            "seed": seed,
        },
        "shock": {"targets": [0, 1], "severity": 0.5},
        "program": "eisenberg-noe",
        "engine": {"name": "secure", "options": {"backend": "scalar"}},
        "preset": "demo",
        "epsilon": epsilon,
        "iterations": ITERATIONS,
    }


def launch_service():
    """Start ``python -m repro.service`` and scrape the announced port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0", "--budget", "0.5"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("LISTENING "), f"unexpected announcement: {line!r}"
    return proc, int(line.split()[1])


def main() -> None:
    doc = scenario_doc()
    print("reference: the same scenario, hand-built and run in-process ...")
    validated = validate_scenario(doc)
    reference = build_session(validated).run(iterations=ITERATIONS)

    print("launching python -m repro.service ...")
    proc, port = launch_service()
    try:
        with ServiceClient("127.0.0.1", port) as client:
            assert client.ping().ok, "service did not answer ping"

            # -- released scenario: bit-identical to the direct run -------
            first = client.submit(doc).raise_for_status()
            result = first.result
            assert result["aggregate"] == reference.aggregate, (
                f"aggregate {result['aggregate']!r} != {reference.aggregate!r}"
            )
            assert result["pre_noise_aggregate"] == reference.pre_noise_aggregate
            assert result["noise_raw"] == reference.noise_raw
            assert result["trajectory"] == reference.trajectory
            assert first.epsilon_charged == EPSILON
            print(
                f"  released: aggregate {result['aggregate']:.6f} "
                f"bit-identical to the direct run (charged {EPSILON})"
            )

            # -- cache hit: zero compute, zero charge ---------------------
            again = client.submit(doc).raise_for_status()
            assert again.cached and again.epsilon_charged == 0.0
            assert again.result == result
            print("  repeat submission: cache hit, zero epsilon")

        # -- N concurrent identical submissions: single-flight ------------
        fresh = scenario_doc(name="service-demo-singleflight", seed=99)

        def submit_once(_):
            with ServiceClient("127.0.0.1", port) as c:
                return c.submit(fresh).raise_for_status()

        with ThreadPoolExecutor(CONCURRENT_CLIENTS) as pool:
            responses = list(pool.map(submit_once, range(CONCURRENT_CLIENTS)))
        bodies = [r.result for r in responses]
        assert all(b == bodies[0] for b in bodies), "responses diverged"
        charged = sum(r.epsilon_charged for r in responses if not r.deduped)
        dedup_hits = sum(1 for r in responses if r.deduped or r.cached)
        assert charged == EPSILON, f"expected one charge, saw total {charged}"

        with ServiceClient("127.0.0.1", port) as client:
            stats = client.stats().body
            runs = stats["counters"]["engine_runs"]
            assert runs == 2, f"expected 2 engine runs total, saw {runs}"
            spent = stats["budget"]["spent"]
            assert abs(spent - 2 * EPSILON) < 1e-12, f"budget spent {spent}"
            print(
                f"  {CONCURRENT_CLIENTS} concurrent identical submissions: "
                f"1 engine run, 1 charge, {dedup_hits} served without compute"
            )

            # -- over-budget: typed refusal, books untouched --------------
            greedy = scenario_doc(name="service-demo-greedy", seed=5, epsilon=9.0)
            refused = client.submit(greedy)
            assert not refused.ok and refused.status == "over-budget"
            assert refused.error == "PrivacyBudgetExceeded"
            after = client.stats().body["budget"]["spent"]
            assert after == spent, "refusal must not move the books"
            print("  over-budget request: typed PrivacyBudgetExceeded, no charge")

            # -- malformed document: rejected before anything runs --------
            malformed = client.submit({"version": 1, "name": "evil", "engine": "rm -rf"})
            assert not malformed.ok and malformed.status == "rejected"
            assert malformed.error == "ScenarioValidationError"
            assert client.stats().body["counters"]["engine_runs"] == runs
            print("  unwhitelisted document: typed rejection, nothing executed")

        # -- garbage line: typed protocol error, never silence ------------
        with socket.create_connection(("127.0.0.1", port), timeout=10) as raw:
            raw.sendall(b"definitely not json\n")
            reply = json.loads(raw.makefile("rb").readline())
        assert reply["ok"] is False and reply["error"] == "ServiceProtocolError"
        print("  garbage line: typed ServiceProtocolError")

        # -- clean shutdown: exit 0, no orphan process ---------------------
        with ServiceClient("127.0.0.1", port) as client:
            client.shutdown()
        code = proc.wait(timeout=30)
        assert code == 0, f"service exited {code}"
        print("  shutdown: service subprocess exited 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    print(
        "\nservice gauntlet passed: notarized scenarios released "
        "bit-identically, duplicates coalesced, refusals typed, "
        "shutdown clean."
    )


if __name__ == "__main__":
    try:
        main()
    except AssertionError as failure:
        print(f"FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
