"""The acceptance demo: a real multi-process DStress cluster on localhost.

Everything this repo computed so far ran inside one process, however many
transports it simulated. This example is the proof that the deployment
story is real: it launches **three OS processes** — one per party — that
find each other over localhost TCP, handshake a versioned wire protocol,
and run the full secure engine (``engine="secure-async"``) with every
round value and OT-extension batch framed onto genuine sockets. Then it
checks the only claim that matters:

* every party's **released output is bit-identical** to the same scenario
  on the in-memory bus (aggregate, pre-noise value, the exact noise draw,
  the full trajectory) — the transport moved bytes, never results;
* a second cluster where one party is **killed mid-round**
  (``os._exit(17)``, no goodbye) surfaces a *named*
  ``TransportError`` at a survivor within the io timeout — dead peers
  produce errors, not hangs.

The script exits non-zero if any of that fails, so CI uses it as the
real-socket smoke check.

Run: PYTHONPATH=src python examples/tcp_cluster_demo.py
"""

import sys

from repro import Bank, FinancialNetwork, StressTest
from repro.net import run_scenario_cluster

ITERATIONS = 2
NUM_PARTIES = 3


def build_network() -> FinancialNetwork:
    """Four banks with a cascading default when bank 0 is shocked."""
    network = FinancialNetwork()
    network.add_bank(Bank(0, cash=2.0))
    network.add_bank(Bank(1, cash=1.0))
    network.add_bank(Bank(2, cash=1.0))
    network.add_bank(Bank(3, cash=0.5))
    network.add_debt(0, 1, 4.0)
    network.add_debt(0, 2, 2.0)
    network.add_debt(1, 3, 3.0)
    network.add_debt(2, 3, 1.0)
    return network


def build_scenario(_party_id):
    """One party's scenario — identical at every replica by construction."""
    return (
        StressTest(build_network())
        .program("eisenberg-noe")
        .preset("demo")
        .degree_bound(2)
    )


def main() -> None:
    print("reference: engine='secure' on the in-memory bus ...")
    reference = build_scenario(None).engine("secure").run(iterations=ITERATIONS)
    print(f"  released aggregate {reference.aggregate:.6f}")

    print(
        f"\ncluster: {NUM_PARTIES} OS processes, engine='secure-async', "
        "every byte over 127.0.0.1 TCP ..."
    )
    outcomes = run_scenario_cluster(
        build_scenario,
        num_parties=NUM_PARTIES,
        engine="secure-async",
        iterations=ITERATIONS,
        session="tcp-cluster-demo",
        timeout=300.0,
    )
    assert [o.status for o in outcomes] == ["ok"] * NUM_PARTIES, (
        "cluster did not complete cleanly: "
        + "; ".join(f"party {o.party_id}: {o.status} {o.error_message}" for o in outcomes)
    )
    for outcome in outcomes:
        summary = outcome.summary
        assert summary["aggregate"] == reference.aggregate, "aggregate drifted"
        assert (
            summary["pre_noise_aggregate"] == reference.pre_noise_aggregate
        ), "pre-noise value drifted"
        assert summary["noise_raw"] == reference.noise_raw, "noise draw drifted"
        assert summary["trajectory"] == reference.trajectory, "trajectory drifted"
        wire = summary["extras"].get("wire_bytes_sent", 0.0) + summary[
            "extras"
        ].get("wire_bytes_received", 0.0)
        print(
            f"  party {outcome.party_id}: ok, bit-identical "
            f"({int(wire)} bytes genuinely on the wire)"
        )

    print("\nchaos: same cluster, party 1 killed mid-round (no goodbye) ...")
    chaos = run_scenario_cluster(
        build_scenario,
        num_parties=NUM_PARTIES,
        engine="async",
        iterations=ITERATIONS,
        session="tcp-cluster-demo-chaos",
        io_timeout=8.0,
        timeout=60.0,
        die_at_round={1: 1},
    )
    by_party = {o.party_id: o for o in chaos}
    assert all(o.status != "timeout" for o in chaos), "a survivor hung"
    named = [
        o
        for o in chaos
        if o.status == "error"
        and o.error_type in ("PeerDisconnectedError", "TransportTimeoutError")
    ]
    assert named, (
        "no survivor surfaced a named TransportError: "
        + "; ".join(f"party {o.party_id}: {o.status}" for o in chaos)
    )
    print(f"  party 1: {by_party[1].status} (exit {by_party[1].exit_code})")
    for outcome in named:
        print(
            f"  party {outcome.party_id}: {outcome.error_type}: "
            f"{outcome.error_message}"
        )

    print(
        "\nreal-socket cluster verified: bit-identical releases over TCP, "
        "and a killed peer is a named error, not a hang."
    )


if __name__ == "__main__":
    try:
        main()
    except AssertionError as failure:
        print(f"FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
