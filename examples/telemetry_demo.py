"""Run telemetry end to end: tracing spans, metrics, exports, the ledger.

Everything the ``repro.obs`` layer offers, on one small network:

1. a traced ``engine="async"`` run — round/phase spans, the metrics
   registry, and a versioned ``dstress.obs.run`` JSON export;
2. a mixed success/failure batch against a shared privacy accountant —
   the failed release's pre-charge is refunded, and the append-only
   audit ledger reconciles bit-for-bit with the accountant's books;
3. both documents rendered with the ``python -m repro.obs.report`` CLI
   (CI runs the same command with ``--check`` as its smoke gate).

Tracing never perturbs the run: the traced aggregate below is
bit-identical to an untraced run of the same scenario (the test suite
asserts this across every engine).

Run: python examples/telemetry_demo.py
"""

import json
import tempfile
from pathlib import Path

from repro import (
    Bank,
    FinancialNetwork,
    PrivacyAccountant,
    Scenario,
    StressTest,
)
from repro.api import Engine
from repro.exceptions import ProtocolError
from repro.obs import TraceRecorder, recording, validate_export
from repro.obs.report import main as report_main


def build_network() -> FinancialNetwork:
    network = FinancialNetwork()
    network.add_bank(Bank(0, cash=2.0))
    network.add_bank(Bank(1, cash=1.0))
    network.add_bank(Bank(2, cash=1.0))
    network.add_bank(Bank(3, cash=0.5))
    network.add_debt(0, 1, 4.0)
    network.add_debt(0, 2, 2.0)
    network.add_debt(1, 3, 3.0)
    network.add_debt(2, 3, 1.0)
    return network


class FlakyReleasingEngine(Engine):
    """A releasing engine that dies mid-protocol — the batch must refund
    its pre-charged epsilon, and the ledger must show both movements."""

    name = "demo-flaky"
    releases_output = True

    def execute(self, program, graph, iterations, config, accountant=None):
        raise ProtocolError("simulated mid-protocol crash (demo)")


def main() -> None:
    network = build_network()

    # -- 1. a traced async run ------------------------------------------------
    recorder = TraceRecorder()
    with recording(recorder):
        result = (
            StressTest(network)
            .program("eisenberg-noe")
            .preset("demo")
            .degree_bound(2)
            .engine("async")
            .run(iterations=4)
        )
    rounds = [s for s in recorder.spans if s.name == "round"]
    print(f"traced aggregate: {result.aggregate:.4f}")
    print(f"spans recorded:   {len(recorder.spans)} ({len(rounds)} round spans)")
    print(f"metric series:    {len(recorder.metrics.gauges)} gauges")

    run_doc = result.export(recorder=recorder)
    assert validate_export(run_doc) == [], "run export must validate"

    # -- 2. a mixed batch with an audit ledger --------------------------------
    accountant = PrivacyAccountant()  # eps_max = ln 2 (§4.5)
    batch = (
        StressTest(network)
        .program("eisenberg-noe")
        .run_many(
            [
                Scenario(name="healthy", engine="naive-mpc", epsilon=0.2),
                Scenario(name="crashes", engine=FlakyReleasingEngine(), epsilon=0.3),
            ],
            accountant=accountant,
        )
    )
    reconciliation = accountant.reconcile()
    print(
        f"\nbatch: {sum(1 for o in batch if o.ok)}/{len(list(batch))} ok, "
        f"epsilon_charged={batch.epsilon_charged:.4g} "
        f"(ledger {'reconciles' if reconciliation.ok else 'BROKEN'}: "
        f"{len(accountant.ledger)} entries, "
        f"ledger_spent={reconciliation.ledger_spent:.4g})"
    )
    assert reconciliation.ok
    assert reconciliation.ledger_spent == batch.epsilon_charged

    batch_doc = batch.export(accountant=accountant)
    assert validate_export(batch_doc) == [], "batch export must validate"

    # -- 3. render both through the report CLI --------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        run_path = Path(tmp) / "run.json"
        batch_path = Path(tmp) / "batch.json"
        run_path.write_text(json.dumps(run_doc))
        batch_path.write_text(json.dumps(batch_doc))
        print("\n--- python -m repro.obs.report run.json batch.json ---")
        report_main([str(run_path), str(batch_path)])
        assert report_main([str(run_path), str(batch_path), "--check"]) == 0


if __name__ == "__main__":
    main()
