"""repro — a from-scratch reproduction of DStress (EuroSys 2017).

DStress executes vertex programs over graphs that are physically
distributed across mutually distrustful participants, guaranteeing value,
edge and (differentially private) output privacy. The headline use case is
measuring systemic risk in financial networks without any bank revealing
its books.

Quickstart::

    from repro import (
        Bank, FinancialNetwork, EisenbergNoeProgram,
        DStressConfig, SecureEngine, PlaintextEngine,
    )

    net = FinancialNetwork()
    for i in range(4):
        net.add_bank(Bank(i, cash=1.0))
    net.add_debt(0, 1, 2.0)
    ...
    program = EisenbergNoeProgram()
    graph = net.to_en_graph(degree_bound=2)
    result = SecureEngine(program, DStressConfig()).run(graph, iterations=4)
    print(result.noisy_output)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-reproduction results.
"""

from repro.core import (
    NO_OP_MESSAGE,
    DistributedGraph,
    PlaintextEngine,
    PlaintextRun,
    ProgramSpec,
    VertexProgram,
    VertexView,
)
from repro.core.config import DStressConfig
from repro.core.secure_engine import SecureEngine, SecureRunResult
from repro.finance import (
    Bank,
    EisenbergNoeProgram,
    ElliottGolubJacksonProgram,
    FinancialNetwork,
    clearing_vector,
    egj_fixpoint,
)
from repro.mpc import FixedPointFormat
from repro.privacy import DollarPrivacySpec, PrivacyAccountant

__version__ = "1.0.0"

__all__ = [
    "Bank",
    "DStressConfig",
    "DistributedGraph",
    "DollarPrivacySpec",
    "EisenbergNoeProgram",
    "ElliottGolubJacksonProgram",
    "FinancialNetwork",
    "FixedPointFormat",
    "NO_OP_MESSAGE",
    "PlaintextEngine",
    "PlaintextRun",
    "PrivacyAccountant",
    "ProgramSpec",
    "SecureEngine",
    "SecureRunResult",
    "VertexProgram",
    "VertexView",
    "clearing_vector",
    "egj_fixpoint",
    "__version__",
]
