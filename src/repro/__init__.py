"""repro — a from-scratch reproduction of DStress (EuroSys 2017).

DStress executes vertex programs over graphs that are physically
distributed across mutually distrustful participants, guaranteeing value,
edge and (differentially private) output privacy. The headline use case is
measuring systemic risk in financial networks without any bank revealing
its books.

Quickstart — the unified session API::

    from repro import Bank, FinancialNetwork, StressTest

    net = FinancialNetwork()
    for i in range(4):
        net.add_bank(Bank(i, cash=1.0))
    net.add_debt(0, 1, 2.0)
    ...
    result = (
        StressTest(net)
        .program("eisenberg-noe")
        .engine("secure")
        .preset("demo")
        .privacy(epsilon=0.5)
        .run(iterations="auto")
    )
    print(result.aggregate)      # the released, noised total shortfall

The protocol-level classes (:class:`SecureEngine`, :class:`PlaintextEngine`,
:class:`DStressConfig`, ...) remain public for callers that need direct
control. See DESIGN.md for the architecture and README.md for the
migration table from the pre-1.1 per-engine entry points.
"""

import warnings

from repro.api import (
    BatchResult,
    Engine,
    RunResult,
    Scenario,
    ScenarioOutcome,
    StressTest,
    available_engines,
    available_programs,
    register_engine,
    register_program,
)
from repro.core import (
    NO_OP_MESSAGE,
    DistributedGraph,
    OneShotRelease,
    PlaintextEngine,
    ProgramSpec,
    ReleaseRecord,
    VertexProgram,
    VertexView,
    WindowedRelease,
)
from repro.core.config import DStressConfig, available_presets
from repro.core.convergence import convergence_index
from repro.core.secure_engine import SecureEngine
from repro.finance import (
    Bank,
    EisenbergNoeProgram,
    ElliottGolubJacksonProgram,
    FinancialNetwork,
    clearing_vector,
    egj_fixpoint,
)
from repro.mpc import FixedPointFormat
from repro.privacy import DollarPrivacySpec, PrivacyAccountant

__version__ = "1.1.0"

#: Pre-1.1 top-level names kept importable through a deprecation shim:
#: ``from repro import PlaintextRun`` still works but warns. The canonical
#: engine-independent result type is now :class:`repro.RunResult`; the
#: engine-native types remain public at their defining modules.
_DEPRECATED_ALIASES = {
    "PlaintextRun": (
        "repro.core.engine",
        "PlaintextRun",
        "use repro.RunResult (returned by StressTest.run) or import it "
        "from repro.core.engine",
    ),
    "SecureRunResult": (
        "repro.core.secure_engine",
        "SecureRunResult",
        "use repro.RunResult (returned by StressTest.run) or import it "
        "from repro.core.secure_engine",
    ),
}


def __getattr__(name):
    try:
        module_name, attr, hint = _DEPRECATED_ALIASES[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    warnings.warn(
        f"importing {name!r} from the top-level 'repro' package is "
        f"deprecated since 1.1.0: {hint}",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "Bank",
    "BatchResult",
    "DStressConfig",
    "DistributedGraph",
    "DollarPrivacySpec",
    "EisenbergNoeProgram",
    "ElliottGolubJacksonProgram",
    "Engine",
    "FinancialNetwork",
    "FixedPointFormat",
    "NO_OP_MESSAGE",
    "OneShotRelease",
    "PlaintextEngine",
    "PlaintextRun",
    "PrivacyAccountant",
    "ProgramSpec",
    "ReleaseRecord",
    "RunResult",
    "Scenario",
    "ScenarioOutcome",
    "SecureEngine",
    "SecureRunResult",
    "StressTest",
    "VertexProgram",
    "VertexView",
    "WindowedRelease",
    "available_engines",
    "available_presets",
    "available_programs",
    "clearing_vector",
    "convergence_index",
    "egj_fixpoint",
    "register_engine",
    "register_program",
    "__version__",
]
