"""The unified DStress session API.

This package is the public face of the reproduction: one fluent
:class:`StressTest` session over pluggable :class:`Engine` backends, a
single :class:`RunResult` shape for every backend, and a batch layer
(:class:`Scenario` / :class:`BatchResult`) that fans scenario sweeps
across a process pool while one :class:`~repro.privacy.budget.PrivacyAccountant`
guards the yearly budget.

Importing this package registers the built-in engines (``plaintext``,
``fixed``, ``secure``, ``naive-mpc``, ``sharded``, ``async``,
``secure-async``) and programs (``eisenberg-noe``,
``elliott-golub-jackson``). See DESIGN.md for the architecture and
README.md for the old-call → new-call migration table.
"""

from repro.api.async_engine import AsyncEngine
from repro.api.batch import BatchResult, Scenario, ScenarioOutcome, run_batch
from repro.api.cache import ScenarioCache, ScenarioCacheBase, run_fingerprint
from repro.api.diskcache import PersistentScenarioCache
from repro.api.engines import (
    Engine,
    NaiveMPCEngine,
    PlaintextFixedEngine,
    PlaintextFloatEngine,
    SecureDStressEngine,
)
from repro.api.secure_async import SecureAsyncEngine
from repro.api.sharded import ShardedEngine
from repro.api.registry import (
    ProgramEntry,
    available_engines,
    available_programs,
    get_engine,
    get_program,
    register_engine,
    register_program,
)
from repro.api.result import RunResult
from repro.api.session import ResolvedRun, StressTest

__all__ = [
    "AsyncEngine",
    "BatchResult",
    "Engine",
    "NaiveMPCEngine",
    "PersistentScenarioCache",
    "PlaintextFixedEngine",
    "PlaintextFloatEngine",
    "ProgramEntry",
    "ResolvedRun",
    "RunResult",
    "Scenario",
    "ScenarioCache",
    "ScenarioCacheBase",
    "ScenarioOutcome",
    "SecureAsyncEngine",
    "SecureDStressEngine",
    "ShardedEngine",
    "StressTest",
    "available_engines",
    "available_programs",
    "get_engine",
    "get_program",
    "register_engine",
    "register_program",
    "run_batch",
    "run_fingerprint",
]
