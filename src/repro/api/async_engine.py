"""The async engine: per-vertex asyncio pipelines over a transport bus.

The real DStress deployment is message-passing over a WAN where rounds
are dominated by transfer I/O, not local compute (§6). Every previous
backend executed rounds synchronously — route, barrier, repeat — so
nothing could overlap communication with computation. This backend runs
each vertex as an asyncio task over a :class:`~repro.core.transport.Transport`:
a vertex computes its next round as soon as *its own* inbox completes,
while slow links' deliveries are still in flight elsewhere. The schedule
itself lives in :func:`repro.core.rounds.run_rounds_async`, shared with
the sequential :func:`~repro.core.rounds.run_rounds` skeleton.

Engine options (all reachable through the registry and batch scenarios)::

    StressTest(net).program("en").engine("async", tasks=8).run()
    .engine("async", transport="wan")          # metered simulated WAN
    .engine("async", transport=my_transport)   # any Transport instance
    .engine("async", overlap=False)            # sequential-over-the-bus
                                               # baseline (benchmark foil)

Under the default :class:`~repro.core.transport.InMemoryTransport` the
result is bit-identical to ``engine="plaintext"`` at every ``tasks``
level — asserted by the cross-engine parity matrix. Under
:class:`~repro.core.transport.SimulatedWanTransport` the payloads are
unchanged (still bit-identical) but wall-clock reflects the link
schedule and ``result.traffic`` carries the per-node byte meters.

Unlike the sharded engine there is no per-round state pickling: all
vertex tasks share the parent process, so the fan-out cost the sharded
benchmark quantifies is amortized to zero — ``benchmarks/bench_async.py``
puts numbers on both effects.

Like every backend the engine executes through the shared run lifecycle;
under ``release="windowed"`` each window drives its own
:func:`~repro.core.rounds.run_rounds_async` call, resuming the previous
window's pending outboxes through the shared resumption contract.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Union

from repro.api.engines import (
    Engine,
    _CentralNoiseCore,
    _from_plaintext,
    validate_intra_run_width,
)
from repro.api.registry import register_engine
from repro.api.result import RunResult
from repro.core.engine import PlaintextEngine, PlaintextRun
from repro.core.lifecycle import ReleasePolicy, RunState, run_lifecycle
from repro.core.program import NO_OP_MESSAGE
from repro.core.rounds import run_rounds_async
from repro.core.transport import (
    Transport,
    attach_wan_extras,
    attach_wire_extras,
    check_transport_spec,
    transport_from_spec,
    wan_meter_snapshot,
)
from repro.obs.trace import timed_phase
from repro.simulation.netsim import TrafficMeter

__all__ = ["AsyncEngine", "run_coroutine"]


def run_coroutine(coro):
    """Drive ``coro`` to completion from synchronous code, loop or no loop.

    ``asyncio.run`` refuses to nest inside a running event loop, which is
    exactly where notebook kernels (Jupyter/ipykernel) execute user code.
    In that case the schedule runs on a private loop in a worker thread —
    the engine's ``execute`` stays synchronous either way, and the
    computation is deterministic regardless of which thread hosts it.
    Shared by every asyncio-scheduled backend (``async``, ``secure-async``).
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coro)
    with ThreadPoolExecutor(max_workers=1) as pool:
        return pool.submit(asyncio.run, coro).result()


class _AsyncCore(_CentralNoiseCore):
    """Lifecycle stages for the overlapped asyncio backend.

    Each window is one :func:`~repro.core.rounds.run_rounds_async` drive
    on its own event loop; the pending outboxes thread through the shared
    resumption contract between windows (the §3.6 window edge is a full
    barrier, so nothing is lost to overlap).
    """

    def __init__(self, engine, program, graph, config) -> None:
        self.engine = engine
        self.program = program
        self.graph = graph
        self.config = config
        self.oracle = PlaintextEngine(program)
        self.meter = TrafficMeter()
        self.bus = None
        self.before = None
        self.states: Dict[int, Dict[str, float]] = {}
        self.inboxes: Dict[int, List[float]] = {}
        self.pending: Optional[Dict[int, List[float]]] = None
        self.steps = 0
        self.trajectory: List[float] = []

    def setup(self, state: RunState) -> None:
        self.bus = transport_from_spec(self.engine.transport, self.config, meter=self.meter)
        # A caller-supplied Transport instance may be reused across runs;
        # snapshot its counters so the extras below report *this* run.
        self.before = wan_meter_snapshot(self.bus)
        degree_bound = self.graph.degree_bound
        with timed_phase(state.phases, "initialization"):
            self.states = {
                v.vertex_id: self.program.initial_state(v, degree_bound)
                for v in self.graph.vertices()
            }
            self.inboxes = {
                v: [NO_OP_MESSAGE] * degree_bound for v in self.graph.vertex_ids
            }

    def run_window(self, state: RunState, rounds: int, first: bool) -> None:
        degree_bound = self.graph.degree_bound
        self.states, trajectory, self.pending = run_coroutine(
            run_rounds_async(
                graph=self.graph,
                update=lambda _vid, vstate, messages: self.program.float_update(
                    vstate, messages, degree_bound
                ),
                observe=self.oracle._aggregate_float,
                states=self.states,
                inboxes=self.inboxes,
                iterations=rounds,
                transport=self.bus,
                fill=NO_OP_MESSAGE,
                max_tasks=self.engine.tasks,
                overlap=self.engine.overlap,
                phases=state.phases,
                first_round=0 if first else self.steps + 1,
                resume_outboxes=None if first else self.pending,
            )
        )
        self.steps += rounds
        self.trajectory.extend(trajectory)
        state.trajectory = list(self.trajectory)

    def aggregate(self, state: RunState) -> float:
        return self.oracle._aggregate_float(self.states)

    def finalize(self, state: RunState, started: float) -> RunResult:
        run = PlaintextRun(
            aggregate=self.oracle._aggregate_float(self.states),
            final_states=self.states,
            trajectory=self.trajectory,
            phases=state.phases,
        )
        result = _from_plaintext(
            self.engine.name,
            self.program,
            run,
            state.rounds_done,
            started,
            graph=self.graph,
            record=False,
        )
        result.extras.update(
            {
                # effective concurrency: the sequential schedule runs one
                # pipeline regardless of the constructor's tasks value,
                # and the extras must report what actually happened
                "tasks": float(self.engine.tasks if self.engine.overlap else 1),
                "overlap": 1.0 if self.engine.overlap else 0.0,
                "messages_sent": float(self.graph.num_edges * state.rounds_done),
            }
        )
        attach_wan_extras(result, self.bus, self.before)
        attach_wire_extras(result, self.bus)
        self.close()
        return result

    def close(self, error: Optional[BaseException] = None) -> None:
        """Tear down an engine-owned bus (a "tcp" spec owns sockets and an
        io thread); a caller-supplied instance stays open — its mesh may
        span further runs."""
        if self.bus is not None and self.bus is not self.engine.transport:
            self.bus.close(error=error)
            self.bus = None


class AsyncEngine(Engine):
    """Float-mode execution as overlapped per-vertex asyncio pipelines.

    ``tasks`` bounds how many vertex computations interleave (the message
    waits always stay concurrent — that is the point); ``transport`` picks
    the bus (``"memory"``, ``"wan"``, or a
    :class:`~repro.core.transport.Transport` instance); ``overlap=False``
    runs the same bus strictly sequentially, the baseline
    ``benchmarks/bench_async.py`` measures the overlap against.
    """

    name = "async"

    def __init__(
        self,
        tasks: int = 4,
        transport: Union[str, Transport] = "memory",
        overlap: bool = True,
        release: Union[str, ReleasePolicy] = "oneshot",
        windows: Optional[Sequence[int]] = None,
        window_epsilon: Optional[float] = None,
    ) -> None:
        self.tasks = validate_intra_run_width(tasks, self.name)
        self.transport = check_transport_spec(transport)
        self.overlap = bool(overlap)
        self._configure_release(release, windows, window_epsilon)

    @property
    def intra_run_width(self) -> int:
        """What the batch planner should budget for: the task concurrency
        when overlapping, 1 for the strictly sequential schedule — the
        same effective concurrency the result extras report."""
        return self.tasks if self.overlap else 1

    def execute(self, program, graph, iterations, config, accountant=None):
        core = _AsyncCore(self, program, graph, config)
        try:
            return run_lifecycle(self, core, program, config, iterations, accountant)
        except BaseException as exc:
            core.close(error=exc)
            raise


register_engine("async", AsyncEngine, aliases=("asyncio", "overlapped"))
