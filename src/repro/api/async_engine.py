"""The async engine: per-vertex asyncio pipelines over a transport bus.

The real DStress deployment is message-passing over a WAN where rounds
are dominated by transfer I/O, not local compute (§6). Every previous
backend executed rounds synchronously — route, barrier, repeat — so
nothing could overlap communication with computation. This backend runs
each vertex as an asyncio task over a :class:`~repro.core.transport.Transport`:
a vertex computes its next round as soon as *its own* inbox completes,
while slow links' deliveries are still in flight elsewhere. The schedule
itself lives in :func:`repro.core.rounds.run_rounds_async`, shared with
the sequential :func:`~repro.core.rounds.run_rounds` skeleton.

Engine options (all reachable through the registry and batch scenarios)::

    StressTest(net).program("en").engine("async", tasks=8).run()
    .engine("async", transport="wan")          # metered simulated WAN
    .engine("async", transport=my_transport)   # any Transport instance
    .engine("async", overlap=False)            # sequential-over-the-bus
                                               # baseline (benchmark foil)

Under the default :class:`~repro.core.transport.InMemoryTransport` the
result is bit-identical to ``engine="plaintext"`` at every ``tasks``
level — asserted by the cross-engine parity matrix. Under
:class:`~repro.core.transport.SimulatedWanTransport` the payloads are
unchanged (still bit-identical) but wall-clock reflects the link
schedule and ``result.traffic`` carries the per-node byte meters.

Unlike the sharded engine there is no per-round state pickling: all
vertex tasks share the parent process, so the fan-out cost the sharded
benchmark quantifies is amortized to zero — ``benchmarks/bench_async.py``
puts numbers on both effects.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Union

from repro.api.engines import Engine, _from_plaintext, validate_intra_run_width
from repro.api.registry import register_engine
from repro.core.engine import PlaintextEngine, PlaintextRun
from repro.core.program import NO_OP_MESSAGE
from repro.core.rounds import run_rounds_async
from repro.core.transport import (
    Transport,
    attach_wan_extras,
    attach_wire_extras,
    check_transport_spec,
    transport_from_spec,
    wan_meter_snapshot,
)
from repro.obs.clock import now as clock_now
from repro.obs.metrics import record_run
from repro.obs.trace import current_recorder, timed_phase
from repro.simulation.netsim import PhaseTimer, TrafficMeter

__all__ = ["AsyncEngine", "run_coroutine"]


def run_coroutine(coro):
    """Drive ``coro`` to completion from synchronous code, loop or no loop.

    ``asyncio.run`` refuses to nest inside a running event loop, which is
    exactly where notebook kernels (Jupyter/ipykernel) execute user code.
    In that case the schedule runs on a private loop in a worker thread —
    the engine's ``execute`` stays synchronous either way, and the
    computation is deterministic regardless of which thread hosts it.
    Shared by every asyncio-scheduled backend (``async``, ``secure-async``).
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coro)
    with ThreadPoolExecutor(max_workers=1) as pool:
        return pool.submit(asyncio.run, coro).result()


class AsyncEngine(Engine):
    """Float-mode execution as overlapped per-vertex asyncio pipelines.

    ``tasks`` bounds how many vertex computations interleave (the message
    waits always stay concurrent — that is the point); ``transport`` picks
    the bus (``"memory"``, ``"wan"``, or a
    :class:`~repro.core.transport.Transport` instance); ``overlap=False``
    runs the same bus strictly sequentially, the baseline
    ``benchmarks/bench_async.py`` measures the overlap against.
    """

    name = "async"

    def __init__(
        self,
        tasks: int = 4,
        transport: Union[str, Transport] = "memory",
        overlap: bool = True,
    ) -> None:
        self.tasks = validate_intra_run_width(tasks, self.name)
        self.transport = check_transport_spec(transport)
        self.overlap = bool(overlap)

    @property
    def intra_run_width(self) -> int:
        """What the batch planner should budget for: the task concurrency
        when overlapping, 1 for the strictly sequential schedule — the
        same effective concurrency the result extras report."""
        return self.tasks if self.overlap else 1

    def execute(self, program, graph, iterations, config, accountant=None):
        with current_recorder().span("run", engine=self.name, program=program.name):
            started = clock_now()
            meter = TrafficMeter()
            bus = transport_from_spec(self.transport, config, meter=meter)
            # A caller-supplied Transport instance may be reused across runs;
            # snapshot its counters so the extras below report *this* run.
            before = wan_meter_snapshot(bus)

            oracle = PlaintextEngine(program)
            degree_bound = graph.degree_bound
            phases = PhaseTimer()
            with timed_phase(phases, "initialization"):
                states = {
                    v.vertex_id: program.initial_state(v, degree_bound)
                    for v in graph.vertices()
                }
                inboxes = {
                    v: [NO_OP_MESSAGE] * degree_bound for v in graph.vertex_ids
                }

            # a bus built here from a string spec is this run's to tear down
            # (a "tcp" spec owns sockets and an io thread); a caller-supplied
            # instance stays open — its mesh may span further runs
            engine_owned = bus is not self.transport
            try:
                final_states, trajectory = run_coroutine(
                    run_rounds_async(
                        graph=graph,
                        update=lambda _vid, state, messages: program.float_update(
                            state, messages, degree_bound
                        ),
                        observe=oracle._aggregate_float,
                        states=states,
                        inboxes=inboxes,
                        iterations=iterations,
                        transport=bus,
                        fill=NO_OP_MESSAGE,
                        max_tasks=self.tasks,
                        overlap=self.overlap,
                        phases=phases,
                    )
                )
            except BaseException as exc:
                if engine_owned:
                    bus.close(error=exc)
                raise

            run = PlaintextRun(
                aggregate=oracle._aggregate_float(final_states),
                final_states=final_states,
                trajectory=trajectory,
                phases=phases,
            )
            result = _from_plaintext(
                self.name, program, run, iterations, started, graph=graph, record=False
            )
            result.extras.update(
                {
                    # effective concurrency: the sequential schedule runs one
                    # pipeline regardless of the constructor's tasks value,
                    # and the extras must report what actually happened
                    "tasks": float(self.tasks if self.overlap else 1),
                    "overlap": 1.0 if self.overlap else 0.0,
                    "messages_sent": float(graph.num_edges * iterations),
                }
            )
            attach_wan_extras(result, bus, before)
            attach_wire_extras(result, bus)
            if engine_owned:
                bus.close()
            record_run(result)
            return result


register_engine("async", AsyncEngine, aliases=("asyncio", "overlapped"))
