"""Batch scenario execution: many networks/configs through one session.

A regulator's workload is never one run — it is "these five shock
scenarios, on this quarter's network, under this year's remaining
budget". :func:`run_batch` (surfaced as :meth:`StressTest.run_many`)
takes a template session plus a list of :class:`Scenario` deltas,
resolves every scenario *up front* (so a typo in scenario #7 fails before
scenario #1 burns an hour of MPC), charges the shared
:class:`~repro.privacy.budget.PrivacyAccountant` for every
output-releasing run (so a batch that would overrun the yearly ln 2
budget is refused before any compute happens), then fans the resolved
specs across a ``multiprocessing`` pool.

Determinism: each scenario runs with its own explicitly-derived seed
(``scenario.seed``, else the template config's seed), engines draw all
randomness from :class:`~repro.crypto.rng.DeterministicRNG`, and results
are returned in input order regardless of worker scheduling — so a batch
is bit-reproducible across runs and worker counts.

Two execution shapes share that prelude:

* the **barriered** default — :func:`run_batch` collects every outcome
  and returns a :class:`BatchResult` in input order;
* the **streaming** variant — ``run_batch(..., stream=True)`` (surfaced
  as :meth:`StressTest.run_many_iter`) yields each
  :class:`ScenarioOutcome` the moment its worker finishes, in completion
  order, with no pool barrier. Same per-scenario bits either way.

Determinism also enables the scenario-level **cache** (``cache=`` — a
:class:`~repro.api.cache.ScenarioCache` shared across batches, ``True``
for a per-call one, or a directory path for the on-disk
:class:`~repro.api.diskcache.PersistentScenarioCache` that survives
process restarts): two scenarios with the same fingerprint
(network/graph, config incl. seed, program, engine + options, iteration
spec) are guaranteed the same :class:`RunResult`, so only the first
executes — and only the first is charged against the
:class:`~repro.privacy.budget.PrivacyAccountant`.

Budget charges are provisional until a release actually happens: a
releasing scenario that *fails* (its worker raised) has its pre-charge
refunded in both execution shapes — nothing was published, so nothing
was spent (§4.5's budget pays for releases, not attempts).
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.api.cache import ScenarioCache, ScenarioCacheBase, clone_result, run_fingerprint
from repro.api.diskcache import PersistentScenarioCache
from repro.api.engines import Engine, validate_intra_run_width
from repro.api.pool import iter_in_pool, map_in_pool, plan_workers
from repro.api.result import RunResult
from repro.api.session import ResolvedRun, execute_resolved
from repro.core.config import DStressConfig
from repro.core.graph import DistributedGraph
from repro.core.program import VertexProgram
from repro.exceptions import ConfigurationError, DStressError, PrivacyBudgetExceeded
from repro.finance.network import FinancialNetwork
from repro.obs.clock import now as clock_now
from repro.obs.metrics import absorb_cache
from repro.obs.trace import current_recorder
from repro.privacy.admission import Precharge, precharge, release_epsilon, release_schedule
from repro.privacy.budget import PrivacyAccountant

__all__ = ["Scenario", "ScenarioOutcome", "BatchResult", "run_batch"]


@dataclass
class Scenario:
    """One batch entry: a named delta on top of the template session.

    Every field is optional except ``name``; unset fields inherit the
    template's choice. ``overrides`` are extra
    :class:`~repro.core.config.DStressConfig` field overrides applied
    after the template's own.
    """

    name: str
    network: Optional[FinancialNetwork] = None
    graph: Optional[DistributedGraph] = None
    program: Optional[Union[str, VertexProgram]] = None
    engine: Optional[Union[str, Engine]] = None
    #: constructor options for a registry-named engine (e.g.
    #: ``engine="sharded", engine_options={"shards": 3}``). Without
    #: ``engine``, they re-apply to the template's engine name. Note a
    #: scenario ``engine`` string *replaces* the template's options, same
    #: as calling :meth:`StressTest.engine` again.
    engine_options: Dict[str, Any] = field(default_factory=dict)
    preset: Optional[str] = None
    config: Optional[DStressConfig] = None
    overrides: Dict[str, Any] = field(default_factory=dict)
    epsilon: Optional[float] = None
    iterations: Optional[Union[int, str]] = None
    seed: Optional[int] = None
    degree_bound: Optional[int] = None


@dataclass
class ScenarioOutcome:
    """Per-scenario slot of a :class:`BatchResult`.

    ``cached=True`` marks an outcome satisfied from the scenario cache
    (or from an identical scenario earlier in the same batch) — its
    ``result`` is the prior :class:`RunResult`, no engine ran and no
    budget was charged for it.
    """

    name: str
    result: Optional[RunResult] = None
    error: Optional[str] = None
    seconds: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchResult:
    """Everything one :meth:`StressTest.run_many` call produced."""

    outcomes: List[ScenarioOutcome]
    wall_seconds: float
    workers: int = 1
    #: Net epsilon drawn from the accountant by this batch: the eager
    #: pre-charge minus refunds for releasing scenarios that failed
    #: (a failed run released nothing, so its charge is returned).
    epsilon_charged: float = 0.0
    #: Scenario-cache accounting for this batch (both stay 0 without a
    #: cache): ``cache_hits`` counts outcomes reused without recompute,
    #: ``cache_misses`` counts scenarios that actually executed.
    cache_hits: int = 0
    cache_misses: int = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def results(self) -> List[RunResult]:
        """Successful results, in input order."""
        return [o.result for o in self.outcomes if o.result is not None]

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def scenario_seconds(self) -> Dict[str, float]:
        """Per-scenario engine wall time (aggregate timing)."""
        return {o.name: o.seconds for o in self.outcomes}

    def aggregates(self) -> Dict[str, float]:
        """Scenario name -> released aggregate, for the successful runs."""
        return {
            o.name: o.result.aggregate for o in self.outcomes if o.result is not None
        }

    def by_name(self, name: str) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise ConfigurationError(
            f"no scenario named {name!r} in this batch; scenarios: "
            + ", ".join(o.name for o in self.outcomes)
        )

    def export(self, accountant: Optional[PrivacyAccountant] = None) -> Dict[str, Any]:
        """Versioned JSON-safe export (``dstress.obs.batch`` schema).

        Pass the batch's ``accountant`` to embed its audit ledger so the
        export reconciles epsilon_charged against the ledger lines.
        """
        from repro.obs.export import export_batch

        return export_batch(self, accountant=accountant)

    def summary(self) -> str:
        ok = sum(1 for o in self.outcomes if o.ok)
        parts = [
            f"{ok}/{len(self.outcomes)} scenarios ok",
            f"wall={self.wall_seconds:.2f}s",
            f"workers={self.workers}",
        ]
        if self.epsilon_charged:
            parts.append(f"epsilon_charged={self.epsilon_charged:g}")
        if self.cache_hits or self.cache_misses:
            parts.append(f"cache={self.cache_hits}h/{self.cache_misses}m")
        return " ".join(parts)


def _apply_scenario(template: "StressTest", scenario: Scenario) -> "StressTest":
    session = template.clone()
    if scenario.network is not None:
        session.network(scenario.network)
        session._graph = None  # a scenario network supersedes a template graph
    if scenario.graph is not None:
        session.graph(scenario.graph)
    if scenario.program is not None:
        session.program(scenario.program)
    if scenario.engine is not None:
        session.engine(scenario.engine, **scenario.engine_options)
    elif scenario.engine_options:
        if not isinstance(session._engine_spec, str):
            raise ConfigurationError(
                "engine_options need a registry-named engine, but the "
                "template engine is an Engine instance; name the engine in "
                "the scenario or construct the instance with its options"
            )
        session.engine(session._engine_spec, **scenario.engine_options)
    if scenario.preset is not None:
        session._config = None  # a scenario preset supersedes a template config
        session.preset(scenario.preset)
    if scenario.config is not None:
        session._preset_name = None
        session.configure(scenario.config)
    if scenario.overrides:
        session.configure(**scenario.overrides)
    if scenario.epsilon is not None:
        session.privacy(epsilon=scenario.epsilon)
    if scenario.seed is not None:
        session.seed(scenario.seed)
    if scenario.degree_bound is not None:
        session.degree_bound(scenario.degree_bound)
    return session


def _run_payload(payload: ResolvedRun) -> ScenarioOutcome:
    """Worker entry point: execute one resolved scenario, capture failures.

    Workers never see the shared accountant — the parent charged it up
    front — so a crashed worker can neither double-charge nor leak budget.
    """
    started = clock_now()
    try:
        result = execute_resolved(payload, accountant=None)
        return ScenarioOutcome(
            name=payload.label, result=result, seconds=clock_now() - started
        )
    except DStressError as exc:
        return ScenarioOutcome(
            name=payload.label,
            error=f"scenario {payload.label!r}: {type(exc).__name__}: {exc}",
            seconds=clock_now() - started,
        )
    except Exception:  # defensive: report, don't hang the pool
        return ScenarioOutcome(
            name=payload.label,
            error=f"scenario {payload.label!r} crashed:\n"
            + traceback.format_exc(limit=5),
            seconds=clock_now() - started,
        )


@dataclass
class _PreparedBatch:
    """Everything the prelude decided, shared by both execution shapes.

    Indexes are positions in the input scenario list: ``to_run`` holds
    the payloads that actually execute (cache misses, one per distinct
    fingerprint), ``cached_results`` the payloads satisfied from a prior
    batch, and ``duplicates`` maps an in-batch duplicate to the index of
    the identical scenario that executes on its behalf.
    """

    payloads: List[ResolvedRun]
    fingerprints: List[Optional[str]]
    to_run: List[int]
    cached_results: Dict[int, RunResult]
    duplicates: Dict[int, int]
    cache: Optional[ScenarioCacheBase]
    effective_workers: int
    epsilon_charged: float
    #: The accountant that was charged (if any) and the admitted
    #: pre-charge per payload index — kept so an abandoned stream can
    #: refund the releases that never executed.
    accountant: Optional[PrivacyAccountant]
    charges: Dict[int, Precharge]
    #: Cache counter values when this batch started; the per-batch
    #: hit/miss counts on :class:`BatchResult` are deltas against these
    #: (in-batch duplicate hits are only counted once their primary
    #: actually succeeds, which happens during execution).
    hits_before: int
    misses_before: int

    def cache_counts(self) -> Tuple[int, int]:
        if self.cache is None:
            return 0, 0
        return self.cache.hits - self.hits_before, self.cache.misses - self.misses_before


def _resolve_cache(cache) -> Optional[ScenarioCacheBase]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return ScenarioCache()
    if isinstance(cache, str) and cache.startswith("tcp://"):
        # a fleet-shared cache tier endpoint; lazy import — the service
        # layer imports the batch layer, not the other way around
        from repro.service.cachetier import RemoteScenarioCache

        rest = cache[len("tcp://"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not port.isdigit():
            raise ConfigurationError(
                f"cache endpoint {cache!r} is not tcp://host:port"
            )
        return RemoteScenarioCache(host or "127.0.0.1", int(port))
    if isinstance(cache, (str, os.PathLike)):
        return PersistentScenarioCache(cache)
    if isinstance(cache, ScenarioCacheBase):
        return cache
    raise ConfigurationError(
        f"cache must be a ScenarioCache, a cache-directory path, a "
        f"tcp://host:port cache-tier endpoint, True, or None — got "
        f"{type(cache).__name__}"
    )


def _intra_run_width(engine: Engine) -> int:
    """The engine's declared :attr:`~repro.api.engines.Engine.intra_run_width`
    (1 for engine-shaped objects that don't declare one).

    The property is the authority and raises for invalid base-class
    declarations; this guard re-checks the *value* (through the same
    shared :func:`~repro.api.engines.validate_intra_run_width` rule)
    because a subclass override can bypass the property entirely, and a
    bad width must be rejected loudly per engine — a ``max()`` over a
    mixed batch would otherwise mask one engine's bad declaration behind
    another's valid wider one. Either way the refusal lands before the
    accountant is charged.
    """
    return validate_intra_run_width(
        getattr(engine, "intra_run_width", 1),
        getattr(engine, "name", type(engine).__name__),
    )


def _prepare_batch(
    template: "StressTest",
    scenarios,
    workers: int,
    accountant: Optional[PrivacyAccountant],
    cache,
) -> _PreparedBatch:
    """Resolve, dedupe against the cache, plan workers, charge budget.

    Everything that can refuse the batch happens here, eagerly — before
    any compute, and for the streaming path before the first ``next()``.
    """
    if workers < 1:
        raise ConfigurationError("workers must be at least 1")
    scenario_list = list(scenarios)
    if not scenario_list:
        raise ConfigurationError("run_many needs at least one scenario")
    names = [s.name for s in scenario_list]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ConfigurationError(f"duplicate scenario names: {dupes}")
    cache_obj = _resolve_cache(cache)

    # Resolve everything first: any bad scenario aborts the whole batch
    # before compute or budget is spent.
    payloads: List[ResolvedRun] = []
    for scenario in scenario_list:
        if not isinstance(scenario, Scenario):
            raise ConfigurationError(
                f"expected a Scenario, got {type(scenario).__name__}"
            )
        iterations = scenario.iterations if scenario.iterations is not None else "auto"
        try:
            session = _apply_scenario(template, scenario)
            payloads.append(session.resolve(iterations, label=scenario.name))
        except DStressError as exc:
            raise ConfigurationError(
                f"scenario {scenario.name!r} failed to resolve "
                f"(no scenario was executed): {exc}"
            ) from exc

    # Split the batch against the cache: prior hits are satisfied without
    # compute; in-batch duplicates execute once and share the result; the
    # rest run. Without a cache everything runs (historical behavior).
    hits_before = cache_obj.hits if cache_obj is not None else 0
    misses_before = cache_obj.misses if cache_obj is not None else 0
    graph_tokens: Dict[int, Any] = {}  # scenarios usually share the template graph
    # fingerprints are computed even without a cache: the accountant's
    # audit ledger stamps each pre-charge with the scenario fingerprint,
    # so a budget audit can name the exact run that spent each epsilon
    fingerprints: List[Optional[str]] = [
        run_fingerprint(p, _graph_tokens=graph_tokens) for p in payloads
    ]
    to_run: List[int] = []
    cached_results: Dict[int, RunResult] = {}
    duplicates: Dict[int, int] = {}
    first_with: Dict[str, int] = {}
    for index, payload in enumerate(payloads):
        fingerprint = fingerprints[index]
        if cache_obj is None:
            to_run.append(index)
            continue
        if fingerprint is not None and fingerprint in first_with:
            # registered now, counted as a hit only once the scenario
            # executing on its behalf succeeds (failures are never hits)
            duplicates[index] = first_with[fingerprint]
            continue
        prior = cache_obj.lookup(fingerprint)
        if prior is not None:
            cached_results[index] = prior
        else:
            if fingerprint is not None:
                first_with[fingerprint] = index
            to_run.append(index)

    # Scenarios with intra-run parallelism (process shards, asyncio task
    # concurrency) inside a pool worker run that stage inline/serially,
    # so each worker stays one process; plan_workers additionally caps
    # the scenario fan-out at the CPU budget so wide batches never run
    # more compute-bound workers than cores, while a serial batch keeps
    # the parent's full intra-run width. Planned before the accountant is
    # touched: a planning failure must not burn budget for runs that
    # never happen. A refusal from here on also rolls the cache counters
    # back — an aborted batch executed nothing, so a shared cache's
    # cumulative hit/miss telemetry must not remember it.
    try:
        width = max((_intra_run_width(payloads[i].engine) for i in to_run), default=1)
        effective_workers = plan_workers(workers, max(1, len(to_run)), width)

        # One accountant, charged sequentially (§4.5 composition) for
        # every scenario whose engine noises and releases an output — but
        # only for scenarios that will actually execute: a cached release
        # re-publishes an already-released value, which consumes no fresh
        # budget. The whole batch is affordability-checked first so a
        # refusal leaves the budget untouched — no partial charges for
        # runs that never happen. The itemization (one ledger line per
        # release window, pricing from the engine's release policy) is
        # the shared repro.privacy.admission authority, the same one the
        # engine lifecycle and the service admission gate charge through.
        epsilon_charged = 0.0
        charges: Dict[int, Precharge] = {}
        if accountant is not None:
            releasing = [
                i for i in to_run if payloads[i].engine.releases_output
            ]
            total = sum(
                release_epsilon(payloads[i].engine, payloads[i].config)
                for i in releasing
            )
            if not accountant.can_afford(total):
                raise PrivacyBudgetExceeded(
                    f"batch needs epsilon {total:.4g} across {len(releasing)} "
                    f"releasing scenario(s) but only {accountant.remaining:.4g} "
                    f"of {accountant.epsilon_max:.4g} remains; drop scenarios, "
                    "lower per-release epsilon, or replenish the accountant"
                )
            for i in releasing:
                payload = payloads[i]
                admitted = precharge(
                    accountant,
                    release_schedule(payload.engine, payload.config, payload.label),
                    fingerprint=fingerprints[i],
                )
                if admitted is not None:
                    charges[i] = admitted
                    epsilon_charged += admitted.epsilon
    except Exception:
        if cache_obj is not None:
            cache_obj.hits = hits_before
            cache_obj.misses = misses_before
        raise

    return _PreparedBatch(
        payloads=payloads,
        fingerprints=fingerprints,
        to_run=to_run,
        cached_results=cached_results,
        duplicates=duplicates,
        cache=cache_obj,
        effective_workers=effective_workers,
        epsilon_charged=epsilon_charged,
        accountant=accountant,
        charges=charges,
        hits_before=hits_before,
        misses_before=misses_before,
    )


def _cached_outcome(prepared: _PreparedBatch, index: int) -> ScenarioOutcome:
    return ScenarioOutcome(
        name=prepared.payloads[index].label,
        result=prepared.cached_results[index],
        seconds=0.0,
        cached=True,
    )


def _duplicate_outcome(
    prepared: _PreparedBatch,
    index: int,
    primary: ScenarioOutcome,
    count_hit: bool = True,
) -> ScenarioOutcome:
    """An in-batch duplicate's outcome, from the scenario that ran for it.

    A successful primary counts as a cache hit and the duplicate gets a
    private copy of its result — the copy keeps sibling outcomes isolated
    (mutating one scenario's result must never bleed into another's, or
    into the cache); a result that refuses to copy is shared as-is,
    better aliased than absent. A *failed* primary is no hit at all: the
    duplicate reports the failure under its own name with
    ``cached=False``, matching the across-batch rule that failures are
    never stored or reused as successes.

    ``count_hit=False`` defers the hit accounting to the caller — the
    streaming path clones duplicates *before* yielding the primary (for
    mutation isolation) but must only count the hit when the duplicate
    outcome is actually delivered.
    """
    label = prepared.payloads[index].label
    if not primary.ok or primary.result is None:
        # the error must name THIS scenario (the established invariant for
        # every failed outcome), while still attributing the actual run
        return ScenarioOutcome(
            name=label,
            error=(
                f"scenario {label!r}: identical to scenario "
                f"{primary.name!r}, which failed: {primary.error}"
            ),
            seconds=0.0,
            cached=False,
        )
    if count_hit and prepared.cache is not None:
        prepared.cache.note_hit()
    return ScenarioOutcome(
        name=label,
        result=clone_result(primary.result) or primary.result,
        seconds=0.0,
        cached=True,
    )


def _finish_outcome(prepared: _PreparedBatch, index: int, outcome: ScenarioOutcome):
    """Post-process one executed outcome: remember successes in the cache."""
    if prepared.cache is not None and outcome.ok and outcome.result is not None:
        prepared.cache.store(prepared.fingerprints[index], outcome.result)
    return outcome


def _stream_outcomes(prepared: _PreparedBatch) -> Iterator[ScenarioOutcome]:
    """Yield outcomes as workers finish: cache hits immediately, executed
    scenarios in completion order, in-batch duplicates right after the
    scenario that ran on their behalf.

    Abandoning the stream (``close()``, ``break``, GC) refunds the
    accountant for every pre-charged releasing scenario whose outcome was
    never received, and a scenario that completed *failed* is refunded on
    the spot — releasing nothing consumes no privacy, so only the
    releases that actually happened stay on the books. The cache's hit/miss
    telemetry is rolled back the same way: a miss counts a scenario that
    executed, a hit counts a result actually delivered, so neither may
    remember work the abandoned stream never did.
    """
    completed: set = set()
    delivered_cached = 0
    results = None
    try:
        # priming point: run_batch advances the generator here before
        # handing it out, so the try/finally is entered and the refund
        # fires even if the consumer never iterates (close()/GC are
        # no-ops on an unstarted generator — its finally would never run)
        yield None  # type: ignore[misc]  # swallowed by run_batch
        # start the pool FIRST: iter_in_pool dispatches at call time, so
        # cache misses compute in workers while the consumer is still
        # processing the cached hits below
        run_payloads = [prepared.payloads[i] for i in prepared.to_run]
        results = iter_in_pool(_run_payload, run_payloads, prepared.effective_workers)
        for index in sorted(prepared.cached_results):
            # count before the yield: reaching the yield statement IS
            # delivery (a close() can only land at a suspension point),
            # while code after it never runs if the consumer closes there
            delivered_cached += 1
            yield _cached_outcome(prepared, index)
        dependents: Dict[int, List[int]] = {}
        for dup_index, primary_index in prepared.duplicates.items():
            dependents.setdefault(primary_index, []).append(dup_index)
        for position, outcome in results:
            index = prepared.to_run[position]
            completed.add(index)
            outcome = _finish_outcome(prepared, index, outcome)
            if (
                not outcome.ok
                and prepared.accountant is not None
                and index in prepared.charges
            ):
                # completed but failed: the release never happened, so its
                # pre-charge goes back (the finally below skips it — the
                # index is in `completed` — so no double refund)
                prepared.charges[index].refund()
            # clone for dependents BEFORE the primary is yielded: once the
            # consumer holds the primary it may mutate it, and that must
            # not bleed into the duplicates still queued behind it. Hits
            # are counted only as each duplicate is actually delivered.
            duplicates = [
                _duplicate_outcome(prepared, dup_index, outcome, count_hit=False)
                for dup_index in sorted(dependents.get(index, ()))
            ]
            yield outcome
            for duplicate in duplicates:
                if duplicate.cached and prepared.cache is not None:
                    prepared.cache.note_hit()
                yield duplicate
    finally:
        if results is not None:
            results.close()  # tears the pool down on abandonment
        if prepared.accountant is not None:
            for index, charge in prepared.charges.items():
                if index not in completed:
                    charge.refund()
        if prepared.cache is not None:
            prepared.cache.hits -= len(prepared.cached_results) - delivered_cached
            prepared.cache.misses -= sum(
                1 for i in prepared.to_run if i not in completed
            )


def run_batch(
    template: "StressTest",
    scenarios,
    workers: int = 1,
    accountant: Optional[PrivacyAccountant] = None,
    stream: bool = False,
    cache=None,
):
    """Resolve, budget-check, and execute a list of scenarios.

    ``workers > 1`` runs scenarios in a fork-based ``multiprocessing``
    pool; ``workers=1`` runs inline (handy under debuggers and on
    platforms without fork). By default returns a :class:`BatchResult`
    with outcomes in input order; ``stream=True`` instead returns an
    iterator yielding each :class:`ScenarioOutcome` as its worker
    finishes (completion order, no pool barrier) — resolution, worker
    planning, and budget charging still all happen before this call
    returns. ``cache`` enables scenario-level result reuse: pass a
    :class:`~repro.api.cache.ScenarioCache`, ``True`` for a per-call
    one, or a directory path (``str`` / :class:`os.PathLike`) for a
    :class:`~repro.api.diskcache.PersistentScenarioCache` whose entries
    survive process restarts.
    """
    prepared = _prepare_batch(template, scenarios, workers, accountant, cache)
    if stream:
        outcomes = _stream_outcomes(prepared)
        next(outcomes)  # enter the generator: arms the refund-on-abandon finally
        return outcomes

    started = clock_now()
    try:
        executed = map_in_pool(
            _run_payload,
            [prepared.payloads[i] for i in prepared.to_run],
            prepared.effective_workers,
        )
    except Exception:
        # the pool itself failed (unpicklable payload, killed worker):
        # nothing came back, so nothing was released — refund every
        # pre-charge and restore the cache telemetry, exactly as the
        # streaming path's finally does. (Per-scenario failures are
        # captured inside _run_payload and do NOT take this path.)
        if prepared.accountant is not None:
            for charge in prepared.charges.values():
                charge.refund()
        if prepared.cache is not None:
            prepared.cache.hits = prepared.hits_before
            prepared.cache.misses = prepared.misses_before
        raise
    by_index = {
        index: _finish_outcome(prepared, index, outcome)
        for index, outcome in zip(prepared.to_run, executed)
    }
    # a releasing scenario that failed published nothing: its eager
    # pre-charge is refunded, and the batch reports the net draw (summed
    # over the charges kept, not subtracted, so a fully-refunded batch
    # reports exactly 0.0 instead of float dust)
    epsilon_charged = prepared.epsilon_charged
    if prepared.accountant is not None:
        kept = dict(prepared.charges)
        for index, charge in prepared.charges.items():
            outcome = by_index.get(index)
            if outcome is not None and not outcome.ok:
                charge.refund()
                del kept[index]
        if len(kept) != len(prepared.charges):
            epsilon_charged = sum(c.epsilon for c in kept.values())
    outcomes: List[ScenarioOutcome] = []
    for index in range(len(prepared.payloads)):
        if index in by_index:
            outcomes.append(by_index[index])
        elif index in prepared.cached_results:
            outcomes.append(_cached_outcome(prepared, index))
        else:
            primary = by_index[prepared.duplicates[index]]
            outcomes.append(_duplicate_outcome(prepared, index, primary))
    cache_hits, cache_misses = prepared.cache_counts()
    batch_result = BatchResult(
        outcomes=outcomes,
        wall_seconds=clock_now() - started,
        workers=prepared.effective_workers,
        epsilon_charged=epsilon_charged,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )
    recorder = current_recorder()
    if recorder.enabled:
        recorder.metrics.set_gauge("batch.wall_seconds", batch_result.wall_seconds)
        recorder.metrics.set_gauge("batch.epsilon_charged", epsilon_charged)
        if prepared.cache is not None:
            absorb_cache(recorder.metrics, prepared.cache)
    return batch_result
