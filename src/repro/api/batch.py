"""Batch scenario execution: many networks/configs through one session.

A regulator's workload is never one run — it is "these five shock
scenarios, on this quarter's network, under this year's remaining
budget". :func:`run_batch` (surfaced as :meth:`StressTest.run_many`)
takes a template session plus a list of :class:`Scenario` deltas,
resolves every scenario *up front* (so a typo in scenario #7 fails before
scenario #1 burns an hour of MPC), charges the shared
:class:`~repro.privacy.budget.PrivacyAccountant` for every
output-releasing run (so a batch that would overrun the yearly ln 2
budget is refused before any compute happens), then fans the resolved
specs across a ``multiprocessing`` pool.

Determinism: each scenario runs with its own explicitly-derived seed
(``scenario.seed``, else the template config's seed), engines draw all
randomness from :class:`~repro.crypto.rng.DeterministicRNG`, and results
are returned in input order regardless of worker scheduling — so a batch
is bit-reproducible across runs and worker counts.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.api.engines import Engine
from repro.api.pool import map_in_pool, plan_workers
from repro.api.result import RunResult
from repro.api.session import ResolvedRun, execute_resolved
from repro.core.config import DStressConfig
from repro.core.graph import DistributedGraph
from repro.core.program import VertexProgram
from repro.exceptions import ConfigurationError, DStressError, PrivacyBudgetExceeded
from repro.finance.network import FinancialNetwork
from repro.privacy.budget import PrivacyAccountant

__all__ = ["Scenario", "ScenarioOutcome", "BatchResult", "run_batch"]


@dataclass
class Scenario:
    """One batch entry: a named delta on top of the template session.

    Every field is optional except ``name``; unset fields inherit the
    template's choice. ``overrides`` are extra
    :class:`~repro.core.config.DStressConfig` field overrides applied
    after the template's own.
    """

    name: str
    network: Optional[FinancialNetwork] = None
    graph: Optional[DistributedGraph] = None
    program: Optional[Union[str, VertexProgram]] = None
    engine: Optional[Union[str, Engine]] = None
    #: constructor options for a registry-named engine (e.g.
    #: ``engine="sharded", engine_options={"shards": 3}``). Without
    #: ``engine``, they re-apply to the template's engine name. Note a
    #: scenario ``engine`` string *replaces* the template's options, same
    #: as calling :meth:`StressTest.engine` again.
    engine_options: Dict[str, Any] = field(default_factory=dict)
    preset: Optional[str] = None
    config: Optional[DStressConfig] = None
    overrides: Dict[str, Any] = field(default_factory=dict)
    epsilon: Optional[float] = None
    iterations: Optional[Union[int, str]] = None
    seed: Optional[int] = None
    degree_bound: Optional[int] = None


@dataclass
class ScenarioOutcome:
    """Per-scenario slot of a :class:`BatchResult`."""

    name: str
    result: Optional[RunResult] = None
    error: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchResult:
    """Everything one :meth:`StressTest.run_many` call produced."""

    outcomes: List[ScenarioOutcome]
    wall_seconds: float
    workers: int = 1
    epsilon_charged: float = 0.0

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def results(self) -> List[RunResult]:
        """Successful results, in input order."""
        return [o.result for o in self.outcomes if o.result is not None]

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def scenario_seconds(self) -> Dict[str, float]:
        """Per-scenario engine wall time (aggregate timing)."""
        return {o.name: o.seconds for o in self.outcomes}

    def aggregates(self) -> Dict[str, float]:
        """Scenario name -> released aggregate, for the successful runs."""
        return {
            o.name: o.result.aggregate for o in self.outcomes if o.result is not None
        }

    def by_name(self, name: str) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise ConfigurationError(
            f"no scenario named {name!r} in this batch; scenarios: "
            + ", ".join(o.name for o in self.outcomes)
        )

    def summary(self) -> str:
        ok = sum(1 for o in self.outcomes if o.ok)
        parts = [
            f"{ok}/{len(self.outcomes)} scenarios ok",
            f"wall={self.wall_seconds:.2f}s",
            f"workers={self.workers}",
        ]
        if self.epsilon_charged:
            parts.append(f"epsilon_charged={self.epsilon_charged:g}")
        return " ".join(parts)


def _apply_scenario(template: "StressTest", scenario: Scenario) -> "StressTest":
    session = template.clone()
    if scenario.network is not None:
        session.network(scenario.network)
        session._graph = None  # a scenario network supersedes a template graph
    if scenario.graph is not None:
        session.graph(scenario.graph)
    if scenario.program is not None:
        session.program(scenario.program)
    if scenario.engine is not None:
        session.engine(scenario.engine, **scenario.engine_options)
    elif scenario.engine_options:
        if not isinstance(session._engine_spec, str):
            raise ConfigurationError(
                "engine_options need a registry-named engine, but the "
                "template engine is an Engine instance; name the engine in "
                "the scenario or construct the instance with its options"
            )
        session.engine(session._engine_spec, **scenario.engine_options)
    if scenario.preset is not None:
        session._config = None  # a scenario preset supersedes a template config
        session.preset(scenario.preset)
    if scenario.config is not None:
        session._preset_name = None
        session.configure(scenario.config)
    if scenario.overrides:
        session.configure(**scenario.overrides)
    if scenario.epsilon is not None:
        session.privacy(epsilon=scenario.epsilon)
    if scenario.seed is not None:
        session.seed(scenario.seed)
    if scenario.degree_bound is not None:
        session.degree_bound(scenario.degree_bound)
    return session


def _run_payload(payload: ResolvedRun) -> ScenarioOutcome:
    """Worker entry point: execute one resolved scenario, capture failures.

    Workers never see the shared accountant — the parent charged it up
    front — so a crashed worker can neither double-charge nor leak budget.
    """
    started = time.perf_counter()
    try:
        result = execute_resolved(payload, accountant=None)
        return ScenarioOutcome(
            name=payload.label, result=result, seconds=time.perf_counter() - started
        )
    except DStressError as exc:
        return ScenarioOutcome(
            name=payload.label,
            error=f"scenario {payload.label!r}: {type(exc).__name__}: {exc}",
            seconds=time.perf_counter() - started,
        )
    except Exception:  # defensive: report, don't hang the pool
        return ScenarioOutcome(
            name=payload.label,
            error=f"scenario {payload.label!r} crashed:\n"
            + traceback.format_exc(limit=5),
            seconds=time.perf_counter() - started,
        )


def run_batch(
    template: "StressTest",
    scenarios,
    workers: int = 1,
    accountant: Optional[PrivacyAccountant] = None,
) -> BatchResult:
    """Resolve, budget-check, and execute a list of scenarios.

    ``workers > 1`` runs scenarios in a fork-based ``multiprocessing``
    pool; ``workers=1`` runs inline (handy under debuggers and on
    platforms without fork). Results always come back in input order.
    """
    if workers < 1:
        raise ConfigurationError("workers must be at least 1")
    scenario_list = list(scenarios)
    if not scenario_list:
        raise ConfigurationError("run_many needs at least one scenario")
    names = [s.name for s in scenario_list]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ConfigurationError(f"duplicate scenario names: {dupes}")

    # Resolve everything first: any bad scenario aborts the whole batch
    # before compute or budget is spent.
    payloads: List[ResolvedRun] = []
    for scenario in scenario_list:
        if not isinstance(scenario, Scenario):
            raise ConfigurationError(
                f"expected a Scenario, got {type(scenario).__name__}"
            )
        iterations = scenario.iterations if scenario.iterations is not None else "auto"
        try:
            session = _apply_scenario(template, scenario)
            payloads.append(session.resolve(iterations, label=scenario.name))
        except DStressError as exc:
            raise ConfigurationError(
                f"scenario {scenario.name!r} failed to resolve "
                f"(no scenario was executed): {exc}"
            ) from exc

    # Sharded scenarios inside a pool worker run their shards inline
    # (daemonic workers cannot fork — bit-identical, just sequential), so
    # each worker stays one process; plan_workers additionally caps the
    # scenario fan-out at the CPU budget so sharded batches never run
    # more compute-bound workers than cores, while a serial batch keeps
    # the parent's full shard pool. Planned before the accountant is
    # touched: a planning failure must not burn budget for runs that
    # never happen.
    shard_width = max(
        (int(getattr(p.engine, "shards", 1)) for p in payloads), default=1
    )
    effective_workers = plan_workers(workers, len(payloads), shard_width)

    # One accountant, charged sequentially (§4.5 composition) for every
    # scenario whose engine noises and releases an output. The whole batch
    # is affordability-checked first so a refusal leaves the budget
    # untouched — no partial charges for runs that never happen.
    epsilon_charged = 0.0
    if accountant is not None:
        releasing = [p for p in payloads if p.engine.releases_output]
        total = sum(p.config.output_epsilon for p in releasing)
        if not accountant.can_afford(total):
            raise PrivacyBudgetExceeded(
                f"batch needs epsilon {total:.4g} across {len(releasing)} "
                f"releasing scenario(s) but only {accountant.remaining:.4g} "
                f"of {accountant.epsilon_max:.4g} remains; drop scenarios, "
                "lower per-release epsilon, or replenish the accountant"
            )
        for payload in releasing:
            accountant.charge(payload.config.output_epsilon, label=payload.label)
            epsilon_charged += payload.config.output_epsilon

    started = time.perf_counter()
    outcomes = map_in_pool(_run_payload, payloads, effective_workers)
    return BatchResult(
        outcomes=outcomes,
        wall_seconds=time.perf_counter() - started,
        workers=effective_workers,
        epsilon_charged=epsilon_charged,
    )
