"""Scenario-level result caching for the batch layer.

A regulator's scenario sweeps repeat themselves: the same quarter's
network under the same config and seed shows up in sweep after sweep
(baselines, ablations where only *other* scenarios change, re-runs after
a failed batch). Since every engine draws all randomness from
:class:`~repro.crypto.rng.DeterministicRNG` seeded by the config, an
identical ``(network, config, program, engine + options, seed,
iterations)`` tuple is guaranteed to reproduce the identical
:class:`~repro.api.result.RunResult` — so recomputing it is pure waste,
and *re-charging* the :class:`~repro.privacy.budget.PrivacyAccountant`
for it is worse than waste: re-publishing a value already released costs
no fresh privacy budget.

:func:`run_fingerprint` derives a stable digest of a resolved run from
exactly those inputs; :class:`ScenarioCache` maps digests to results.
The fingerprint is built only from values with *stable, content-based*
tokens (scalars, dataclasses, the graph's full structure and data, an
engine's scalar options). Anything unrecognized — say an engine carrying
a live :class:`~repro.core.transport.Transport` instance — makes the run
unfingerprintable and therefore *uncacheable*, never wrongly shared: a
cache must only ever err toward a miss.

:class:`ScenarioCacheBase` is the protocol the batch layer programs
against: the in-memory :class:`ScenarioCache` here and the on-disk
:class:`~repro.api.diskcache.PersistentScenarioCache` both implement it,
so ``run_batch(..., cache=...)`` accepts either (or a directory path,
which builds the persistent one).
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

from repro.api.result import RunResult
from repro.api.session import ResolvedRun
from repro.core.graph import DistributedGraph
from repro.crypto.group import CyclicGroup

__all__ = ["ScenarioCache", "ScenarioCacheBase", "run_fingerprint", "clone_result"]


def clone_result(result: RunResult) -> Optional[RunResult]:
    """An independent deep copy of a result, or ``None`` if uncopyable.

    Cached and duplicated outcomes must never alias a result another
    consumer can mutate — a cache entry whose trajectory someone edits in
    place would silently poison every later hit. All built-in results
    deep-copy cleanly; an exotic ``raw`` payload that refuses is treated
    as uncopyable and the caller falls back to recomputing.
    """
    try:
        return copy.deepcopy(result)
    except Exception:
        return None


class _Unfingerprintable(Exception):
    """Internal: a value has no stable content token; the run is uncacheable."""


def _token(value: Any) -> Any:
    """A stable, content-based token for ``value`` (or raise).

    Scalars tokenize as themselves; containers recurse; dataclasses
    recurse over their fields; a :class:`CyclicGroup` is identified by its
    name and order (the singletons carry no other run-relevant state).
    Unknown object types raise — identity-based ``repr`` strings are not
    stable across processes and must never silently key a cache hit.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return (type(value).__name__, value)
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_token(item) for item in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(_token(item) for item in value)))
    if isinstance(value, dict):
        return (
            "map",
            tuple(sorted((_token(k), _token(v)) for k, v in value.items())),
        )
    if isinstance(value, CyclicGroup):
        return ("group", value.name, value.order)
    if isinstance(value, DistributedGraph):
        return (
            "graph",
            value.degree_bound,
            tuple(
                (
                    view.vertex_id,
                    _token(view.data),
                    tuple(view.out_neighbors),
                    tuple(view.in_neighbors),
                )
                for view in value.vertices()
            ),
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            "dc:" + type(value).__name__,
            tuple(
                (f.name, _token(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    raise _Unfingerprintable(type(value).__name__)


def run_fingerprint(
    resolved: ResolvedRun,
    _graph_tokens: Optional[Dict[int, Any]] = None,
) -> Optional[str]:
    """Content digest of everything that determines a run's result.

    Covers the network fingerprint (the materialized graph, structure and
    per-vertex data), the full config (which includes the seed), the
    program identity and fixed-point format, the engine identity (class,
    registry name, and every constructor option — the class matters: two
    engine classes sharing a registry name must never share results), and
    the iteration spec (including the auto-mode tolerance/cap, which
    decide the resolved count). The scenario *label* is deliberately
    excluded — renaming a scenario must not defeat the cache. Returns
    ``None`` when any component lacks a stable token; such runs always
    execute.

    ``_graph_tokens`` is a per-call-site memo (``id(graph) -> digest``)
    for batches whose scenarios share graph objects: the graph is the
    O(V+E) part of the fingerprint, so it is collapsed to a fixed-size
    digest — built (and memoized) once per distinct graph object — before
    entering the outer token, and a 100-scenario sweep over one network
    pays the graph walk, serialization, and hash once, not 100 times.
    Only pass a memo whose lifetime is bounded by the graphs' (ids are
    reusable after GC).
    """
    engine = resolved.engine
    program = resolved.program
    try:
        graph_key = id(resolved.graph)
        if _graph_tokens is not None and graph_key in _graph_tokens:
            graph_digest = _graph_tokens[graph_key]
        else:
            graph_digest = hashlib.sha256(
                repr(_token(resolved.graph)).encode("utf-8")
            ).hexdigest()
            if _graph_tokens is not None:
                _graph_tokens[graph_key] = graph_digest
        # sub-tokens are already stable tuples; assembling them directly
        # (no outer _token pass) avoids re-walking every nested tuple
        token = (
            ("graph", graph_digest),
            ("config", _token(resolved.config)),
            (
                "program",
                type(program).__module__ + "." + type(program).__qualname__,
                program.name,
                _token(vars(program)),
            ),
            (
                "engine",
                type(engine).__module__ + "." + type(engine).__qualname__,
                engine.name,
                _token(vars(engine)),
            ),
            (
                "iterations",
                resolved.iterations,
                resolved.tolerance,
                resolved.max_iterations,
            ),
        )
    except _Unfingerprintable:
        return None
    return hashlib.sha256(repr(token).encode("utf-8")).hexdigest()


class ScenarioCacheBase(ABC):
    """The cache protocol the batch layer programs against.

    Subclasses supply the storage (:meth:`_fetch` / :meth:`_persist`);
    this base owns the shared semantics: ``None`` fingerprints
    (uncacheable runs) always miss, only successful results are stored,
    every entry handed *out* is an isolated copy (isolating what is
    retained is the storage's job — see :meth:`_persist`), and the
    ``hits``/``misses`` counters are plain attributes so the batch layer
    can roll telemetry back when a batch is refused or abandoned.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @abstractmethod
    def _fetch(self, fingerprint: str) -> Optional[RunResult]:
        """An *already isolated* copy of the entry, or ``None`` on miss."""

    @abstractmethod
    def _persist(self, fingerprint: str, result: RunResult) -> None:
        """Remember ``result``. The caller keeps ownership: never mutate
        it, and isolate (copy/serialize) whatever is retained — a
        disk-only store that just pickles it need not copy at all."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every entry (telemetry counters are kept)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    def lookup(self, fingerprint: Optional[str]) -> Optional[RunResult]:
        """A private copy of the cached result, counting the hit/miss."""
        if fingerprint is not None:
            clone = self._fetch(fingerprint)
            if clone is not None:
                self.hits += 1
                return clone
        self.misses += 1
        return None

    def store(self, fingerprint: Optional[str], result: RunResult) -> None:
        """Remember a successful result (no-op for uncacheable runs or
        results the storage cannot isolate)."""
        if fingerprint is not None:
            self._persist(fingerprint, result)

    def note_hit(self) -> None:
        """Count a reuse that bypassed :meth:`lookup` (an in-batch
        duplicate satisfied from a scenario still executing)."""
        self.hits += 1


class ScenarioCache(ScenarioCacheBase):
    """An in-memory fingerprint → :class:`RunResult` store.

    Pass an instance to :func:`repro.api.batch.run_batch` (or
    ``StressTest.run_many(..., cache=...)``) to reuse results across
    batches; ``cache=True`` builds a private per-call instance, which
    still deduplicates identical scenarios *within* one batch. Hits and
    misses are counted on the instance and surfaced per batch on
    :class:`~repro.api.batch.BatchResult`.

    Only successful results are stored — a failed scenario always re-runs.
    Entries are isolated by deep copy on both store and lookup, so no
    consumer ever holds a reference into the cache: mutating a hit's
    result cannot poison later hits, and mutating the original result
    after the batch cannot poison the stored golden copy.
    """

    def __init__(self) -> None:
        super().__init__()
        self._store: Dict[str, RunResult] = {}

    def __len__(self) -> int:
        return len(self._store)

    def _fetch(self, fingerprint: str) -> Optional[RunResult]:
        result = self._store.get(fingerprint)
        if result is None:
            return None
        clone = clone_result(result)
        if clone is None:
            del self._store[fingerprint]  # uncopyable entry: evict
        return clone

    def _persist(self, fingerprint: str, result: RunResult) -> None:
        clone = clone_result(result)
        if clone is not None:
            self._store[fingerprint] = clone

    def clear(self) -> None:
        self._store.clear()
