"""Persistent on-disk scenario cache: sweeps survive process restarts.

The in-memory :class:`~repro.api.cache.ScenarioCache` dies with the
process, but the workload it serves — a regulator re-running the same
quarterly sweeps under a hard yearly ``ln 2`` budget (§4.5) — lives for
years. :class:`PersistentScenarioCache` is the drop-in disk-backed tier:
``run_many(..., cache="path/to/dir")`` keys entries by the same
content-based :func:`~repro.api.cache.run_fingerprint` digests, so a
restarted service (or a colleague's process pointed at a shared
directory) replays previously-released results with **zero engine
executions and zero fresh epsilon charges**.

Layout and guarantees:

* **Content-addressed entries.** Each fingerprint owns two files:
  ``<fp>.pkl`` (the pickled :class:`~repro.api.result.RunResult`) and
  ``<fp>.json`` (a sidecar with format version, fingerprint,
  engine/program identity, payload size, created/used timestamps).
* **Atomic writes.** Every file lands via tmpfile + :func:`os.replace`
  in the cache directory, so a worker killed mid-write can never leave a
  torn entry — only a stale ``.tmp-*`` file, swept on the next init.
* **Versioned format, err toward miss.** An unreadable payload, an
  invalid sidecar, or a sidecar written by a different
  :data:`DISK_FORMAT_VERSION` is treated as a miss and discarded; a
  wrong hit is the one failure mode a result cache must never have.
* **Two tiers.** An in-process memory tier (plain dict of golden copies)
  fronts the disk tier, so hot sweeps pay one deep copy per hit —
  exactly what the memory-only cache costs today — and the disk is only
  read the first time each entry is seen by this process.
* **LRU eviction under a byte cap.** ``max_bytes`` bounds the payload
  bytes on disk; the least-recently-used entries (sidecar ``used_at``,
  refreshed on every disk hit and store — memory-tier hits deliberately
  skip the refresh to keep the hot path write-free) are evicted first,
  and evictions are counted on the instance (``evictions`` /
  ``evicted_bytes``, see :meth:`stats`).
* **Cross-process safety.** Atomic replace + tolerate-vanishing-files
  reads mean two concurrent sweeps (or ``workers>1`` batches) sharing a
  directory can interleave freely: the worst interleaving costs a miss
  and a recompute, never corruption or a wrong hit.

**Trust model.** Entries are ``pickle`` payloads, and unpickling
executes code: anyone who can write to the cache directory can run
arbitrary code in every process that reads it. Point ``cache=`` only at
directories exactly as trusted as the code you run — your own service's
state directory, a team-owned volume — never at world-writable paths.
The cross-process guarantees above are about *crash and race* safety
between cooperating writers, not about malicious ones.
"""

from __future__ import annotations

import json
import os
import pickle
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.api.cache import ScenarioCacheBase, clone_result
from repro.obs.clock import wall_time
from repro.api.result import RunResult
from repro.exceptions import ConfigurationError

__all__ = ["PersistentScenarioCache", "DISK_FORMAT_VERSION"]

#: Version stamped into every entry's sidecar. Bump it whenever the
#: pickled payload shape or the fingerprint inputs change incompatibly:
#: entries from other versions read as misses, never as wrong hits.
DISK_FORMAT_VERSION = 1

_PAYLOAD_SUFFIX = ".pkl"
_SIDECAR_SUFFIX = ".json"
_TMP_PREFIX = ".tmp-"

#: How old a sidecar-less payload must be before it is swept as an
#: orphan. A live writer lands the payload microseconds before the
#: sidecar; only a writer that died in that gap leaves one this stale.
_ORPHAN_GRACE_SECONDS = 60.0

#: Eviction empties the store down to this fraction of ``max_bytes``
#: rather than stopping exactly at the cap, so a store arriving at a
#: full cache buys headroom for many further stores instead of pushing
#: the next store straight back into a full directory walk.
_EVICTION_LOW_WATER = 0.9


class PersistentScenarioCache(ScenarioCacheBase):
    """A two-tier (memory → disk) fingerprint → :class:`RunResult` store.

    Drop-in wherever a :class:`~repro.api.cache.ScenarioCache` is
    accepted; ``run_batch`` / ``StressTest.run_many`` also build one
    directly from ``cache="path/to/dir"``. The directory is created on
    demand and may be shared between processes.

    Parameters
    ----------
    directory:
        Where entries live. Everything this cache writes stays inside it.
    max_bytes:
        Optional hard cap on the total payload bytes kept on disk;
        exceeding it evicts least-recently-used entries after every
        store. A single entry larger than the cap is rejected outright
        (memory tier included, counted on ``rejections``) — it alone, so
        it can never flush smaller already-paid-for entries out of the
        store (a hard budget, not advisory).
    memory_tier:
        Keep an in-process dict of entries already seen, so repeat hits
        cost one deep copy instead of a disk read. Unbounded, like the
        memory-only cache; disable for many-gigabyte sweeps.
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        max_bytes: Optional[int] = None,
        memory_tier: bool = True,
    ) -> None:
        super().__init__()
        if max_bytes is not None and (isinstance(max_bytes, bool) or max_bytes < 1):
            raise ConfigurationError("max_bytes must be a positive int (or None)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._memory: Optional[Dict[str, RunResult]] = {} if memory_tier else None
        #: Telemetry beyond the base hit/miss counters: which tier served
        #: each hit, and what eviction has cost so far. Cumulative over
        #: the instance's lifetime (batch-refusal rollbacks adjust only
        #: the shared ``hits``/``misses``).
        self.memory_hits = 0
        self.disk_hits = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.rejections = 0
        self._sweep_stale_tmp()
        self._sweep_orphan_payloads()
        # running payload-byte estimate, seeded from disk once: the
        # common under-cap store must not pay a directory walk. Stores
        # add to it, eviction walks resync it from disk; another
        # process's concurrent writes are invisible until our own next
        # walk, so a shared directory enforces the cap per writer (it can
        # transiently exceed the cap by the other writers' in-flight
        # bytes — never by ours).
        self._approx_bytes = self.total_bytes() if max_bytes is not None else 0

    # ------------------------------------------------------------ protocol --

    def _fetch(self, fingerprint: str) -> Optional[RunResult]:
        if self._memory is not None and fingerprint in self._memory:
            clone = clone_result(self._memory[fingerprint])
            if clone is not None:
                # no sidecar touch here: the hot path must cost exactly
                # one deep copy (the entry's used_at was refreshed when
                # this process first read or wrote it, which bounds the
                # LRU staleness at the process lifetime)
                self.memory_hits += 1
                return clone
            del self._memory[fingerprint]  # uncopyable entry: evict
        _, sidecar_path = self._paths(fingerprint)
        if not sidecar_path.exists():
            # plain miss: nothing to clean up — and nothing to race. A
            # _discard here could delete a concurrent writer's entry that
            # lands between this check and the unlink (the sidecar is the
            # last file written, so present-but-invalid can only mean
            # corruption or version skew, never a writer mid-persist).
            return None
        meta = self._read_sidecar(fingerprint)
        result = self._read_entry(fingerprint, meta)
        if result is None:
            return None
        self.disk_hits += 1
        self._touch(fingerprint, meta)
        if self._memory is not None:
            # keep the unpickled object as the golden copy; hand out a clone
            self._memory[fingerprint] = result
            return clone_result(result)
        return result

    def _persist(self, fingerprint: str, result: RunResult) -> None:
        # pickling isolates the disk copy by itself, so a memory_tier=False
        # store never deep-copies; only the memory tier needs its own clone
        try:
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self._remember(fingerprint, result)
            return  # unpicklable result: memory-tier entry only (if any)
        if self.max_bytes is not None and len(payload) > self.max_bytes:
            # an entry that can never fit under the cap must not enter the
            # LRU walk at all — as the batch's newest entry it would sort
            # last and push every smaller (still-valid, already-paid-for)
            # entry out before evicting itself. It is rejected outright,
            # memory tier included, and counted apart from evictions so
            # evicted_bytes reflects only bytes that actually left disk.
            self.rejections += 1
            return
        self._remember(fingerprint, result)
        payload_path, sidecar_path = self._paths(fingerprint)
        now = wall_time()
        meta = {
            "version": DISK_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "engine": result.engine,
            "program": result.program,
            "payload_bytes": len(payload),
            "created_at": now,
            "used_at": now,
        }
        try:
            # payload first, sidecar second: an entry is live only once its
            # sidecar validates, so a crash between the two writes leaves a
            # sidecar-less payload that reads as a miss (and is swept by
            # eviction), never a live pointer to missing data
            self._atomic_write(payload_path, payload)
            self._atomic_write(
                sidecar_path, json.dumps(meta, sort_keys=True).encode("utf-8")
            )
        except OSError:
            return  # a full/readonly/raced disk costs persistence, not the run
        if self.max_bytes is not None:
            self._approx_bytes += len(payload)
            if self._approx_bytes > self.max_bytes:
                self._evict_to_cap(protect=fingerprint)

    def clear(self) -> None:
        if self._memory is not None:
            self._memory.clear()
        for path in self.directory.iterdir():
            if path.suffix in (_PAYLOAD_SUFFIX, _SIDECAR_SUFFIX) or path.name.startswith(
                _TMP_PREFIX
            ):
                _unlink_quietly(path)
        self._approx_bytes = 0

    def __len__(self) -> int:
        return sum(
            1
            for path in self.directory.glob("*" + _SIDECAR_SUFFIX)
            if not path.name.startswith(_TMP_PREFIX)
        )

    # ----------------------------------------------------------- telemetry --

    def total_bytes(self) -> int:
        """Payload bytes currently on disk (sidecars are not counted)."""
        total = 0
        for payload_path, _ in self._entry_paths():
            try:
                total += payload_path.stat().st_size
            except OSError:
                continue
        return total

    def stats(self) -> Dict[str, int]:
        """One snapshot of the cache's telemetry counters and footprint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "rejections": self.rejections,
            "entries": len(self),
            "disk_bytes": self.total_bytes(),
        }

    # ----------------------------------------------------------- internals --

    def _remember(self, fingerprint: str, result: RunResult) -> None:
        """Keep a private golden copy in the memory tier (if enabled)."""
        if self._memory is not None:
            clone = clone_result(result)
            if clone is not None:
                self._memory[fingerprint] = clone

    def _paths(self, fingerprint: str) -> Tuple[Path, Path]:
        return (
            self.directory / (fingerprint + _PAYLOAD_SUFFIX),
            self.directory / (fingerprint + _SIDECAR_SUFFIX),
        )

    def _entry_paths(self):
        """(payload, sidecar) pairs for every sidecar currently on disk."""
        for sidecar_path in self.directory.glob("*" + _SIDECAR_SUFFIX):
            if sidecar_path.name.startswith(_TMP_PREFIX):
                continue
            fingerprint = sidecar_path.name[: -len(_SIDECAR_SUFFIX)]
            yield self.directory / (fingerprint + _PAYLOAD_SUFFIX), sidecar_path

    def _atomic_write(self, path: Path, data: bytes) -> None:
        """Write ``data`` to ``path`` so readers see old-or-new, never torn."""
        tmp = self.directory / f"{_TMP_PREFIX}{os.getpid()}-{uuid.uuid4().hex}"
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            _unlink_quietly(tmp)

    def _read_sidecar(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        _, sidecar_path = self._paths(fingerprint)
        try:
            meta = json.loads(sidecar_path.read_bytes())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(meta, dict)
            or meta.get("version") != DISK_FORMAT_VERSION
            or meta.get("fingerprint") != fingerprint
        ):
            return None
        return meta

    def _read_entry(
        self, fingerprint: str, meta: Optional[Dict[str, Any]]
    ) -> Optional[RunResult]:
        """Validate and unpickle one disk entry given its already-read
        sidecar; anything wrong is a miss (and the remains are discarded
        so they aren't re-tried forever)."""
        if meta is None:
            self._discard(fingerprint)
            return None
        payload_path, _ = self._paths(fingerprint)
        try:
            result = pickle.loads(payload_path.read_bytes())
        except Exception:
            self._discard(fingerprint)
            return None
        if not isinstance(result, RunResult):
            self._discard(fingerprint)
            return None
        return result

    def _touch(self, fingerprint: str, meta: Dict[str, Any]) -> None:
        """Refresh the entry's LRU timestamp from its already-read
        sidecar (best effort — a lost touch only skews eviction order,
        never correctness)."""
        meta = dict(meta)
        meta["used_at"] = wall_time()
        _, sidecar_path = self._paths(fingerprint)
        try:
            self._atomic_write(
                sidecar_path, json.dumps(meta, sort_keys=True).encode("utf-8")
            )
        except OSError:
            pass

    def _discard(self, fingerprint: str) -> None:
        for path in self._paths(fingerprint):
            _unlink_quietly(path)

    def _evict_to_cap(self, protect: Optional[str] = None) -> None:
        """Full eviction walk: resync the byte estimate from disk, then
        evict oldest-used entries until the cap holds. Only reached when
        the running estimate crosses the cap (rare), so its directory
        walk and sidecar reads are off the common store path.

        ``protect`` exempts the entry whose store triggered this walk: it
        fit under the cap (oversized ones were rejected before writing),
        so the walk must never sacrifice it to reach the low-water mark —
        a sweep whose single result sits between the mark and the cap
        would otherwise get zero persistence, re-charging epsilon on
        every restart."""
        if self.max_bytes is None:
            return
        # orphaned payloads are invisible to the sidecar walk below, so
        # the walk sweeps them first — otherwise a crashed writer's
        # half-entry would count against nothing yet occupy real bytes
        self._sweep_orphan_payloads()
        sized: List[Tuple[str, int]] = []  # (fingerprint, bytes)
        total = 0
        for payload_path, sidecar_path in self._entry_paths():
            try:
                size = payload_path.stat().st_size
            except OSError:
                # sidecar without payload: half-written or raced entry —
                # remove the orphan sidecar so len() stays honest
                _unlink_quietly(sidecar_path)
                continue
            sized.append((sidecar_path.name[: -len(_SIDECAR_SUFFIX)], size))
            total += size
        if total > self.max_bytes:
            # over cap for real: only now pay a sidecar read per entry.
            # Evict down to a low-water mark, not just under the cap —
            # at steady state an exactly-at-cap store would otherwise
            # cross the cap (and pay this whole walk) on every store
            target = int(self.max_bytes * _EVICTION_LOW_WATER)
            entries = []  # (used_at, fingerprint, bytes)
            for fingerprint, size in sized:
                meta = self._read_sidecar(fingerprint)
                used_at = float(meta.get("used_at", 0.0)) if meta else 0.0
                entries.append((used_at, fingerprint, size))
            entries.sort()  # oldest first; fingerprint breaks ties stably
            for used_at, fingerprint, size in entries:
                if total <= target:
                    break
                if fingerprint == protect:
                    continue
                self._discard(fingerprint)
                self.evictions += 1
                self.evicted_bytes += size
                total -= size
        self._approx_bytes = total

    def _sweep_stale_tmp(self) -> None:
        """Remove tmp files left by crashed writers. Racing a *live*
        writer's tmp at worst turns its store into a no-op (a miss later),
        which is the direction a cache is allowed to err."""
        for path in self.directory.glob(_TMP_PREFIX + "*"):
            _unlink_quietly(path)

    def _sweep_orphan_payloads(self) -> None:
        """Remove payloads whose sidecar never landed (a writer died
        between the two writes): they read as misses but occupy real
        bytes that no eviction walk would otherwise ever see. The grace
        period keeps this from racing a live writer mid-``_persist``."""
        now = wall_time()
        for payload_path in self.directory.glob("*" + _PAYLOAD_SUFFIX):
            if payload_path.name.startswith(_TMP_PREFIX):
                continue
            sidecar_path = payload_path.with_suffix(_SIDECAR_SUFFIX)
            if sidecar_path.exists():
                continue
            try:
                age = now - payload_path.stat().st_mtime
            except OSError:
                continue
            if age > _ORPHAN_GRACE_SECONDS:
                _unlink_quietly(payload_path)


def _unlink_quietly(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass
