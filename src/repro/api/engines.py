"""Engine backends: one protocol, four implementations.

An :class:`Engine` turns ``(program, graph, iterations, config)`` into a
:class:`~repro.api.result.RunResult`. The four built-ins wrap the seed's
previously-disjoint entry points:

=============  ==========================================================
``plaintext``  :meth:`PlaintextEngine.run_float` — the float oracle
``fixed``      :meth:`PlaintextEngine.run_fixed` — clear circuit eval
``secure``     :meth:`SecureEngine.run` — the full DStress protocol
``naive-mpc``  the §5.5 monolithic-MPC baseline (computes the same
               function centrally, projects the monolithic GMW cost)
``sharded``    float mode partitioned across worker processes within one
               run (:class:`~repro.api.sharded.ShardedEngine`)
``async``      float mode as per-vertex asyncio pipelines over a
               transport bus, overlapping computation with deliveries
               (:class:`~repro.api.async_engine.AsyncEngine`)
``secure-async``  the full protocol with per-block OT batches dispatched
               over the transport bus, bit-identical to ``secure``
               (:class:`~repro.api.secure_async.SecureAsyncEngine`)
=============  ==========================================================

All built-ins compute the *same function* pre-noise on the same graph
(the engine-parity tests assert it), so sweeps can trade fidelity for
speed by swapping one string. New backends (remote, ...) implement
:class:`Engine` and call :func:`~repro.api.registry.register_engine`.

Every built-in executes through the shared run lifecycle
(:func:`repro.core.lifecycle.run_lifecycle`): the backend contributes a
:class:`~repro.core.lifecycle.LifecycleCore` with the five stage bodies
(``setup``/``rounds``/``aggregate``/``noise``/``release``) while the
spine owns budget admission, stage timings, the ``run`` trace span, and
release bookkeeping. All engines therefore accept the release options
``release="oneshot"|"windowed"``, ``windows=[...]``, and
``window_epsilon=...`` — windowed continual release publishes one noised
value per round window and charges the accountant per window.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple, Union

from repro.api.registry import register_engine
from repro.api.result import RunResult
from repro.core.config import DStressConfig
from repro.core.engine import PlaintextEngine, PlaintextRun
from repro.core.graph import DistributedGraph
from repro.core.lifecycle import (
    LifecycleCore,
    OneShotRelease,
    ReleasePolicy,
    RunState,
    resolve_release_policy,
    run_lifecycle,
)
from repro.core.program import VertexProgram
from repro.core.secure_engine import SecureEngine
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError
from repro.obs.clock import now as clock_now
from repro.obs.metrics import record_run
from repro.obs.trace import timed_phase
from repro.privacy.budget import PrivacyAccountant
from repro.privacy.mechanisms import two_sided_geometric_sample
from repro.simulation.naive_baseline import estimate_monolithic_seconds
from repro.simulation.netsim import TrafficMeter, meter_from_rounds

__all__ = [
    "Engine",
    "PlaintextFloatEngine",
    "PlaintextFixedEngine",
    "SecureDStressEngine",
    "NaiveMPCEngine",
    "validate_intra_run_width",
]


def validate_intra_run_width(width, owner: str) -> int:
    """The one rule for what counts as a valid intra-run width.

    Shared by :attr:`Engine.intra_run_width` and the batch planner so the
    two layers can never drift on the rule or the error text.
    """
    if isinstance(width, bool) or not isinstance(width, int) or width < 1:
        raise ConfigurationError(
            f"engine {owner!r} declared an invalid shard width / task "
            f"concurrency {width!r}; intra-run width must be a positive int"
        )
    return width


class Engine(ABC):
    """One way of executing a vertex program over a distributed graph."""

    #: Registry name (also stamped on every result this engine produces).
    name: str = "abstract"
    #: Whether :meth:`execute` noises and releases an output — i.e. whether
    #: a run through this engine consumes differential-privacy budget. The
    #: session and batch layers charge the shared accountant based on this.
    #: A windowed release policy forces it on (continual release always
    #: publishes), which :meth:`_configure_release` reflects per instance.
    releases_output: bool = False

    @abstractmethod
    def execute(
        self,
        program: VertexProgram,
        graph: DistributedGraph,
        iterations: int,
        config: DStressConfig,
        accountant: Optional[PrivacyAccountant] = None,
    ) -> RunResult:
        """Run ``program`` for ``iterations`` rounds and normalize the result."""

    def _configure_release(
        self,
        release: Union[str, ReleasePolicy] = "oneshot",
        windows: Optional[Sequence[int]] = None,
        window_epsilon: Optional[float] = None,
    ) -> None:
        """Resolve the constructor's release options into a policy.

        Called by every built-in ``__init__``; a policy that forces a
        release (windowed) flips ``releases_output`` on for this instance
        so the admission layers price the run correctly.
        """
        policy = resolve_release_policy(release, windows, window_epsilon)
        self._release_policy = policy
        self.releases_output = bool(type(self).releases_output or policy.forces_release)

    @property
    def release_policy(self) -> ReleasePolicy:
        """When (and at what budget) this engine's runs release output.

        Defaults to one-shot for engines (including third-party ones) that
        never called :meth:`_configure_release`.
        """
        policy = getattr(self, "_release_policy", None)
        return policy if policy is not None else OneShotRelease()

    def release_label(self, program_name: str) -> str:
        """Audit-ledger label for this engine's releases of ``program_name``."""
        return f"{program_name}-release"

    @property
    def intra_run_width(self) -> int:
        """Widest parallelism one run of this engine deploys internally.

        The batch layer multiplies this into its worker planning so
        ``workers x width`` never oversubscribes the CPU budget. The
        default recognizes the two conventional declarations — process
        ``shards`` (sharded) and asyncio ``tasks`` (async) — and raises
        on an invalid declared value, so every caller (not just the
        batch planner) gets a loud per-engine error rather than a
        nonsensical width. Engines whose ``shards``/``tasks`` attributes
        mean something else should override this property.
        """
        declared = []
        for attr in ("shards", "tasks"):
            value = getattr(self, attr, None)
            if value is None:
                continue
            # any declared value is validated — a non-int declaration
            # (tasks="16") silently meaning width 1 would hide the
            # misdeclaration and defeat the oversubscription cap
            declared.append(validate_intra_run_width(value, self.name))
        return max(declared) if declared else 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


# -------------------------------------------------------- shared helpers --


def _central_release_noise(
    program: VertexProgram,
    config: DStressConfig,
    pre_noise: float,
    epsilon: float,
    end: int,
    fork_label: Optional[str] = None,
) -> Tuple[float, int]:
    """Central two-sided geometric output noise (plaintext-family engines).

    The secure engine samples this mechanism inside MPC; the plaintext
    family (when a windowed policy forces releases) and the naive baseline
    sample it centrally. The fork is keyed by the cumulative release round
    ``end``, so window ``j`` of any windowed schedule draws the same noise
    as the release at round ``end`` of every other schedule reaching it —
    the bit-identity the windowed property test pins. ``fork_label``
    overrides the key for the naive baseline's historical one-shot stream.
    """
    label = fork_label if fork_label is not None else f"windowed-release-{end}"
    rng = DeterministicRNG(config.seed).fork(label)
    noise_raw = two_sided_geometric_sample(
        config.noise_alpha_for(program.sensitivity, epsilon), rng
    )
    return pre_noise + noise_raw * program.fmt.resolution, noise_raw


def _from_plaintext(
    engine_name: str,
    program: VertexProgram,
    run: PlaintextRun,
    iterations: int,
    started: float,
    graph: Optional[DistributedGraph] = None,
    record: bool = True,
) -> RunResult:
    """Normalize a PlaintextRun, carrying its phase timings and — when the
    graph is known — a synthesized per-link traffic meter, so every
    engine's RunResult exposes the same telemetry shape.

    ``record=False`` defers the ambient-recorder absorption to callers
    (the lifecycle driver, which records once per run) that still attach
    extras afterwards.
    """
    traffic = None
    if graph is not None:
        # round-synchronous byte profile is exact arithmetic: one
        # fixed-point message per directed edge per routed round
        traffic = meter_from_rounds(graph, iterations, program.fmt.total_bits / 8.0)
    result = RunResult(
        engine=engine_name,
        program=program.name,
        aggregate=run.aggregate,
        trajectory=list(run.trajectory),
        iterations=iterations,
        wall_seconds=clock_now() - started,
        traffic=traffic,
        phases=run.phases,
        final_states=run.final_states,
        raw=run,
    )
    if record:
        record_run(result)
    return result


class _CentralNoiseCore(LifecycleCore):
    """Noise stage shared by the plaintext-family cores.

    Expects ``self.program`` / ``self.config`` on the concrete core. The
    default one-shot policy never releases for these engines (``epsilon``
    is ``None`` and the exact value passes through); a windowed policy
    noises each window centrally.
    """

    program: VertexProgram
    config: DStressConfig

    def noise(self, state, pre_noise, epsilon, end):
        if epsilon is None:
            return pre_noise, None
        return _central_release_noise(self.program, self.config, pre_noise, epsilon, end)


# ----------------------------------------------------- plaintext engines --


class _PlaintextCore(_CentralNoiseCore):
    """Float/fixed oracle stages over a resumable
    :class:`~repro.core.rounds.RoundLoop`."""

    def __init__(self, engine, program, graph, config, fixed: bool) -> None:
        self.engine = engine
        self.program = program
        self.graph = graph
        self.config = config
        self.fixed = fixed
        self.inner = PlaintextEngine(program)
        self.loop = None

    def setup(self, state: RunState) -> None:
        start = self.inner.start_fixed if self.fixed else self.inner.start_float
        self.loop = start(self.graph, state.phases)

    def run_window(self, state: RunState, rounds: int, first: bool) -> None:
        self.loop.advance(rounds)
        state.trajectory = list(self.loop.trajectory)

    def aggregate(self, state: RunState) -> float:
        observe = (
            self.inner._aggregate_raw if self.fixed else self.inner._aggregate_float
        )
        return observe(self.loop.states)

    def finalize(self, state: RunState, started: float) -> RunResult:
        finish = self.inner.finish_fixed if self.fixed else self.inner.finish_float
        run = finish(self.loop)
        return _from_plaintext(
            self.engine.name,
            self.program,
            run,
            state.rounds_done,
            started,
            graph=self.graph,
            record=False,
        )


class PlaintextFloatEngine(Engine):
    """The float reference semantics (what a trusted regulator computes)."""

    name = "plaintext"

    def __init__(
        self,
        release: Union[str, ReleasePolicy] = "oneshot",
        windows: Optional[Sequence[int]] = None,
        window_epsilon: Optional[float] = None,
    ) -> None:
        self._configure_release(release, windows, window_epsilon)

    def execute(self, program, graph, iterations, config, accountant=None):
        core = _PlaintextCore(self, program, graph, config, fixed=False)
        return run_lifecycle(self, core, program, config, iterations, accountant)


class PlaintextFixedEngine(Engine):
    """Clear evaluation of the MPC circuits — the secure engine's oracle."""

    name = "fixed"

    def __init__(
        self,
        release: Union[str, ReleasePolicy] = "oneshot",
        windows: Optional[Sequence[int]] = None,
        window_epsilon: Optional[float] = None,
    ) -> None:
        self._configure_release(release, windows, window_epsilon)

    def execute(self, program, graph, iterations, config, accountant=None):
        core = _PlaintextCore(self, program, graph, config, fixed=True)
        return run_lifecycle(self, core, program, config, iterations, accountant)


# --------------------------------------------------------- secure engine --


class _SecureCore(LifecycleCore):
    """The full protocol's stages, driving :class:`SecureEngine` windows.

    The two classes are designed together: the core walks the engine's
    window/aggregation internals (``_begin_run``/``_window_sync``/
    ``_aggregation_tree``/``_noise_and_reveal``) so the lifecycle path
    performs the crypto in exactly the transcript order of the historical
    :meth:`SecureEngine.run`. The async variant in
    :mod:`repro.api.secure_async` overrides :meth:`run_window` to dispatch
    each window's batches over a transport bus.
    """

    def __init__(self, engine, program, graph, config) -> None:
        self.engine = engine
        self.program = program
        self.graph = graph
        self.config = config
        self.inner = SecureEngine(
            program, config, backend=getattr(engine, "backend", "scalar")
        )
        self.ctx = None
        self.tree = None
        self.levels = 1
        self.noisy_raw = 0
        self.pre_noise_raw = 0

    def setup(self, state: RunState) -> None:
        self.ctx = self.inner._begin_run(
            self.graph, sum(state.windows), None, None, phases=state.phases
        )

    def run_window(self, state: RunState, rounds: int, first: bool) -> None:
        self.inner._window_sync(self.ctx, rounds, first)
        state.trajectory = list(self.ctx.trajectory)

    def aggregate(self, state: RunState) -> float:
        # the aggregation tree consumes shared randomness, so it runs once
        # per window and hands its root inputs forward to the noise stage
        with timed_phase(self.ctx.phases, "aggregation"):
            self.tree = self.inner._aggregation_tree(self.ctx)
        self.pre_noise_raw = self.tree[3]
        return self.pre_noise_raw * self.program.fmt.resolution

    def noise(self, state, pre_noise, epsilon, end):
        root_inputs, root_width, self.levels, pre_noise_raw = self.tree
        with timed_phase(self.ctx.phases, "aggregation"):
            self.noisy_raw = self.inner._noise_and_reveal(
                self.ctx, root_inputs, root_width, epsilon
            )
        fmt = self.program.fmt
        return self.noisy_raw * fmt.resolution, self.noisy_raw - pre_noise_raw

    def finalize(self, state: RunState, started: float) -> RunResult:
        secure = self.inner._assemble_result(
            self.ctx, self.noisy_raw, self.pre_noise_raw, self.levels
        )
        return RunResult(
            engine=self.engine.name,
            program=self.program.name,
            aggregate=secure.noisy_output,
            trajectory=list(secure.trajectory),
            iterations=state.rounds_done,
            wall_seconds=clock_now() - started,
            pre_noise_aggregate=secure.pre_noise_output,
            noise_raw=secure.noise_raw,
            epsilon=self.config.output_epsilon,
            traffic=secure.traffic,
            phases=secure.phases,
            extras={
                "transfer_count": float(secure.transfer_count),
                "gmw_ot_count": float(secure.gmw_ot_count),
                "aggregation_levels": float(secure.aggregation_levels),
            },
            raw=secure,
        )


class SecureDStressEngine(Engine):
    """The full DStress protocol stack (§3.3–§3.6).

    ``backend="bitsliced"`` swaps the per-gate GMW loop for the numpy
    lane evaluator with its offline/online phase split
    (:mod:`repro.mpc.bitslice`); released outputs and metered traffic are
    bit-identical to the default ``"scalar"`` backend.
    """

    name = "secure"
    releases_output = True

    def __init__(
        self,
        backend: str = "scalar",
        release: Union[str, ReleasePolicy] = "oneshot",
        windows: Optional[Sequence[int]] = None,
        window_epsilon: Optional[float] = None,
    ) -> None:
        if backend not in ("scalar", "bitsliced"):
            raise ConfigurationError(
                f"engine 'secure' has no backend {backend!r}; "
                "choose 'scalar' or 'bitsliced'"
            )
        self.backend = backend
        self._configure_release(release, windows, window_epsilon)

    def execute(self, program, graph, iterations, config, accountant=None):
        core = _SecureCore(self, program, graph, config)
        return run_lifecycle(self, core, program, config, iterations, accountant)


# -------------------------------------------------------- naive baseline --


class _NaiveCore(_PlaintextCore):
    """The monolithic baseline: fixed-circuit stages + central noise +
    the cubic cost projection."""

    def __init__(self, engine, program, graph, config) -> None:
        super().__init__(engine, program, graph, config, fixed=True)

    def noise(self, state, pre_noise, epsilon, end):
        if epsilon is None:
            return pre_noise, None
        # the historical one-shot noise stream is pinned (seeded results
        # depend on it); windowed releases key their forks by round
        label = (
            "naive-output-noise"
            if self.engine.release_policy.kind == "oneshot"
            else None
        )
        return _central_release_noise(
            self.program, self.config, pre_noise, epsilon, end, fork_label=label
        )

    def finalize(self, state: RunState, started: float) -> RunResult:
        result = super().finalize(state, started)
        if self.engine.estimate_cost:
            parties = min(self.config.block_size, self.engine.max_parties)
            projected, fit = estimate_monolithic_seconds(
                self.graph.num_vertices,
                state.rounds_done,
                self.program.fmt,
                parties=parties,
                sample_sizes=self.engine.sample_sizes,
            )
            result.extras["projected_mpc_seconds"] = projected
            result.extras["fit_coefficient"] = fit.coefficient
        # the monolithic baseline computes centrally: no per-link round
        # traffic exists, but the meter is present (empty) so every
        # engine's RunResult exposes the same key scheme
        result.traffic = TrafficMeter()
        return result


class NaiveMPCEngine(Engine):
    """The §5.5 monolithic-MPC strawman, as an engine backend.

    The baseline computes the *same* DP release as DStress, just as one
    giant circuit among all participants — which is exactly why the paper
    rejects it: the cost is O(N^3) per iteration. Running that circuit for
    real is infeasible beyond a handful of banks even in the paper's
    Wysteria prototype, so this adapter does what §5.5 does:

    * computes the aggregate centrally (the monolithic circuit's output
      equals the reference semantics) and noises it with the same
      two-sided geometric mechanism the DStress aggregation block samples
      in MPC;
    * measures *real* GMW matrix multiplies at small N, fits the cubic,
      and reports the projected monolithic runtime for this graph in
      ``extras["projected_mpc_seconds"]`` (the "287 years" number).

    Set ``estimate_cost=False`` to skip the GMW calibration when only the
    release value matters.
    """

    name = "naive-mpc"
    releases_output = True

    def __init__(
        self,
        estimate_cost: bool = True,
        sample_sizes: Sequence[int] = (2, 3),
        max_parties: int = 3,
        release: Union[str, ReleasePolicy] = "oneshot",
        windows: Optional[Sequence[int]] = None,
        window_epsilon: Optional[float] = None,
    ) -> None:
        self.estimate_cost = estimate_cost
        self.sample_sizes = tuple(sample_sizes)
        self.max_parties = max_parties
        self._configure_release(release, windows, window_epsilon)

    def release_label(self, program_name: str) -> str:
        return f"{program_name}-naive-release"

    def execute(self, program, graph, iterations, config, accountant=None):
        core = _NaiveCore(self, program, graph, config)
        return run_lifecycle(self, core, program, config, iterations, accountant)


register_engine("plaintext", PlaintextFloatEngine, aliases=("float", "clear"))
register_engine("fixed", PlaintextFixedEngine, aliases=("plaintext-fixed",))
register_engine("secure", SecureDStressEngine, aliases=("dstress",))
register_engine("naive-mpc", NaiveMPCEngine, aliases=("naive", "monolithic"))
