"""Engine backends: one protocol, four implementations.

An :class:`Engine` turns ``(program, graph, iterations, config)`` into a
:class:`~repro.api.result.RunResult`. The four built-ins wrap the seed's
previously-disjoint entry points:

=============  ==========================================================
``plaintext``  :meth:`PlaintextEngine.run_float` — the float oracle
``fixed``      :meth:`PlaintextEngine.run_fixed` — clear circuit eval
``secure``     :meth:`SecureEngine.run` — the full DStress protocol
``naive-mpc``  the §5.5 monolithic-MPC baseline (computes the same
               function centrally, projects the monolithic GMW cost)
``sharded``    float mode partitioned across worker processes within one
               run (:class:`~repro.api.sharded.ShardedEngine`)
``async``      float mode as per-vertex asyncio pipelines over a
               transport bus, overlapping computation with deliveries
               (:class:`~repro.api.async_engine.AsyncEngine`)
``secure-async``  the full protocol with per-block OT batches dispatched
               over the transport bus, bit-identical to ``secure``
               (:class:`~repro.api.secure_async.SecureAsyncEngine`)
=============  ==========================================================

All built-ins compute the *same function* pre-noise on the same graph
(the engine-parity tests assert it), so sweeps can trade fidelity for
speed by swapping one string. New backends (remote, ...) implement
:class:`Engine` and call :func:`~repro.api.registry.register_engine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.api.registry import register_engine
from repro.api.result import RunResult
from repro.core.config import DStressConfig
from repro.core.engine import PlaintextEngine, PlaintextRun
from repro.core.graph import DistributedGraph
from repro.core.program import VertexProgram
from repro.core.secure_engine import SecureEngine
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError
from repro.obs.clock import now as clock_now
from repro.obs.metrics import record_run
from repro.obs.trace import current_recorder
from repro.privacy.budget import PrivacyAccountant
from repro.privacy.mechanisms import two_sided_geometric_sample
from repro.simulation.naive_baseline import estimate_monolithic_seconds
from repro.simulation.netsim import TrafficMeter, meter_from_rounds

__all__ = [
    "Engine",
    "PlaintextFloatEngine",
    "PlaintextFixedEngine",
    "SecureDStressEngine",
    "NaiveMPCEngine",
    "validate_intra_run_width",
]


def validate_intra_run_width(width, owner: str) -> int:
    """The one rule for what counts as a valid intra-run width.

    Shared by :attr:`Engine.intra_run_width` and the batch planner so the
    two layers can never drift on the rule or the error text.
    """
    if isinstance(width, bool) or not isinstance(width, int) or width < 1:
        raise ConfigurationError(
            f"engine {owner!r} declared an invalid shard width / task "
            f"concurrency {width!r}; intra-run width must be a positive int"
        )
    return width


class Engine(ABC):
    """One way of executing a vertex program over a distributed graph."""

    #: Registry name (also stamped on every result this engine produces).
    name: str = "abstract"
    #: Whether :meth:`execute` noises and releases an output — i.e. whether
    #: a run through this engine consumes differential-privacy budget. The
    #: session and batch layers charge the shared accountant based on this.
    releases_output: bool = False

    @abstractmethod
    def execute(
        self,
        program: VertexProgram,
        graph: DistributedGraph,
        iterations: int,
        config: DStressConfig,
        accountant: Optional[PrivacyAccountant] = None,
    ) -> RunResult:
        """Run ``program`` for ``iterations`` rounds and normalize the result."""

    @property
    def intra_run_width(self) -> int:
        """Widest parallelism one run of this engine deploys internally.

        The batch layer multiplies this into its worker planning so
        ``workers x width`` never oversubscribes the CPU budget. The
        default recognizes the two conventional declarations — process
        ``shards`` (sharded) and asyncio ``tasks`` (async) — and raises
        on an invalid declared value, so every caller (not just the
        batch planner) gets a loud per-engine error rather than a
        nonsensical width. Engines whose ``shards``/``tasks`` attributes
        mean something else should override this property.
        """
        declared = []
        for attr in ("shards", "tasks"):
            value = getattr(self, attr, None)
            if value is None:
                continue
            # any declared value is validated — a non-int declaration
            # (tasks="16") silently meaning width 1 would hide the
            # misdeclaration and defeat the oversubscription cap
            declared.append(validate_intra_run_width(value, self.name))
        return max(declared) if declared else 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class PlaintextFloatEngine(Engine):
    """The float reference semantics (what a trusted regulator computes)."""

    name = "plaintext"

    def execute(self, program, graph, iterations, config, accountant=None):
        with current_recorder().span("run", engine=self.name, program=program.name):
            started = clock_now()
            run = PlaintextEngine(program).run_float(graph, iterations)
            return _from_plaintext(
                self.name, program, run, iterations, started, graph=graph
            )


class PlaintextFixedEngine(Engine):
    """Clear evaluation of the MPC circuits — the secure engine's oracle."""

    name = "fixed"

    def execute(self, program, graph, iterations, config, accountant=None):
        with current_recorder().span("run", engine=self.name, program=program.name):
            started = clock_now()
            run = PlaintextEngine(program).run_fixed(graph, iterations)
            return _from_plaintext(
                self.name, program, run, iterations, started, graph=graph
            )


def _from_plaintext(
    engine_name: str,
    program: VertexProgram,
    run: PlaintextRun,
    iterations: int,
    started: float,
    graph: Optional[DistributedGraph] = None,
    record: bool = True,
) -> RunResult:
    """Normalize a PlaintextRun, carrying its phase timings and — when the
    graph is known — a synthesized per-link traffic meter, so every
    engine's RunResult exposes the same telemetry shape.

    ``record=False`` defers the ambient-recorder absorption to callers
    (async/sharded) that still attach transport extras afterwards.
    """
    traffic = None
    if graph is not None:
        # round-synchronous byte profile is exact arithmetic: one
        # fixed-point message per directed edge per routed round
        traffic = meter_from_rounds(graph, iterations, program.fmt.total_bits / 8.0)
    result = RunResult(
        engine=engine_name,
        program=program.name,
        aggregate=run.aggregate,
        trajectory=list(run.trajectory),
        iterations=iterations,
        wall_seconds=clock_now() - started,
        traffic=traffic,
        phases=run.phases,
        final_states=run.final_states,
        raw=run,
    )
    if record:
        record_run(result)
    return result


class SecureDStressEngine(Engine):
    """The full DStress protocol stack (§3.3–§3.6).

    ``backend="bitsliced"`` swaps the per-gate GMW loop for the numpy
    lane evaluator with its offline/online phase split
    (:mod:`repro.mpc.bitslice`); released outputs and metered traffic are
    bit-identical to the default ``"scalar"`` backend.
    """

    name = "secure"
    releases_output = True

    def __init__(self, backend: str = "scalar") -> None:
        if backend not in ("scalar", "bitsliced"):
            raise ConfigurationError(
                f"engine 'secure' has no backend {backend!r}; "
                "choose 'scalar' or 'bitsliced'"
            )
        self.backend = backend

    def execute(self, program, graph, iterations, config, accountant=None):
        with current_recorder().span("run", engine=self.name, program=program.name):
            started = clock_now()
            result = SecureEngine(program, config, backend=self.backend).run(
                graph, iterations, accountant=accountant
            )
            normalized = RunResult(
                engine=self.name,
                program=program.name,
                aggregate=result.noisy_output,
                trajectory=list(result.trajectory),
                iterations=iterations,
                wall_seconds=clock_now() - started,
                pre_noise_aggregate=result.pre_noise_output,
                noise_raw=result.noise_raw,
                epsilon=config.output_epsilon,
                traffic=result.traffic,
                phases=result.phases,
                extras={
                    "transfer_count": float(result.transfer_count),
                    "gmw_ot_count": float(result.gmw_ot_count),
                    "aggregation_levels": float(result.aggregation_levels),
                },
                raw=result,
            )
            record_run(normalized)
            return normalized


class NaiveMPCEngine(Engine):
    """The §5.5 monolithic-MPC strawman, as an engine backend.

    The baseline computes the *same* DP release as DStress, just as one
    giant circuit among all participants — which is exactly why the paper
    rejects it: the cost is O(N^3) per iteration. Running that circuit for
    real is infeasible beyond a handful of banks even in the paper's
    Wysteria prototype, so this adapter does what §5.5 does:

    * computes the aggregate centrally (the monolithic circuit's output
      equals the reference semantics) and noises it with the same
      two-sided geometric mechanism the DStress aggregation block samples
      in MPC;
    * measures *real* GMW matrix multiplies at small N, fits the cubic,
      and reports the projected monolithic runtime for this graph in
      ``extras["projected_mpc_seconds"]`` (the "287 years" number).

    Set ``estimate_cost=False`` to skip the GMW calibration when only the
    release value matters.
    """

    name = "naive-mpc"
    releases_output = True

    def __init__(
        self,
        estimate_cost: bool = True,
        sample_sizes: Sequence[int] = (2, 3),
        max_parties: int = 3,
    ) -> None:
        self.estimate_cost = estimate_cost
        self.sample_sizes = tuple(sample_sizes)
        self.max_parties = max_parties

    def execute(self, program, graph, iterations, config, accountant=None):
        with current_recorder().span("run", engine=self.name, program=program.name):
            started = clock_now()
            if accountant is not None:
                accountant.charge(
                    config.output_epsilon, label=f"{program.name}-naive-release"
                )
            run = PlaintextEngine(program).run_fixed(graph, iterations)
            fmt = program.fmt
            rng = DeterministicRNG(config.seed).fork("naive-output-noise")
            noise_raw = two_sided_geometric_sample(
                config.noise_alpha_for(program.sensitivity), rng
            )
            extras = {}
            if self.estimate_cost:
                parties = min(config.block_size, self.max_parties)
                projected, fit = estimate_monolithic_seconds(
                    graph.num_vertices,
                    iterations,
                    fmt,
                    parties=parties,
                    sample_sizes=self.sample_sizes,
                )
                extras["projected_mpc_seconds"] = projected
                extras["fit_coefficient"] = fit.coefficient
            result = RunResult(
                engine=self.name,
                program=program.name,
                aggregate=run.aggregate + noise_raw * fmt.resolution,
                trajectory=list(run.trajectory),
                iterations=iterations,
                wall_seconds=clock_now() - started,
                pre_noise_aggregate=run.aggregate,
                noise_raw=noise_raw,
                epsilon=config.output_epsilon,
                # the monolithic baseline computes centrally: no per-link
                # round traffic exists, but the meter is present (empty)
                # so every engine's RunResult exposes the same key scheme
                traffic=TrafficMeter(),
                phases=run.phases,
                final_states=run.final_states,
                extras=extras,
                raw=run,
            )
            record_run(result)
            return result


register_engine("plaintext", PlaintextFloatEngine, aliases=("float", "clear"))
register_engine("fixed", PlaintextFixedEngine, aliases=("plaintext-fixed",))
register_engine("secure", SecureDStressEngine, aliases=("dstress",))
register_engine("naive-mpc", NaiveMPCEngine, aliases=("naive", "monolithic"))
