"""Shared process-pool plumbing for the batch and sharded layers.

Two layers of the API fork worker processes: :func:`repro.api.batch.run_batch`
fans *scenarios* across a pool, and the sharded engine fans *vertex shards
of one run* across a pool. Both kinds of pool are planned and created
here so their interaction is governed in one place:

* **No nested pools.** ``multiprocessing`` pool workers are daemonic and
  may not fork children, so a sharded run scheduled inside a batch worker
  must not try to open its own pool. :func:`in_worker_process` detects
  that situation; the sharded engine then computes its shards inline
  (sequentially in the worker — same partition, same arithmetic, so the
  result is bit-identical).
* **No oversubscription.** When a batch contains sharded scenarios, the
  useful parallelism is ``workers x shards``; :func:`plan_workers` caps
  the scenario-level worker count so that product stays within the CPU
  budget instead of stacking two pools' worth of processes.
* **One fork policy.** Everything uses the fork start method: payloads
  stay picklable-small, and engines inherit read-only program/graph state
  instead of re-importing it.
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import get_context
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "cpu_budget",
    "in_worker_process",
    "plan_workers",
    "create_pool",
    "map_in_pool",
]


def cpu_budget() -> int:
    """Usable CPU count (at least 1; the fallback when undetectable)."""
    return os.cpu_count() or 1


def in_worker_process() -> bool:
    """Whether we are inside a pool worker (daemonic ⇒ cannot fork again)."""
    return multiprocessing.current_process().daemon


def plan_workers(requested: int, num_tasks: int, shard_width: int = 1) -> int:
    """Effective worker count for a task-level pool.

    ``requested`` is bounded by the number of tasks (idle workers are
    pointless). ``shard_width > 1`` signals that the tasks would *like*
    to fork shard pools of that width; since shard pools inside a pool
    worker always degrade to inline execution (daemonic workers cannot
    fork), each worker is one process either way — so the only cap worth
    paying for is the CPU budget: never stack more sharded-scenario
    workers than CPUs, and let a serial batch (``effective == 1``) keep
    the parent's full shard pool. Live processes therefore never exceed
    ``max(cpu_budget, shard_width)``. ``shard_width == 1`` keeps the
    historical batch behavior: the caller's worker count is honored even
    beyond the CPU count (scenario workers are frequently I/O-idle in
    simulation).
    """
    if requested < 1:
        raise ConfigurationError("workers must be at least 1")
    if shard_width < 1:
        raise ConfigurationError("shard width must be at least 1")
    effective = min(requested, max(1, num_tasks))
    if shard_width > 1:
        effective = max(1, min(effective, cpu_budget()))
    return effective


def create_pool(
    processes: int,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
):
    """A fork-context pool; the caller owns its lifetime (use ``with``)."""
    if processes < 1:
        raise ConfigurationError("a pool needs at least one process")
    if in_worker_process():
        raise ConfigurationError(
            "cannot open a process pool inside a pool worker; run the "
            "nested stage inline instead (see repro.api.pool docs)"
        )
    ctx = get_context("fork")
    return ctx.Pool(processes=processes, initializer=initializer, initargs=initargs)


def map_in_pool(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int,
) -> List[Any]:
    """Map ``fn`` over ``payloads`` preserving input order.

    ``workers == 1`` (or a single payload) runs inline — handy under
    debuggers, on platforms without fork, and inside pool workers where
    forking again is forbidden.
    """
    items = list(payloads)
    if workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with create_pool(min(workers, len(items))) as pool:
        return pool.map(fn, items)
