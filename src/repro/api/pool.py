"""Shared process-pool plumbing for the batch and sharded layers.

Two layers of the API fork worker processes: :func:`repro.api.batch.run_batch`
fans *scenarios* across a pool, and the sharded engine fans *vertex shards
of one run* across a pool. Both kinds of pool are planned and created
here so their interaction is governed in one place:

* **No nested pools.** ``multiprocessing`` pool workers are daemonic and
  may not fork children, so a sharded run scheduled inside a batch worker
  must not try to open its own pool. :func:`in_worker_process` detects
  that situation; the sharded engine then computes its shards inline
  (sequentially in the worker — same partition, same arithmetic, so the
  result is bit-identical).
* **No oversubscription.** When a batch contains scenarios with intra-run
  parallelism — process shards (``sharded``) or asyncio task concurrency
  (``async``) — the useful parallelism is ``workers x width``;
  :func:`plan_workers` caps the scenario-level worker count so that
  product stays within the CPU budget instead of stacking two layers'
  worth of concurrency.
* **One fork policy.** Everything uses the fork start method: payloads
  stay picklable-small, and engines inherit read-only program/graph state
  instead of re-importing it.
* **No env leakage.** Fork inheritance copies the parent's environment
  wholesale, so a worker would silently see whatever ``REPRO_*`` knobs
  the *host* process happened to carry — ``REPRO_BENCH_SMOKE`` from a
  benchmark harness, ``REPRO_TCP_*`` from a cluster launcher, anything a
  server front-end was started under. Engine behavior must come from the
  payload (config/transport instances), never from ambient host state,
  so every pool worker is scrubbed of ``REPRO_*`` variables at
  initialization; callers that *intend* to pass one through name it in
  an explicit ``env_allowlist``. Inline execution (``workers == 1``)
  runs in the caller's own process and is never scrubbed.
"""

from __future__ import annotations

import multiprocessing
import os
from functools import partial
from multiprocessing import get_context
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "cpu_budget",
    "in_worker_process",
    "plan_workers",
    "scrub_repro_env",
    "create_pool",
    "map_in_pool",
    "iter_in_pool",
]

#: Prefix of every environment knob this library reads. Worker processes
#: are scrubbed of it so host env cannot steer forked engine runs.
REPRO_ENV_PREFIX = "REPRO_"


def scrub_repro_env(allowlist: Sequence[str] = ()) -> List[str]:
    """Delete every ``REPRO_*`` variable from ``os.environ`` except those
    named in ``allowlist``; returns the names removed (for audits/tests).

    Called in freshly-forked workers (pool initializers, cluster
    children) so an engine process starts from an explicit environment:
    whatever the payload carries, plus only the allowlisted variables.
    """
    keep = set(allowlist)
    removed = []
    for key in list(os.environ):
        if key.startswith(REPRO_ENV_PREFIX) and key not in keep:
            del os.environ[key]
            removed.append(key)
    return removed


def _scrubbing_initializer(
    allowlist: Tuple[str, ...],
    initializer: Optional[Callable[..., None]],
    initargs: Tuple[Any, ...],
) -> None:
    """Worker bootstrap: scrub first, then the caller's initializer.
    Module-level so it survives pickling under any start method."""
    scrub_repro_env(allowlist)
    if initializer is not None:
        initializer(*initargs)


def cpu_budget() -> int:
    """Usable CPU count (at least 1; the fallback when undetectable)."""
    return os.cpu_count() or 1


def in_worker_process() -> bool:
    """Whether we are inside a pool worker (daemonic ⇒ cannot fork again)."""
    return multiprocessing.current_process().daemon


def plan_workers(requested: int, num_tasks: int, shard_width: int = 1) -> int:
    """Effective worker count for a task-level pool.

    ``requested`` is bounded by the number of tasks (idle workers are
    pointless). ``shard_width`` is the widest intra-run parallelism any
    task would *like* to deploy — process shards for the sharded engine,
    or asyncio task concurrency for the async engine. (An event loop is
    single-threaded, so the task-width cap is deliberately conservative:
    it bounds the *declared* concurrency budget of the batch rather than
    measured CPU pressure, keeping wide-async and wide-sharded batches
    under one planning rule.) Shard
    pools inside a pool worker always degrade to inline execution
    (daemonic workers cannot fork), so each worker is one process either
    way — the only cap worth paying for is the CPU budget: never stack
    more wide-scenario workers than CPUs, and let a serial batch
    (``effective == 1``) keep the parent's full intra-run width. Live
    processes therefore never exceed ``max(cpu_budget, shard_width)``.
    ``shard_width == 1`` keeps the historical batch behavior: the
    caller's worker count is honored even beyond the CPU count (scenario
    workers are frequently I/O-idle in simulation).
    """
    if requested < 1:
        raise ConfigurationError("workers must be at least 1")
    if shard_width < 1:
        raise ConfigurationError("shard width must be at least 1")
    effective = min(requested, max(1, num_tasks))
    if shard_width > 1:
        effective = max(1, min(effective, cpu_budget()))
    return effective


def create_pool(
    processes: int,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    env_allowlist: Sequence[str] = (),
):
    """A fork-context pool; the caller owns its lifetime (use ``with``).

    Every worker is scrubbed of ``REPRO_*`` environment variables before
    the caller's ``initializer`` runs; name variables in
    ``env_allowlist`` to let them through deliberately.
    """
    if processes < 1:
        raise ConfigurationError("a pool needs at least one process")
    if in_worker_process():
        raise ConfigurationError(
            "cannot open a process pool inside a pool worker; run the "
            "nested stage inline instead (see repro.api.pool docs)"
        )
    ctx = get_context("fork")
    return ctx.Pool(
        processes=processes,
        initializer=_scrubbing_initializer,
        initargs=(tuple(env_allowlist), initializer, initargs),
    )


def map_in_pool(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int,
    env_allowlist: Sequence[str] = (),
) -> List[Any]:
    """Map ``fn`` over ``payloads`` preserving input order.

    ``workers == 1`` (or a single payload) runs inline — handy under
    debuggers, on platforms without fork, and inside pool workers where
    forking again is forbidden. Forked workers are env-scrubbed (see
    :func:`scrub_repro_env`); the inline path is not (it *is* the
    caller's process).
    """
    items = list(payloads)
    if workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with create_pool(min(workers, len(items)), env_allowlist=env_allowlist) as pool:
        return pool.map(fn, items)


def _indexed_apply(fn: Callable[[Any], Any], pair: Tuple[int, Any]) -> Tuple[int, Any]:
    """Worker shim for :func:`iter_in_pool`: tag each result with its
    input index so streaming consumers can reassociate out-of-order
    completions. Module-level so it pickles."""
    index, item = pair
    return index, fn(item)


def iter_in_pool(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int,
    env_allowlist: Sequence[str] = (),
):
    """Yield ``(input_index, fn(payload))`` pairs as workers finish.

    The streaming sibling of :func:`map_in_pool`: no barrier — each
    result is yielded the moment its worker completes, in *completion*
    order, tagged with the payload's input index. ``workers == 1`` (or a
    single payload) runs inline, yielding in input order.

    Unlike a plain generator function, the pool is created and its tasks
    dispatched *at call time*, so workers compute while the caller does
    other things (e.g. streams cache hits) before draining the returned
    iterator. The pool is torn down when the iterator is exhausted or
    closed.
    """
    items = list(payloads)
    if workers == 1 or len(items) <= 1:

        def _inline():
            for index, item in enumerate(items):
                yield index, fn(item)

        return _inline()

    pool = create_pool(min(workers, len(items)), env_allowlist=env_allowlist)
    # imap_unordered dispatches eagerly: workers start on the payloads now
    results = pool.imap_unordered(partial(_indexed_apply, fn), list(enumerate(items)))

    def _drain():
        exhausted = False
        try:
            yield None  # priming point (consumed below): arms the finally
            yield from results
            exhausted = True
        finally:
            # clean exhaustion closes the pool and lets workers exit on
            # their own (atexit handlers and all); terminate() SIGTERMs
            # them, which could catch user-supplied engine code mid-write
            # to whatever external state it holds — needless on the happy
            # path, so it is reserved for abandonment (close()/break/GC
            # mid-stream), where undelivered results are discarded anyway
            if exhausted:
                pool.close()
            else:
                pool.terminate()
            pool.join()

    # enter the generator before handing it out: close() on an unstarted
    # generator skips its body — and with it the finally that owns the
    # pool teardown — so an abandonment before the first result would
    # leave teardown to GC finalizers instead of happening right away
    drain = _drain()
    next(drain)
    return drain
