"""String registries behind the :class:`~repro.api.session.StressTest` facade.

Two registries live here:

* **engines** — maps names like ``"secure"`` to factories producing
  :class:`~repro.api.engines.Engine` backends;
* **programs** — maps names like ``"eisenberg-noe"`` to the vertex-program
  factory *and* the matching graph builder (each model reads a different
  slice of the :class:`~repro.finance.network.FinancialNetwork`).

Both support aliases and are open for extension: third-party backends
register themselves with :func:`register_engine` and immediately become
addressable from ``StressTest(...).engine("my-backend")`` and from batch
scenarios. Engine factories take constructor options through
:func:`get_engine` (``get_engine("async", tasks=8, transport="wan")``,
``get_engine("secure-async", overlap=False)``), which is how session and
scenario engine options reach the backend.
Lookup errors always list what *is* registered, so a typo is a
one-glance fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.graph import DistributedGraph
from repro.core.program import VertexProgram
from repro.exceptions import ConfigurationError
from repro.finance.network import FinancialNetwork
from repro.mpc.fixedpoint import FixedPointFormat

__all__ = [
    "ProgramEntry",
    "register_engine",
    "get_engine",
    "available_engines",
    "register_program",
    "get_program",
    "available_programs",
]


# ------------------------------------------------------------------ engines --

#: name -> factory; aliases resolve to the canonical name first.
_ENGINE_FACTORIES: Dict[str, Callable[[], "Engine"]] = {}
_ENGINE_ALIASES: Dict[str, str] = {}


def register_engine(
    name: str,
    factory: Callable[[], "Engine"],
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> None:
    """Make an engine backend addressable by name (and aliases).

    All names are validated before anything is written, so a refused
    registration leaves the registry untouched; ``replace=True`` also
    evicts stale alias entries for the names being (re)registered.
    """
    if not replace:
        for candidate in (name, *aliases):
            if candidate in _ENGINE_FACTORIES or candidate in _ENGINE_ALIASES:
                raise ConfigurationError(
                    f"engine name {candidate!r} is already registered"
                )
    for candidate in (name, *aliases):
        _ENGINE_ALIASES.pop(candidate, None)
    _ENGINE_FACTORIES[name] = factory
    for alias in aliases:
        _ENGINE_ALIASES[alias] = name


def get_engine(name: str, **options) -> "Engine":
    """Instantiate the backend registered under ``name`` (or an alias).

    ``options`` are forwarded to the factory — e.g.
    ``get_engine("sharded", shards=4)``. A factory that does not accept
    the given options raises a :class:`ConfigurationError` naming them.
    """
    # A directly-registered name always wins over an alias of the same
    # spelling (relevant after replace=True re-registrations).
    canonical = name if name in _ENGINE_FACTORIES else _ENGINE_ALIASES.get(name, name)
    try:
        factory = _ENGINE_FACTORIES[canonical]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; registered engines: "
            + ", ".join(available_engines())
        ) from None
    try:
        return factory(**options)
    except TypeError as exc:
        if not options:
            raise  # a factory bug, not an option mismatch — don't mislabel it
        raise ConfigurationError(
            f"engine {name!r} rejected options {sorted(options)}: {exc}"
        ) from exc


def available_engines() -> List[str]:
    """Canonical names of all registered engine backends."""
    return sorted(_ENGINE_FACTORIES)


# ----------------------------------------------------------------- programs --


@dataclass(frozen=True)
class ProgramEntry:
    """How the facade materializes one vertex program.

    ``factory`` builds the program for a fixed-point format (so program
    and config formats always agree); ``graph_builder`` derives the
    :class:`DistributedGraph` the program runs over from a financial
    network and an optional degree bound.
    """

    name: str
    factory: Callable[[FixedPointFormat], VertexProgram]
    graph_builder: Callable[[FinancialNetwork, Optional[int]], DistributedGraph]
    description: str = ""
    aliases: Tuple[str, ...] = field(default=())


_PROGRAMS: Dict[str, ProgramEntry] = {}
_PROGRAM_ALIASES: Dict[str, str] = {}


def register_program(entry: ProgramEntry, replace: bool = False) -> None:
    """Make a vertex program addressable by name (and aliases).

    Same guarantees as :func:`register_engine`: validate-then-write, and
    ``replace=True`` evicts stale aliases for the names being registered.
    """
    if not replace:
        for candidate in (entry.name, *entry.aliases):
            if candidate in _PROGRAMS or candidate in _PROGRAM_ALIASES:
                raise ConfigurationError(
                    f"program name {candidate!r} is already registered"
                )
    for candidate in (entry.name, *entry.aliases):
        _PROGRAM_ALIASES.pop(candidate, None)
    _PROGRAMS[entry.name] = entry
    for alias in entry.aliases:
        _PROGRAM_ALIASES[alias] = entry.name


def get_program(name: str) -> ProgramEntry:
    """Look up the program entry registered under ``name`` (or an alias)."""
    canonical = name if name in _PROGRAMS else _PROGRAM_ALIASES.get(name, name)
    try:
        return _PROGRAMS[canonical]
    except KeyError:
        raise ConfigurationError(
            f"unknown program {name!r}; registered programs: "
            + ", ".join(available_programs())
        ) from None


def available_programs() -> List[str]:
    """Canonical names of all registered vertex programs."""
    return sorted(_PROGRAMS)


def _register_builtin_programs() -> None:
    from repro.finance.eisenberg_noe import EisenbergNoeProgram
    from repro.finance.elliott_golub_jackson import ElliottGolubJacksonProgram

    register_program(
        ProgramEntry(
            name="eisenberg-noe",
            factory=lambda fmt: EisenbergNoeProgram(fmt),
            graph_builder=lambda net, bound: net.to_en_graph(bound),
            description="Eisenberg-Noe clearing: total dollar shortfall (Fig. 2a)",
            aliases=("en", "eisenberg_noe"),
        )
    )
    register_program(
        ProgramEntry(
            name="elliott-golub-jackson",
            factory=lambda fmt: ElliottGolubJacksonProgram(fmt),
            graph_builder=lambda net, bound: net.to_egj_graph(bound),
            description="Elliott-Golub-Jackson equity contagion (Fig. 2b)",
            aliases=("egj", "elliott_golub_jackson"),
        )
    )


_register_builtin_programs()
