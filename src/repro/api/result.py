"""The unified result type every engine backend returns.

The seed codebase grew four incompatible result shapes —
:class:`~repro.core.engine.PlaintextRun` (float and fixed modes),
:class:`~repro.core.secure_engine.SecureRunResult` and the naive-baseline
fit tuple — which made it impossible to write scenario sweeps that swap
backends. :class:`RunResult` is the common denominator: the headline
aggregate, the convergence trajectory, iteration/timing data, and the
secure-only extras (traffic, phases, epsilon) as optionals. The
engine-native result stays reachable through ``raw`` for callers that
need backend-specific detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.convergence import TrajectoryConvergence
from repro.core.lifecycle import ReleaseRecord
from repro.simulation.netsim import PhaseTimer, TrafficMeter

__all__ = ["RunResult"]


@dataclass
class RunResult(TrajectoryConvergence):
    """What one engine execution produced, in engine-independent shape.

    Attributes
    ----------
    engine / program:
        Registry names of the backend and vertex program that ran.
    aggregate:
        The headline number. For releasing engines (``secure``,
        ``naive-mpc``) this is the *noised* output — the only value a real
        deployment would publish; for plaintext engines it is exact.
    trajectory:
        Aggregate of the designated register after each computation step.
        For the secure engine this is a simulation-only diagnostic
        reconstructed by the harness.
    iterations:
        Computation+communication rounds executed (the resolved value when
        the session ran with ``iterations="auto"``).
    wall_seconds:
        Wall-clock time of the engine execution.
    pre_noise_aggregate:
        Exact aggregate before output noising (releasing engines only;
        simulation-only — no participant learns it).
    noise_raw:
        Applied output noise in raw fixed-point LSBs (releasing engines).
    epsilon:
        Differential-privacy budget consumed by this release, ``None`` for
        engines that release nothing.
    traffic / phases:
        Per-node traffic metering and per-phase timings (secure engine).
    final_states:
        Decoded per-vertex states (plaintext engines; the secure engine
        never reconstructs them).
    extras:
        Backend-specific scalars, e.g. the naive baseline's
        ``projected_mpc_seconds`` extrapolation.
    releases:
        Per-window :class:`~repro.core.lifecycle.ReleaseRecord` entries
        for releasing runs driven through the shared lifecycle. A
        one-shot release has a single record; ``release="windowed"``
        continual release has one per window. The headline
        ``aggregate``/``noise_raw``/``epsilon`` fields describe the last
        (cumulative) release.
    raw:
        The engine-native result object, untouched.
    """

    engine: str
    program: str
    aggregate: float
    trajectory: List[float]
    iterations: int
    wall_seconds: float
    pre_noise_aggregate: Optional[float] = None
    noise_raw: Optional[int] = None
    epsilon: Optional[float] = None
    traffic: Optional[TrafficMeter] = None
    phases: Optional[PhaseTimer] = None
    final_states: Optional[Dict[int, Dict[str, float]]] = None
    extras: Dict[str, float] = field(default_factory=dict)
    releases: Optional[List[ReleaseRecord]] = None
    raw: Any = None

    @property
    def exact_aggregate(self) -> float:
        """The pre-noise aggregate when one exists, else ``aggregate``.

        This is the value engine-parity checks compare: every backend must
        compute the same function before output noising.
        """
        if self.pre_noise_aggregate is not None:
            return self.pre_noise_aggregate
        return self.aggregate

    @property
    def releases_output(self) -> bool:
        """Whether this run consumed privacy budget (noised its output)."""
        return self.epsilon is not None

    def export(self, recorder: Any = None) -> Dict[str, Any]:
        """Versioned JSON-safe export (``dstress.obs.run`` schema).

        Pass a :class:`~repro.obs.trace.TraceRecorder` to embed its spans
        and metrics alongside the run's own telemetry; the schema is
        documented (and append-only) in DESIGN.md "Observability".
        """
        from repro.obs.export import export_run

        return export_run(self, recorder=recorder)

    def summary(self) -> str:
        """One-line human-readable digest (used by examples and the CLI
        of future backends)."""
        parts = [
            f"{self.program} via {self.engine}:",
            f"aggregate={self.aggregate:.4f}",
            f"iterations={self.iterations}",
            f"wall={self.wall_seconds:.2f}s",
        ]
        if self.epsilon is not None:
            parts.append(f"epsilon={self.epsilon:g}")
        converged = self.converged_at()
        if converged is not None:
            parts.append(f"converged@{converged}")
        return " ".join(parts)
