"""The secure-async engine: DStress GMW rounds over a transport bus.

The paper's §6 wall-clock numbers are dominated by transfer I/O — a
secure round's cost is the wire time of its OT-extension batches and §3.5
transfer aggregates, not the local crypto. The sequential
``engine="secure"`` backend computes everything in a straight line, so it
cannot model that claim. This backend runs the *same* protocol
(:meth:`repro.core.secure_engine.SecureEngine.run_async`) with every
block batch dispatched through a
:class:`~repro.core.transport.Transport`: as soon as a block's GMW
evaluation finishes, its per-link OT bytes go on the bus as an asyncio
task, and the next block's evaluation proceeds while those bytes are
still in flight on a simulated WAN.

Engine options (all reachable through the registry and batch scenarios)::

    StressTest(net).program("en").engine("secure-async").run()
    .engine("secure-async", tasks=8)           # bound in-flight batches
    .engine("secure-async", transport="wan")   # metered simulated WAN
    .engine("secure-async", transport=bus)     # any Transport instance
    .engine("secure-async", overlap=False)     # sequential-over-the-bus
                                               # baseline (benchmark foil)
    .engine("secure-async", backend="bitsliced")  # numpy lane GMW with
                                               # offline/online split

Determinism contract: released outputs are **bit-identical** to
``engine="secure"`` under the same seeds — every
:meth:`~repro.crypto.rng.DeterministicRNG.fork` consumes parent stream,
so the async driver performs the crypto in the sequential transcript
order and overlaps only the wire time, which never touches a payload.
The parity matrix asserts this cell by cell. ``result.traffic`` stays
the protocol meter (per-node *and* per-link, OT-extension bytes
included); a WAN bus's own delay accounting lands in
``extras["simulated_seconds"]`` / ``extras["wan_bytes"]``.
"""

from __future__ import annotations

from typing import Union

from repro.api.async_engine import run_coroutine
from repro.api.engines import Engine, validate_intra_run_width
from repro.api.registry import register_engine
from repro.api.result import RunResult
from repro.core.secure_engine import SecureEngine
from repro.exceptions import ConfigurationError
from repro.core.transport import (
    Transport,
    attach_wire_extras,
    check_transport_spec,
    transport_from_spec,
    wan_meter_snapshot,
)
from repro.obs.clock import now as clock_now
from repro.obs.metrics import record_run
from repro.obs.trace import current_recorder

__all__ = ["SecureAsyncEngine"]


class SecureAsyncEngine(Engine):
    """The full DStress protocol with rounds scheduled over a transport.

    ``tasks`` bounds how many block batches may be in flight at once;
    ``transport`` picks the bus (``"memory"``, ``"wan"``, or a
    :class:`~repro.core.transport.Transport` instance); ``overlap=False``
    awaits every link delivery one at a time — the honest sequential
    baseline ``benchmarks/bench_secure_async.py`` measures the overlap
    against.
    """

    name = "secure-async"
    releases_output = True

    def __init__(
        self,
        tasks: int = 4,
        transport: Union[str, Transport] = "memory",
        overlap: bool = True,
        backend: str = "scalar",
    ) -> None:
        if backend not in ("scalar", "bitsliced"):
            raise ConfigurationError(
                f"engine 'secure-async' has no backend {backend!r}; "
                "choose 'scalar' or 'bitsliced'"
            )
        self.tasks = validate_intra_run_width(tasks, self.name)
        self.transport = check_transport_spec(transport)
        self.overlap = bool(overlap)
        self.backend = backend

    @property
    def intra_run_width(self) -> int:
        """In-flight batch concurrency when overlapping, 1 for the
        sequential schedule — what the batch planner budgets for."""
        return self.tasks if self.overlap else 1

    def execute(self, program, graph, iterations, config, accountant=None):
        with current_recorder().span("run", engine=self.name, program=program.name):
            return self._execute(program, graph, iterations, config, accountant)

    def _execute(self, program, graph, iterations, config, accountant=None):
        started = clock_now()
        bus = transport_from_spec(self.transport, config)
        # A caller-supplied Transport instance may be reused across runs;
        # snapshot its counters so the extras below report *this* run.
        before = wan_meter_snapshot(bus)

        engine = SecureEngine(program, config, backend=self.backend)
        # as in the async engine: a bus built here from a string spec (a
        # "tcp" mesh with sockets and an io thread) is closed by this run,
        # success or failure; caller-supplied instances stay open
        engine_owned = bus is not self.transport
        try:
            result = run_coroutine(
                engine.run_async(
                    graph,
                    iterations,
                    transport=bus,
                    accountant=accountant,
                    max_tasks=self.tasks,
                    overlap=self.overlap,
                )
            )
        except BaseException as exc:
            if engine_owned:
                bus.close(error=exc)
            raise

        run_result = RunResult(
            engine=self.name,
            program=program.name,
            aggregate=result.noisy_output,
            trajectory=list(result.trajectory),
            iterations=iterations,
            wall_seconds=clock_now() - started,
            pre_noise_aggregate=result.pre_noise_output,
            noise_raw=result.noise_raw,
            epsilon=config.output_epsilon,
            traffic=result.traffic,
            phases=result.phases,
            extras={
                "transfer_count": float(result.transfer_count),
                "gmw_ot_count": float(result.gmw_ot_count),
                "aggregation_levels": float(result.aggregation_levels),
                # effective concurrency, as with the async engine: the
                # sequential schedule keeps one batch in flight no matter
                # what the constructor asked for
                "tasks": float(self.tasks if self.overlap else 1),
                "overlap": 1.0 if self.overlap else 0.0,
            },
            raw=result,
        )
        self._attach_bus_extras(run_result, bus, before)
        attach_wire_extras(run_result, bus)
        if engine_owned:
            bus.close()
        record_run(run_result)
        return run_result

    @staticmethod
    def _attach_bus_extras(run_result: RunResult, bus, before) -> None:
        """Stamp the bus's WAN accounting as per-run deltas.

        Unlike :func:`~repro.core.transport.attach_wan_extras` this keeps
        ``result.traffic`` pointing at the *protocol* meter — the secure
        engine's per-node/per-link accounting (role bytes, exponentiation
        counts, OT-extension links) is strictly richer than the bus's
        delivery log, so the bus contributes only the delay model.
        """
        from repro.core.transport import SimulatedWanTransport, innermost_transport

        bus = innermost_transport(bus)
        if isinstance(bus, SimulatedWanTransport):
            run_result.extras["simulated_seconds"] = bus.simulated_seconds - before[0]
            run_result.extras["wan_bytes"] = bus.meter.total_bytes_sent - before[1]


register_engine(
    "secure-async", SecureAsyncEngine, aliases=("secure-asyncio", "dstress-async")
)
