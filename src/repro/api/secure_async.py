"""The secure-async engine: DStress GMW rounds over a transport bus.

The paper's §6 wall-clock numbers are dominated by transfer I/O — a
secure round's cost is the wire time of its OT-extension batches and §3.5
transfer aggregates, not the local crypto. The sequential
``engine="secure"`` backend computes everything in a straight line, so it
cannot model that claim. This backend runs the *same* protocol
(:meth:`repro.core.secure_engine.SecureEngine.run_async`) with every
block batch dispatched through a
:class:`~repro.core.transport.Transport`: as soon as a block's GMW
evaluation finishes, its per-link OT bytes go on the bus as an asyncio
task, and the next block's evaluation proceeds while those bytes are
still in flight on a simulated WAN.

Engine options (all reachable through the registry and batch scenarios)::

    StressTest(net).program("en").engine("secure-async").run()
    .engine("secure-async", tasks=8)           # bound in-flight batches
    .engine("secure-async", transport="wan")   # metered simulated WAN
    .engine("secure-async", transport=bus)     # any Transport instance
    .engine("secure-async", overlap=False)     # sequential-over-the-bus
                                               # baseline (benchmark foil)
    .engine("secure-async", backend="bitsliced")  # numpy lane GMW with
                                               # offline/online split

Determinism contract: released outputs are **bit-identical** to
``engine="secure"`` under the same seeds — every
:meth:`~repro.crypto.rng.DeterministicRNG.fork` consumes parent stream,
so the async driver performs the crypto in the sequential transcript
order and overlaps only the wire time, which never touches a payload.
The parity matrix asserts this cell by cell. ``result.traffic`` stays
the protocol meter (per-node *and* per-link, OT-extension bytes
included); a WAN bus's own delay accounting lands in
``extras["simulated_seconds"]`` / ``extras["wan_bytes"]``.

Like every backend the engine executes through the shared run lifecycle;
under ``release="windowed"`` each window gets a fresh
:class:`~repro.core.rounds.SecureRoundScheduler` (a window edge is a full
barrier, so no delivery ever spans one) on the bus opened once at setup.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.api.async_engine import run_coroutine
from repro.api.engines import _SecureCore, Engine, validate_intra_run_width
from repro.api.registry import register_engine
from repro.api.result import RunResult
from repro.core.lifecycle import ReleasePolicy, RunState, run_lifecycle
from repro.core.rounds import SecureRoundScheduler
from repro.core.transport import (
    Transport,
    attach_wire_extras,
    check_transport_spec,
    transport_from_spec,
    wan_meter_snapshot,
)
from repro.exceptions import ConfigurationError

__all__ = ["SecureAsyncEngine"]


class _SecureAsyncCore(_SecureCore):
    """:class:`~repro.api.engines._SecureCore` with rounds over a bus.

    Setup, aggregation and noising are the synchronous stages of the
    parent (the aggregation tree is a final local phase, not a round);
    only the window drive differs — each window's block batches dispatch
    through a fresh scheduler over the transport.
    """

    def __init__(self, engine, program, graph, config) -> None:
        super().__init__(engine, program, graph, config)
        self.bus = None
        self.before = None

    def setup(self, state: RunState) -> None:
        self.bus = transport_from_spec(self.engine.transport, self.config)
        # A caller-supplied Transport instance may be reused across runs;
        # snapshot its counters so the extras below report *this* run.
        self.before = wan_meter_snapshot(self.bus)
        self.bus.open(self.graph, fill=None)
        super().setup(state)

    def run_window(self, state: RunState, rounds: int, first: bool) -> None:
        scheduler = SecureRoundScheduler(
            self.bus, max_tasks=self.engine.tasks, overlap=self.engine.overlap
        )
        run_coroutine(self.inner._window_async(self.ctx, scheduler, rounds, first))
        state.trajectory = list(self.ctx.trajectory)

    def finalize(self, state: RunState, started: float) -> RunResult:
        result = super().finalize(state, started)
        result.extras.update(
            {
                # effective concurrency, as with the async engine: the
                # sequential schedule keeps one batch in flight no matter
                # what the constructor asked for
                "tasks": float(self.engine.tasks if self.engine.overlap else 1),
                "overlap": 1.0 if self.engine.overlap else 0.0,
            }
        )
        self.engine._attach_bus_extras(result, self.bus, self.before)
        attach_wire_extras(result, self.bus)
        self.close()
        return result

    def close(self, error: Optional[BaseException] = None) -> None:
        """Close an engine-owned bus (a "tcp" spec owns sockets and an io
        thread); caller-supplied instances stay open across runs."""
        if self.bus is not None and self.bus is not self.engine.transport:
            self.bus.close(error=error)
            self.bus = None


class SecureAsyncEngine(Engine):
    """The full DStress protocol with rounds scheduled over a transport.

    ``tasks`` bounds how many block batches may be in flight at once;
    ``transport`` picks the bus (``"memory"``, ``"wan"``, or a
    :class:`~repro.core.transport.Transport` instance); ``overlap=False``
    awaits every link delivery one at a time — the honest sequential
    baseline ``benchmarks/bench_secure_async.py`` measures the overlap
    against.
    """

    name = "secure-async"
    releases_output = True

    def __init__(
        self,
        tasks: int = 4,
        transport: Union[str, Transport] = "memory",
        overlap: bool = True,
        backend: str = "scalar",
        release: Union[str, ReleasePolicy] = "oneshot",
        windows: Optional[Sequence[int]] = None,
        window_epsilon: Optional[float] = None,
    ) -> None:
        if backend not in ("scalar", "bitsliced"):
            raise ConfigurationError(
                f"engine 'secure-async' has no backend {backend!r}; "
                "choose 'scalar' or 'bitsliced'"
            )
        self.tasks = validate_intra_run_width(tasks, self.name)
        self.transport = check_transport_spec(transport)
        self.overlap = bool(overlap)
        self.backend = backend
        self._configure_release(release, windows, window_epsilon)

    @property
    def intra_run_width(self) -> int:
        """In-flight batch concurrency when overlapping, 1 for the
        sequential schedule — what the batch planner budgets for."""
        return self.tasks if self.overlap else 1

    def execute(self, program, graph, iterations, config, accountant=None):
        core = _SecureAsyncCore(self, program, graph, config)
        try:
            return run_lifecycle(self, core, program, config, iterations, accountant)
        except BaseException as exc:
            core.close(error=exc)
            raise

    @staticmethod
    def _attach_bus_extras(run_result: RunResult, bus, before) -> None:
        """Stamp the bus's WAN accounting as per-run deltas.

        Unlike :func:`~repro.core.transport.attach_wan_extras` this keeps
        ``result.traffic`` pointing at the *protocol* meter — the secure
        engine's per-node/per-link accounting (role bytes, exponentiation
        counts, OT-extension links) is strictly richer than the bus's
        delivery log, so the bus contributes only the delay model.
        """
        from repro.core.transport import SimulatedWanTransport, innermost_transport

        bus = innermost_transport(bus)
        if isinstance(bus, SimulatedWanTransport):
            run_result.extras["simulated_seconds"] = bus.simulated_seconds - before[0]
            run_result.extras["wan_bytes"] = bus.meter.total_bytes_sent - before[1]


register_engine(
    "secure-async", SecureAsyncEngine, aliases=("secure-asyncio", "dstress-async")
)
