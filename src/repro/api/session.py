"""The :class:`StressTest` session — the facade over the whole stack.

One fluent builder replaces the seed's four disjoint entry points::

    from repro import StressTest

    result = (
        StressTest(network)
        .program("eisenberg-noe")
        .engine("secure")
        .preset("demo")
        .privacy(epsilon=0.5)
        .run(iterations="auto")
    )
    print(result.summary())

Everything is resolved lazily at :meth:`StressTest.run` time — strings go
through the registries, the preset and field overrides fold into one
validated :class:`~repro.core.config.DStressConfig`, and
``iterations="auto"`` probes the float reference engine for the round at
which the aggregate trajectory settles (the secure engine needs its
iteration count fixed *before* the protocol starts, because the MPC
transcript shape must be data-independent — so auto mode spends a cheap
plaintext probe to pick it).

Batch execution over many scenarios lives in :mod:`repro.api.batch`;
:meth:`StressTest.run_many` is the entry point.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.api.engines import Engine
from repro.api.registry import available_programs, get_engine, get_program
from repro.api.result import RunResult
from repro.core.config import DStressConfig
from repro.core.convergence import DEFAULT_TOLERANCE, convergence_index
from repro.core.engine import PlaintextEngine
from repro.core.graph import DistributedGraph
from repro.core.program import VertexProgram
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.finance.network import FinancialNetwork
from repro.privacy.budget import PrivacyAccountant

__all__ = ["StressTest", "ResolvedRun"]

#: Iteration-probe cap used by ``iterations="auto"`` when the caller gives
#: no explicit ``max_iterations``: twice the vertex count (Eisenberg-Noe
#: provably settles within N rounds), floored at 4 and capped at 64.
_AUTO_ITERATIONS_CAP = 64


@dataclass
class ResolvedRun:
    """A fully-resolved, picklable execution spec.

    This is what the batch layer ships to worker processes: every string
    has been looked up, the config validated, and the graph materialized.
    ``engine`` is the instantiated backend (all built-ins are stateless
    and picklable).
    """

    label: str
    program: VertexProgram
    graph: DistributedGraph
    engine: Engine
    config: DStressConfig
    iterations: Union[int, str]
    tolerance: float = DEFAULT_TOLERANCE
    max_iterations: Optional[int] = None


class StressTest:
    """Fluent session builder for differentially-private stress tests.

    Every setter returns ``self`` so calls chain; :meth:`clone` snapshots
    the builder so one session can template many scenario variations.
    """

    def __init__(
        self,
        network: Optional[Union[FinancialNetwork, DistributedGraph]] = None,
    ) -> None:
        self._network: Optional[FinancialNetwork] = None
        self._graph: Optional[DistributedGraph] = None
        if isinstance(network, DistributedGraph):
            self._graph = network
        elif network is not None:
            self.network(network)
        self._program_spec: Optional[Union[str, VertexProgram]] = None
        self._engine_spec: Union[str, Engine] = "plaintext"
        self._engine_options: Dict[str, Any] = {}
        self._preset_name: Optional[str] = None
        self._config: Optional[DStressConfig] = None
        self._overrides: Dict[str, Any] = {}
        self._accountant: Optional[PrivacyAccountant] = None
        self._degree_bound: Optional[int] = None

    # ---------------------------------------------------------- builders --

    def network(self, network: FinancialNetwork) -> "StressTest":
        """Set the financial network the stress test runs over."""
        if not isinstance(network, FinancialNetwork):
            raise ConfigurationError(
                f"expected a FinancialNetwork, got {type(network).__name__}; "
                "pass a pre-built DistributedGraph via .graph(...) instead"
            )
        self._network = network
        return self

    def graph(self, graph: DistributedGraph) -> "StressTest":
        """Run over a pre-built graph (skips the program's graph builder)."""
        if not isinstance(graph, DistributedGraph):
            raise ConfigurationError(
                f"expected a DistributedGraph, got {type(graph).__name__}"
            )
        self._graph = graph
        return self

    def program(self, program: Union[str, VertexProgram]) -> "StressTest":
        """Choose the vertex program — a registry name like
        ``"eisenberg-noe"``/``"egj"``, or a :class:`VertexProgram` instance."""
        if not isinstance(program, (str, VertexProgram)):
            raise ConfigurationError(
                "program must be a registry name or a VertexProgram instance; "
                "registered programs: " + ", ".join(available_programs())
            )
        self._program_spec = program
        return self

    def engine(self, engine: Union[str, Engine], **options: Any) -> "StressTest":
        """Choose the backend — ``"plaintext"``, ``"fixed"``, ``"secure"``,
        ``"naive-mpc"``, ``"sharded"``, ``"async"``, ``"secure-async"``,
        or any :class:`Engine` instance.

        Keyword ``options`` configure a registry backend at construction
        time (``.engine("sharded", shards=4)``,
        ``.engine("secure-async", tasks=8, transport="wan")``); they
        replace any options from an earlier ``.engine(...)`` call.
        """
        if not isinstance(engine, (str, Engine)):
            raise ConfigurationError(
                f"engine must be a registry name or an Engine instance, "
                f"got {type(engine).__name__}"
            )
        if options and not isinstance(engine, str):
            raise ConfigurationError(
                "engine options only apply to registry names; construct the "
                "Engine instance with its options instead"
            )
        self._engine_spec = engine
        self._engine_options = dict(options)
        return self

    def preset(self, name: str) -> "StressTest":
        """Start the config from a named preset (``demo``/``paper``/
        ``production``); later :meth:`configure` calls override it."""
        DStressConfig.preset(name)  # fail fast on typos
        self._preset_name = name
        return self

    def configure(
        self, config: Optional[DStressConfig] = None, **overrides: Any
    ) -> "StressTest":
        """Set a full config object and/or override individual fields."""
        if config is not None:
            if not isinstance(config, DStressConfig):
                raise ConfigurationError(
                    f"expected a DStressConfig, got {type(config).__name__}"
                )
            self._config = config
        self._overrides.update(overrides)
        return self

    def privacy(
        self,
        epsilon: Optional[float] = None,
        accountant: Optional[PrivacyAccountant] = None,
    ) -> "StressTest":
        """Set the per-release epsilon and/or the shared budget accountant."""
        if epsilon is not None:
            self._overrides["output_epsilon"] = epsilon
        if accountant is not None:
            self._accountant = accountant
        return self

    def seed(self, seed: int) -> "StressTest":
        """Pin the deterministic seed for the whole run."""
        self._overrides["seed"] = seed
        return self

    def degree_bound(self, bound: int) -> "StressTest":
        """Pad vertices to this degree bound when building the graph."""
        if bound < 1:
            raise ConfigurationError("degree bound must be at least 1")
        self._degree_bound = bound
        return self

    def clone(self) -> "StressTest":
        """An independent copy of the builder (networks and configs are
        shared by reference; override maps are copied)."""
        other = StressTest()
        other._network = self._network
        other._graph = self._graph
        other._program_spec = self._program_spec
        other._engine_spec = self._engine_spec
        other._engine_options = copy.copy(self._engine_options)
        other._preset_name = self._preset_name
        other._config = self._config
        other._overrides = copy.copy(self._overrides)
        other._accountant = self._accountant
        other._degree_bound = self._degree_bound
        return other

    # --------------------------------------------------------- resolution --

    def resolve(
        self,
        iterations: Union[int, str] = "auto",
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: Optional[int] = None,
        label: str = "run",
    ) -> ResolvedRun:
        """Validate the builder state and materialize an execution spec."""
        config = self._resolve_config()
        engine = self._resolve_engine()
        program, graph = self._resolve_program_and_graph(config)
        if isinstance(iterations, str):
            if iterations != "auto":
                raise ConfigurationError(
                    f"iterations must be a positive int or 'auto', got {iterations!r}"
                )
        elif not isinstance(iterations, int) or isinstance(iterations, bool):
            raise ConfigurationError(
                f"iterations must be a positive int or 'auto', got {iterations!r}"
            )
        elif iterations < 1:
            raise ConfigurationError("iterations must be at least 1")
        return ResolvedRun(
            label=label,
            program=program,
            graph=graph,
            engine=engine,
            config=config,
            iterations=iterations,
            tolerance=tolerance,
            max_iterations=max_iterations,
        )

    def _resolve_config(self) -> DStressConfig:
        if self._config is not None and self._preset_name is not None:
            raise ConfigurationError(
                "both .preset(...) and .configure(config=...) were given; "
                "choose one base config and use field overrides for the rest"
            )
        if self._preset_name is not None:
            return DStressConfig.preset(self._preset_name, **self._overrides)
        base = self._config if self._config is not None else DStressConfig()
        return base.with_updates(**self._overrides) if self._overrides else base

    def _resolve_engine(self) -> Engine:
        if isinstance(self._engine_spec, Engine):
            return self._engine_spec
        return get_engine(self._engine_spec, **self._engine_options)

    def _resolve_program_and_graph(self, config: DStressConfig):
        spec = self._program_spec
        if spec is None:
            raise ConfigurationError(
                "no program selected; call .program('eisenberg-noe') — "
                "registered programs: " + ", ".join(available_programs())
            )
        if isinstance(spec, str):
            entry = get_program(spec)
            program: VertexProgram = entry.factory(config.fmt)
            builder = entry.graph_builder
        else:
            program = spec
            if program.fmt.total_bits != config.fmt.total_bits or (
                program.fmt.fraction_bits != config.fmt.fraction_bits
            ):
                raise ConfigurationError(
                    f"program fixed-point format {program.fmt} disagrees with "
                    f"config format {config.fmt}; pass .configure(fmt=program.fmt) "
                    "or rebuild the program with the config's format"
                )
            builder = None
        if self._graph is not None:
            return program, self._graph
        if self._network is None:
            raise ConfigurationError(
                "no network to run over; pass a FinancialNetwork to "
                "StressTest(...) / .network(...), or a DistributedGraph "
                "via .graph(...)"
            )
        if builder is None:
            raise ConfigurationError(
                "a custom VertexProgram instance needs an explicit graph: "
                "call .graph(...) with the DistributedGraph it runs over"
            )
        return program, builder(self._network, self._degree_bound)

    # ---------------------------------------------------------- execution --

    def run(
        self,
        iterations: Union[int, str] = "auto",
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: Optional[int] = None,
    ) -> RunResult:
        """Execute the session once and return the unified result.

        ``iterations="auto"`` (the default) runs a cheap plaintext probe
        to find the round at which the aggregate trajectory settles within
        ``tolerance``, then runs the selected engine for exactly that many
        rounds. ``max_iterations`` caps the probe (default: twice the
        vertex count, at most 64).
        """
        resolved = self.resolve(
            iterations, tolerance=tolerance, max_iterations=max_iterations
        )
        return execute_resolved(resolved, accountant=self._accountant)

    def run_many(self, scenarios, workers: int = 1, accountant=None, cache=None):
        """Fan a batch of scenarios across a process pool; see
        :func:`repro.api.batch.run_batch` for semantics. ``cache`` (a
        :class:`~repro.api.cache.ScenarioCache`, ``True``, or a directory
        path for the restart-surviving
        :class:`~repro.api.diskcache.PersistentScenarioCache`) reuses
        results of scenarios identical to previously-executed ones —
        without re-charging the accountant."""
        from repro.api.batch import run_batch

        return run_batch(
            self,
            scenarios,
            workers=workers,
            accountant=accountant if accountant is not None else self._accountant,
            cache=cache,
        )

    def run_many_iter(self, scenarios, workers: int = 1, accountant=None, cache=None):
        """The streaming sibling of :meth:`run_many`: an iterator yielding
        each :class:`~repro.api.batch.ScenarioOutcome` the moment its
        worker finishes (completion order, no pool barrier).

        Resolution, worker planning, and budget charging are still eager
        — a bad scenario or an unaffordable batch raises here, before the
        first outcome is consumed. Abandoning the stream early (``break``
        / ``close()``) refunds the accountant for the pre-charged
        releasing scenarios that never completed. The per-scenario
        results are bit-identical to :meth:`run_many`'s; only the arrival
        order (and the absence of a barrier) differs. ``cache`` accepts
        the same values as :meth:`run_many` (including a directory path
        for the persistent on-disk cache).
        """
        from repro.api.batch import run_batch

        return run_batch(
            self,
            scenarios,
            workers=workers,
            accountant=accountant if accountant is not None else self._accountant,
            stream=True,
            cache=cache,
        )


# -------------------------------------------------------------- execution --


def choose_iterations(
    program: VertexProgram,
    graph: DistributedGraph,
    tolerance: float,
    max_iterations: Optional[int],
) -> int:
    """Pick the iteration count by probing the float reference engine.

    The probe is exact, cheap (no crypto), and deterministic; the chosen
    count is the first round whose aggregate moved at most ``tolerance``.
    """
    cap = max_iterations
    if cap is None:
        cap = max(4, min(2 * graph.num_vertices, _AUTO_ITERATIONS_CAP))
    if cap < 1:
        raise ConfigurationError("max_iterations must be at least 1")
    probe = PlaintextEngine(program).run_float(graph, cap)
    chosen = convergence_index(probe.trajectory, tolerance)
    if chosen is None:
        raise ConvergenceError(
            f"aggregate did not settle within {cap} iterations "
            f"(tolerance {tolerance:g}); raise max_iterations, loosen the "
            "tolerance, or pass an explicit iterations=N"
        )
    return max(1, chosen)


def execute_resolved(
    resolved: ResolvedRun,
    accountant: Optional[PrivacyAccountant] = None,
) -> RunResult:
    """Run a resolved spec: resolve ``"auto"`` iterations, execute, time it.

    Module-level (not a method) so batch worker processes can invoke it by
    reference on pickled :class:`ResolvedRun` payloads.
    """
    iterations = resolved.iterations
    if iterations == "auto":
        iterations = choose_iterations(
            resolved.program,
            resolved.graph,
            resolved.tolerance,
            resolved.max_iterations,
        )
    # Engines time their own execution (wall_seconds); the batch layer
    # separately times the whole scenario including the auto probe.
    return resolved.engine.execute(
        resolved.program,
        resolved.graph,
        iterations,
        resolved.config,
        accountant=accountant,
    )
