"""The sharded engine: intra-run vertex partitioning across processes.

Every other backend walks all vertices in one process; ``run_many`` only
parallelizes *across* scenarios. This backend is the first intra-run
distribution mechanism: the graph's vertices are partitioned into
contiguous shards, each round's vertex programs run shard-locally in a
worker process, and boundary ("ghost") messages are exchanged between
shards at the round barrier — the §3.6 schedule driven by the shared
:func:`~repro.core.rounds.run_rounds` scheduler, with the superstep fanned
across a :mod:`repro.api.pool` pool.

Determinism argument (asserted bit-for-bit by the parity tests):

1. **Partition** — shards are contiguous runs of the sorted vertex ids,
   a pure function of ``(vertex_ids, shards)``; no scheduler state leaks in.
2. **Superstep** — each vertex's ``float_update`` sees exactly the state
   and inbox it would see in the plaintext engine; vertices are
   independent within a round, so *where* one runs cannot change its value.
3. **Merge order** — workers return their shard's states in ascending id
   order and shards are merged in ascending order, so the merged dict has
   the same insertion order as the plaintext engine's state map, and the
   trajectory observer sums floats in the same order (float addition is
   not associative — the merge preserving order is what makes the
   trajectory bit-identical rather than merely close).
4. **Ghost exchange** — routing runs once per round barrier on the full
   outbox map, identical to the single-process route.

Inside a batch worker (daemonic ⇒ no child processes allowed) the same
partition runs inline, sequentially; by (2) and (3) the result is
unchanged, so sharded scenarios compose with ``run_many`` transparently.

Like every backend the engine executes through the shared run lifecycle;
under ``release="windowed"`` each window spins up its own worker pool and
the round loop resumes via the :func:`~repro.core.rounds.run_rounds`
resumption contract, so the windowed trajectory stays bit-identical to
the one-shot run of the same total length.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api.engines import (
    Engine,
    _CentralNoiseCore,
    _from_plaintext,
    validate_intra_run_width,
)
from repro.api.pool import create_pool, in_worker_process
from repro.api.registry import register_engine
from repro.api.result import RunResult
from repro.core.engine import PlaintextEngine, PlaintextRun
from repro.core.graph import DistributedGraph
from repro.core.lifecycle import ReleasePolicy, RunState, run_lifecycle
from repro.core.program import NO_OP_MESSAGE, VertexProgram
from repro.core.rounds import RoundLoop, route_messages, sequential_superstep
from repro.core.transport import (
    attach_wan_extras,
    check_transport_spec,
    transport_from_spec,
    wan_meter_snapshot,
)
from repro.exceptions import ConfigurationError
from repro.obs.trace import timed_phase

__all__ = ["ShardedEngine", "partition_vertices", "cross_shard_edges"]


def partition_vertices(vertex_ids: List[int], shards: int) -> List[List[int]]:
    """Split sorted vertex ids into at most ``shards`` contiguous chunks.

    Chunk sizes differ by at most one and empty chunks are dropped (more
    shards than vertices degrades to one vertex per shard). Contiguity
    over the sorted ids is what lets the barrier merge reproduce the
    plaintext engine's state-map ordering by concatenation alone.
    """
    if shards < 1:
        raise ConfigurationError("shard count must be at least 1")
    ids = sorted(vertex_ids)
    count = min(shards, len(ids))
    if count == 0:
        return []
    base, extra = divmod(len(ids), count)
    chunks: List[List[int]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(ids[start : start + size])
        start += size
    return chunks


def cross_shard_edges(graph: DistributedGraph, chunks: List[List[int]]) -> int:
    """Directed edges whose endpoints live on different shards — each one
    carries a ghost message across the barrier every round."""
    shard_of = {vid: index for index, chunk in enumerate(chunks) for vid in chunk}
    return sum(
        1 for src, dst in graph.edges() if shard_of[src] != shard_of[dst]
    )


# Worker-side globals, installed once per pool worker by the initializer so
# the per-round payloads carry only shard state, not the program.
_WORKER_PROGRAM: VertexProgram = None  # type: ignore[assignment]
_WORKER_DEGREE_BOUND: int = 0


def _init_shard_worker(program: VertexProgram, degree_bound: int) -> None:
    global _WORKER_PROGRAM, _WORKER_DEGREE_BOUND
    _WORKER_PROGRAM = program
    _WORKER_DEGREE_BOUND = degree_bound


def _shard_step(
    payload: Tuple[Dict[int, Dict[str, float]], Dict[int, List[float]]],
) -> Tuple[Dict[int, Dict[str, float]], Dict[int, List[float]]]:
    """One shard's share of a superstep: update its vertices, in id order."""
    states, inboxes = payload
    superstep = sequential_superstep(
        sorted(states),
        lambda _vid, state, messages: _WORKER_PROGRAM.float_update(
            state, messages, _WORKER_DEGREE_BOUND
        ),
    )
    return superstep(states, inboxes)


class _ShardedCore(_CentralNoiseCore):
    """Lifecycle stages for the sharded backend.

    The inline path (one shard, or inside a daemonic batch worker) is the
    reference engine's own :class:`~repro.core.rounds.RoundLoop` — one
    float semantics implementation, not two. The pooled path drives the
    same loop with the superstep fanned across a fresh worker pool per
    window (pools don't outlive a window: a windowed run may idle for a
    long release stage between rounds, and worker placement can never
    change a value — see the determinism argument above).
    """

    def __init__(self, engine, program, graph, config) -> None:
        self.engine = engine
        self.program = program
        self.graph = graph
        self.config = config
        self.oracle: Optional[PlaintextEngine] = None
        self.loop: Optional[RoundLoop] = None
        self.chunks: List[List[int]] = []
        self.ghost_edges = 0
        self.inline = True
        self.bus = None
        self.before = None
        self._pool = None

    def setup(self, state: RunState) -> None:
        self.chunks = partition_vertices(self.graph.vertex_ids, self.engine.shards)
        self.ghost_edges = cross_shard_edges(self.graph, self.chunks)
        self.bus = (
            transport_from_spec(self.engine.transport, self.config)
            if self.engine.transport is not None
            else None
        )
        self.before = wan_meter_snapshot(self.bus)
        self.oracle = PlaintextEngine(self.program, transport=self.bus)
        self.inline = len(self.chunks) <= 1 or in_worker_process()
        if self.inline:
            self.loop = self.oracle.start_float(self.graph, state.phases)
        else:
            self.loop = self._start_pooled(state)

    def _start_pooled(self, state: RunState) -> RoundLoop:
        program = self.program
        graph = self.graph
        oracle = self.oracle
        degree_bound = graph.degree_bound
        with timed_phase(state.phases, "initialization"):
            if oracle.transport is not None:
                # one execution = one bus session (resets round counters /
                # fault accounting), same as the inline start_float path
                oracle.transport.open(graph, NO_OP_MESSAGE)
            states = {
                v.vertex_id: program.initial_state(v, degree_bound)
                for v in graph.vertices()
            }
            inboxes: Dict[int, List[float]] = {
                v: [NO_OP_MESSAGE] * degree_bound for v in graph.vertex_ids
            }

        def superstep(state_map, inbox_map):
            payloads = [
                (
                    {vid: state_map[vid] for vid in chunk},
                    {vid: inbox_map[vid] for vid in chunk},
                )
                for chunk in self.chunks
            ]
            merged_states: Dict[int, Dict[str, float]] = {}
            merged_outboxes: Dict[int, List[float]] = {}
            for shard_states, shard_outboxes in self._pool.map(_shard_step, payloads):
                merged_states.update(shard_states)
                merged_outboxes.update(shard_outboxes)
            return merged_states, merged_outboxes

        return RoundLoop(
            superstep=superstep,
            # the barrier merge reuses the transport gather: the ghost
            # exchange is one full-round delivery over the same bus
            # every other engine routes through (and a WAN bus meters it)
            route=lambda outboxes: route_messages(
                graph, outboxes, NO_OP_MESSAGE, transport=oracle.transport
            ),
            observe=oracle._aggregate_float,
            states=states,
            inboxes=inboxes,
            phases=state.phases,
        )

    def run_window(self, state: RunState, rounds: int, first: bool) -> None:
        if self.inline:
            self.loop.advance(rounds)
        else:
            with create_pool(
                len(self.chunks),
                initializer=_init_shard_worker,
                initargs=(self.program, self.graph.degree_bound),
            ) as pool:
                self._pool = pool
                try:
                    self.loop.advance(rounds)
                finally:
                    self._pool = None
        state.trajectory = list(self.loop.trajectory)

    def aggregate(self, state: RunState) -> float:
        return self.oracle._aggregate_float(self.loop.states)

    def finalize(self, state: RunState, started: float) -> RunResult:
        if self.inline:
            run = self.oracle.finish_float(self.loop)
        else:
            run = PlaintextRun(
                aggregate=self.oracle._aggregate_float(self.loop.states),
                final_states=self.loop.states,
                trajectory=self.loop.trajectory,
                phases=state.phases,
            )
        result = _from_plaintext(
            self.engine.name,
            self.program,
            run,
            state.rounds_done,
            started,
            graph=self.graph,
            record=False,
        )
        result.extras.update(
            {
                "shards": float(len(self.chunks)),
                "requested_shards": float(self.engine.shards),
                "ghost_edges": float(self.ghost_edges),
                "ghost_messages": float(self.ghost_edges * state.rounds_done),
                "inline": 1.0 if self.inline else 0.0,
            }
        )
        attach_wan_extras(result, self.bus, self.before)
        return result


class ShardedEngine(Engine):
    """Float-mode execution partitioned across ``shards`` worker processes.

    Bit-identical to ``engine="plaintext"`` under the same seed and
    iteration count, for every shard count — the shard count only decides
    *where* each vertex update runs, never what it computes.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int = 2,
        transport=None,
        release: Union[str, ReleasePolicy] = "oneshot",
        windows: Optional[Sequence[int]] = None,
        window_epsilon: Optional[float] = None,
    ) -> None:
        self.shards = validate_intra_run_width(shards, self.name)
        #: Bus the round-barrier ghost exchange is routed (and metered)
        #: over; ``None`` keeps the shared zero-delay in-memory bus.
        self.transport = check_transport_spec(transport, optional=True)
        self._configure_release(release, windows, window_epsilon)

    def execute(self, program, graph, iterations, config, accountant=None):
        core = _ShardedCore(self, program, graph, config)
        return run_lifecycle(self, core, program, config, iterations, accountant)


register_engine("sharded", ShardedEngine, aliases=("shard", "partitioned"))
