"""DStress core: programming model, plaintext and secure engines."""

from repro.core.convergence import DEFAULT_TOLERANCE, convergence_index, has_converged
from repro.core.engine import PlaintextEngine, PlaintextRun
from repro.core.graph import DistributedGraph, VertexView
from repro.core.lifecycle import (
    STAGES,
    LifecycleCore,
    OneShotRelease,
    ReleasePolicy,
    ReleaseRecord,
    RunState,
    WindowedRelease,
    run_lifecycle,
)
from repro.core.program import NO_OP_MESSAGE, ProgramSpec, VertexProgram
from repro.core.rounds import route_messages, run_rounds, sequential_superstep

__all__ = [
    "DEFAULT_TOLERANCE",
    "DistributedGraph",
    "LifecycleCore",
    "NO_OP_MESSAGE",
    "OneShotRelease",
    "PlaintextEngine",
    "PlaintextRun",
    "ProgramSpec",
    "ReleasePolicy",
    "ReleaseRecord",
    "RunState",
    "STAGES",
    "VertexProgram",
    "VertexView",
    "WindowedRelease",
    "convergence_index",
    "has_converged",
    "route_messages",
    "run_lifecycle",
    "run_rounds",
    "sequential_superstep",
]
