"""DStress core: programming model, plaintext and secure engines."""

from repro.core.convergence import DEFAULT_TOLERANCE, convergence_index, has_converged
from repro.core.engine import PlaintextEngine, PlaintextRun
from repro.core.graph import DistributedGraph, VertexView
from repro.core.program import NO_OP_MESSAGE, ProgramSpec, VertexProgram
from repro.core.rounds import route_messages, run_rounds, sequential_superstep

__all__ = [
    "DEFAULT_TOLERANCE",
    "DistributedGraph",
    "NO_OP_MESSAGE",
    "PlaintextEngine",
    "PlaintextRun",
    "ProgramSpec",
    "VertexProgram",
    "VertexView",
    "convergence_index",
    "has_converged",
    "route_messages",
    "run_rounds",
    "sequential_superstep",
]
