"""Aggregation and noising (§3.6), including hierarchical trees.

After the final computation step, every block holds shares of its vertex's
contribution register. The aggregation step moves those shares to the
aggregation block ``B_A``, which evaluates — in MPC — the sum of all
contributions plus one draw of the output noise, and reveals only the
noised total.

With many vertices a single block becomes a bottleneck, so the paper
aggregates hierarchically: groups of ``fanout`` vertices feed partial-sum
blocks (no noise), whose outputs feed the root (noise added exactly once).
The Figure 6 projection assumes a two-level tree with fanout 100.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError
from repro.sharing.xor import share_value

__all__ = ["reshare_word", "plan_groups", "partial_sum_width", "AggregationPlan"]


def reshare_word(
    share_words: Sequence[int],
    bits: int,
    target_size: int,
    rng: DeterministicRNG,
) -> List[int]:
    """Re-share an XOR-shared word from one block to another.

    Each holder splits its share into ``target_size`` subshares; receiver
    ``q`` XORs the ``q``-th subshare from every holder. The result is a
    fresh, independent sharing of the same word — no member of either
    block learns anything, as long as each block has one honest member.
    """
    if not share_words:
        raise ProtocolError("cannot reshare an empty share list")
    received = [0] * target_size
    for word in share_words:
        subshares = share_value(word, bits, target_size, rng)
        for q, subshare in enumerate(subshares):
            received[q] ^= subshare
    return received


def plan_groups(vertex_ids: Sequence[int], fanout: int) -> List[List[int]]:
    """Split vertices into aggregation groups of at most ``fanout``."""
    ids = list(vertex_ids)
    if len(ids) <= fanout:
        return [ids]
    return [ids[i : i + fanout] for i in range(0, len(ids), fanout)]


def partial_sum_width(value_bits: int, group_size: int) -> int:
    """Bit width that holds a sum of ``group_size`` signed values."""
    return value_bits + max(1, math.ceil(math.log2(group_size + 1)))


@dataclass(frozen=True)
class AggregationPlan:
    """The tree the engine will execute: groups plus width bookkeeping."""

    groups: List[List[int]]
    value_bits: int

    @property
    def is_hierarchical(self) -> bool:
        return len(self.groups) > 1

    @property
    def group_sum_bits(self) -> int:
        largest = max(len(g) for g in self.groups)
        return partial_sum_width(self.value_bits, largest)

    @property
    def root_inputs(self) -> int:
        return len(self.groups)

    @property
    def root_input_bits(self) -> int:
        return self.group_sum_bits if self.is_hierarchical else self.value_bits

    def verify_total(self, contributions: Sequence[int]) -> int:
        """Reference sum (used only by tests)."""
        return sum(contributions)
