"""Runtime configuration for a DStress deployment."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.core.transport import validate_wan_params
from repro.crypto.group import GROUP_256, GROUP_512, TOY_GROUP_64, CyclicGroup
from repro.exceptions import ConfigurationError
from repro.mpc.fixedpoint import FixedPointFormat

__all__ = ["DStressConfig", "available_presets"]


@dataclass
class DStressConfig:
    """Everything a DStress run needs beyond the program and graph.

    Attributes
    ----------
    collusion_bound:
        ``k`` (§3.2 assumption 3): blocks have ``k + 1`` members; any
        coalition of at most ``k`` nodes learns nothing.
    fmt:
        Fixed-point format of state registers and messages (``L`` bits).
    group:
        DDH group for ElGamal and OT accounting. The paper deployed
        secp384r1; the default 256-bit Schnorr group keeps pure-Python
        runs fast (see DESIGN.md).
    dlog_half_width:
        Decryption window of the exponential-ElGamal table — ``N_l / 2``
        in the Appendix B failure analysis.
    edge_noise_alpha:
        Parameter of the two-sided geometric noise in the transfer
        protocol; values near 1 mean more noise (Appendix B). ``None``
        disables edge noising (strawman #3 mode, for ablations).
    output_epsilon:
        Per-release epsilon for the final Laplace/geometric noising.
    noise_magnitude_bits / noise_precision_bits:
        Size of the in-MPC noise sampler (see
        :func:`repro.mpc.noise_circuit.build_geometric_bits_sampler`).
    aggregation_fanout:
        Max inputs per aggregation block; more vertices trigger the
        hierarchical tree of §3.6 (the paper projects with fanout 100).
    gmw_mode:
        ``"ot"`` (the paper's GMW) or ``"beaver"`` (dealer ablation).
    pad_transfers:
        When True, every vertex runs a transfer for all ``D`` slots each
        round (self-sending no-ops on unused slots), hiding vertex degrees
        from block members at ~``D/avg_degree`` times the communication
        cost. The paper transfers only on real edges (§3.6), so the
        default is False.
    wan_latency_seconds / wan_bandwidth_bytes / wan_jitter:
        The simulated WAN model behind
        :class:`~repro.core.transport.SimulatedWanTransport`: base one-way
        link latency in seconds, link bandwidth in bytes/second (``None``
        means unconstrained), and the per-link deterministic jitter
        fraction (each directed link's latency is scaled by a factor in
        ``[1 - jitter, 1 + jitter]`` derived from the seed). Latency 0
        (the default) keeps the transport a pure meter.
    """

    collusion_bound: int = 2
    fmt: FixedPointFormat = field(default_factory=FixedPointFormat)
    group: CyclicGroup = field(default_factory=lambda: GROUP_256)
    dlog_half_width: int = 4096
    edge_noise_alpha: Optional[float] = 0.5
    output_epsilon: float = 0.23
    noise_magnitude_bits: Optional[int] = None
    noise_precision_bits: int = 16
    aggregation_fanout: int = 100
    gmw_mode: str = "ot"
    pad_transfers: bool = False
    wan_latency_seconds: float = 0.0
    wan_bandwidth_bytes: Optional[float] = None
    wan_jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.collusion_bound < 1:
            raise ConfigurationError("collusion bound k must be at least 1")
        validate_wan_params(
            self.wan_latency_seconds, self.wan_bandwidth_bytes, self.wan_jitter
        )
        if self.dlog_half_width < self.block_size:
            raise ConfigurationError("dlog window cannot even hold a noiseless sum")
        if self.output_epsilon <= 0:
            raise ConfigurationError("output epsilon must be positive")
        if self.edge_noise_alpha is not None and not 0.0 < self.edge_noise_alpha < 1.0:
            raise ConfigurationError("edge noise alpha must lie in (0, 1)")
        if self.aggregation_fanout < 2:
            raise ConfigurationError("aggregation fanout must be at least 2")

    @property
    def block_size(self) -> int:
        """``k + 1``."""
        return self.collusion_bound + 1

    def noise_alpha_for(
        self, sensitivity: float, epsilon: Optional[float] = None
    ) -> float:
        """Geometric parameter of the output noise in raw LSB units.

        The discretized Laplace with scale ``s / eps`` (in units of T)
        becomes a two-sided geometric over LSBs with
        ``alpha = exp(-eps * resolution / s)``. ``epsilon`` overrides the
        config's ``output_epsilon`` for per-window continual release;
        the default is the full one-shot budget.
        """
        if sensitivity <= 0:
            raise ConfigurationError("sensitivity must be positive")
        eps = self.output_epsilon if epsilon is None else epsilon
        if eps <= 0:
            raise ConfigurationError("release epsilon must be positive")
        return math.exp(-eps * self.fmt.resolution / sensitivity)

    def noise_magnitude_bits_for(
        self, sensitivity: float, epsilon: Optional[float] = None
    ) -> int:
        """Magnitude bits covering the noise distribution's useful range.

        The truncated sampler covers ``[0, 2^bits)``; we size it to hold
        about 16 scale-lengths of the geometric so truncation is a
        ~``e^-16`` tail event. ``epsilon`` overrides ``output_epsilon``
        the same way as :meth:`noise_alpha_for` (smaller per-window
        budgets mean wider noise, so the window grows with it).
        """
        if self.noise_magnitude_bits is not None:
            return self.noise_magnitude_bits
        eps = self.output_epsilon if epsilon is None else epsilon
        if eps <= 0:
            raise ConfigurationError("release epsilon must be positive")
        scale_lsb = sensitivity / (eps * self.fmt.resolution)
        return max(4, math.ceil(math.log2(scale_lsb * 16.0)))

    # -- presets -----------------------------------------------------------------

    @classmethod
    def preset(cls, name: str, **overrides: Any) -> "DStressConfig":
        """A named parameter bundle, optionally customized.

        * ``demo`` — toy 64-bit group, small dlog window, generous epsilon:
          runs the full protocol on a laptop in seconds. Not private in any
          cryptographic sense (the group is breakable by hand).
        * ``paper`` — the paper's evaluation regime (§5): blocks of 8,
          256-bit DDH group, epsilon 0.23 so three releases fit in the
          yearly ln 2 budget.
        * ``production`` — conservative deployment parameters: blocks of
          10, 512-bit group, wider fixed point, padded transfers so vertex
          degrees stay hidden.

        Keyword overrides are applied on top of the preset and validated
        together (``DStressConfig.preset("demo", output_epsilon=0.1)``).
        """
        try:
            base = _PRESETS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown preset {name!r}; available presets: "
                + ", ".join(available_presets())
            ) from None
        config = cls(**base)
        return config.with_updates(**overrides) if overrides else config

    def with_updates(self, **overrides: Any) -> "DStressConfig":
        """A copy with fields replaced (re-validated by ``__post_init__``)."""
        try:
            return replace(self, **overrides)
        except TypeError:
            valid = ", ".join(sorted(self.__dataclass_fields__))
            bad = sorted(set(overrides) - set(self.__dataclass_fields__))
            raise ConfigurationError(
                f"unknown config field(s) {bad}; valid fields: {valid}"
            ) from None


#: Named parameter bundles for :meth:`DStressConfig.preset`. Values are all
#: immutable, so sharing the singletons across configs is safe.
_PRESETS: Dict[str, Dict[str, Any]] = {
    "demo": dict(
        collusion_bound=2,
        fmt=FixedPointFormat(16, 8),
        group=TOY_GROUP_64,
        dlog_half_width=300,
        edge_noise_alpha=0.4,
        output_epsilon=0.5,
        seed=2017,
    ),
    "paper": dict(
        collusion_bound=7,
        fmt=FixedPointFormat(16, 8),
        group=GROUP_256,
        dlog_half_width=4096,
        edge_noise_alpha=0.5,
        output_epsilon=0.23,
    ),
    "production": dict(
        collusion_bound=9,
        fmt=FixedPointFormat(24, 10),
        group=GROUP_512,
        dlog_half_width=1 << 15,
        edge_noise_alpha=0.5,
        output_epsilon=0.23,
        aggregation_fanout=100,
        pad_transfers=True,
    ),
}


def available_presets() -> List[str]:
    """Names accepted by :meth:`DStressConfig.preset`."""
    return sorted(_PRESETS)
