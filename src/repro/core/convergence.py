"""Convergence detection over aggregate trajectories.

Both engines record the aggregate of the designated register after every
computation step (the *trajectory*). The systemic-risk programs are
monotone contractions — Eisenberg-Noe's fictitious default algorithm and
the EGJ discount cascade both settle to a fixpoint in at most ``n``
rounds — so the first round whose aggregate moves less than a tolerance
is a sound stopping point (§4.3: "a limited number of iterations provides
a good approximation").

The helpers here are shared by :class:`~repro.core.engine.PlaintextRun`,
:class:`~repro.core.secure_engine.SecureRunResult` and the
``iterations="auto"`` mode of :class:`repro.api.StressTest`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.exceptions import ConfigurationError

__all__ = [
    "DEFAULT_TOLERANCE",
    "TrajectoryConvergence",
    "convergence_index",
    "has_converged",
]

#: Default absolute tolerance on the aggregate delta between rounds. The
#: fixed-point resolution of the default format (2^-8 ≈ 0.004) is coarser
#: than this, so a converged float trajectory implies a converged circuit
#: trajectory as well.
DEFAULT_TOLERANCE = 1e-6


def convergence_index(
    trajectory: Sequence[float], tolerance: float = DEFAULT_TOLERANCE
) -> Optional[int]:
    """First index ``i`` with ``|trajectory[i] - trajectory[i-1]| <= tolerance``.

    ``trajectory[i]`` is the aggregate after ``i + 1`` computation steps,
    so a return value of ``k`` means: running the program with
    ``iterations=k`` already produces an aggregate within ``tolerance`` of
    the ``k``-th entry — the smallest iteration count worth paying MPC
    rounds for. Returns ``None`` if the trajectory never settles.
    """
    if tolerance < 0:
        raise ConfigurationError("convergence tolerance cannot be negative")
    for index in range(1, len(trajectory)):
        if abs(trajectory[index] - trajectory[index - 1]) <= tolerance:
            return index
    return None


def has_converged(
    trajectory: Sequence[float], tolerance: float = DEFAULT_TOLERANCE
) -> bool:
    """Whether the trajectory's final step moved at most ``tolerance``."""
    if len(trajectory) < 2:
        return False
    return abs(trajectory[-1] - trajectory[-2]) <= tolerance


class TrajectoryConvergence:
    """Mixin for result types that carry a pre-noise ``trajectory``.

    Every result type used to re-implement ``converged_at`` against its
    own trajectory attribute; this mixin is the single definition, so the
    plaintext and secure paths cannot drift in tolerance handling again
    (the regression test pins both engines to the same answer on the
    seed network).
    """

    trajectory: Sequence[float]

    def converged_at(self, tolerance: float = DEFAULT_TOLERANCE) -> Optional[int]:
        """Smallest iteration count after which the (pre-noise) aggregate
        stopped moving by more than ``tolerance`` (``None`` if it never
        settled)."""
        return convergence_index(self.trajectory, tolerance)

    def converged(self, tolerance: float = DEFAULT_TOLERANCE) -> bool:
        """Whether the trajectory's final step moved at most ``tolerance``."""
        return has_converged(self.trajectory, tolerance)
