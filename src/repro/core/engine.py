"""Plaintext reference engine for vertex programs.

Runs a :class:`~repro.core.program.VertexProgram` in the clear, in two
modes:

* **float** — plain Python floats; the semantic reference for the model
  (what a trusted all-seeing regulator would compute);
* **fixed** — evaluates the *same Boolean circuits* the secure engine runs
  under MPC, but in the clear. The secure engine's pre-noise output must
  equal this mode bit-for-bit (asserted by the integration tests), and the
  gap between float and fixed mode is the quantization error.

The engine follows §3.6 exactly: an initialization step, ``n`` computation
+ communication steps, one final computation step, then aggregation of the
designated register (noising is the caller's concern — this engine is the
oracle, so it returns the exact aggregate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.convergence import TrajectoryConvergence
from repro.core.graph import DistributedGraph
from repro.core.program import NO_OP_MESSAGE, VertexProgram
from repro.core.rounds import RoundLoop, route_messages, sequential_superstep
from repro.core.transport import Transport
from repro.exceptions import ConfigurationError
from repro.obs.trace import timed_phase
from repro.simulation.netsim import PhaseTimer

__all__ = ["PlaintextRun", "PlaintextEngine"]


@dataclass
class PlaintextRun(TrajectoryConvergence):
    """Result of a plaintext execution."""

    aggregate: float
    final_states: Dict[int, Dict[str, float]]
    #: per-iteration aggregate of the designated register (convergence data)
    trajectory: List[float] = field(default_factory=list)
    #: per-phase wall-clock (initialization/computation/communication),
    #: filled through the shared recorder path so plaintext runs report
    #: phases the same way the secure engine always has
    phases: Optional[PhaseTimer] = None


class PlaintextEngine:
    """Executes vertex programs in the clear.

    ``transport`` (default: the shared in-memory bus) is the message bus
    rounds are routed over; a
    :class:`~repro.core.transport.SimulatedWanTransport` meters the same
    execution's traffic and link delays without changing any payload.
    """

    def __init__(
        self, program: VertexProgram, transport: Optional[Transport] = None
    ) -> None:
        self.program = program
        self.transport = transport

    # -- float mode -------------------------------------------------------------

    def start_float(
        self, graph: DistributedGraph, phases: Optional[PhaseTimer] = None
    ) -> RoundLoop:
        """Initialize a resumable float-mode round loop (§3.6 setup).

        ``advance(n)`` on the returned loop runs ``n`` computation steps;
        :meth:`finish_float` packages the loop into a
        :class:`PlaintextRun`. :meth:`run_float` is the one-shot
        composition; release policies interleave stages between windows.
        """
        program = self.program
        degree_bound = graph.degree_bound
        with timed_phase(phases, "initialization"):
            if self.transport is not None:
                # one execution = one bus session: resets per-run transport
                # state (round counters, fault accounting, mailboxes)
                self.transport.open(graph, NO_OP_MESSAGE)
            states = {
                v.vertex_id: program.initial_state(v, degree_bound)
                for v in graph.vertices()
            }
            inboxes: Dict[int, List[float]] = {
                v: [NO_OP_MESSAGE] * degree_bound for v in graph.vertex_ids
            }
        return RoundLoop(
            superstep=sequential_superstep(
                graph.vertex_ids,
                lambda _vid, state, messages: program.float_update(
                    state, messages, degree_bound
                ),
            ),
            route=lambda outboxes: route_messages(
                graph, outboxes, NO_OP_MESSAGE, transport=self.transport
            ),
            observe=self._aggregate_float,
            states=states,
            inboxes=inboxes,
            phases=phases,
        )

    def finish_float(self, loop: RoundLoop) -> PlaintextRun:
        """Package a float-mode loop's current state as a result."""
        return PlaintextRun(
            aggregate=self._aggregate_float(loop.states),
            final_states=loop.states,
            trajectory=loop.trajectory,
            phases=loop.phases,
        )

    def run_float(self, graph: DistributedGraph, iterations: int) -> PlaintextRun:
        """Reference execution over floats."""
        loop = self.start_float(graph, PhaseTimer())
        loop.advance(iterations)
        return self.finish_float(loop)

    def _aggregate_float(self, states: Dict[int, Dict[str, float]]) -> float:
        register = self.program.aggregate_register
        return sum(state[register] for state in states.values())

    # -- fixed-point circuit mode --------------------------------------------------

    def start_fixed(
        self, graph: DistributedGraph, phases: Optional[PhaseTimer] = None
    ) -> RoundLoop:
        """Initialize a resumable fixed-point circuit round loop."""
        program = self.program
        fmt = program.fmt
        degree_bound = graph.degree_bound
        with timed_phase(phases, "initialization"):
            circuit = program.build_update_circuit(degree_bound)
            registers = program.state_registers(degree_bound)

            raw_states: Dict[int, Dict[str, int]] = {}
            for view in graph.vertices():
                state = program.initial_state(view, degree_bound)
                missing = set(registers) - set(state)
                if missing:
                    raise ConfigurationError(
                        f"initial state missing registers {missing}"
                    )
                raw_states[view.vertex_id] = program.encode_state(state)

            raw_no_op = fmt.encode(NO_OP_MESSAGE)
            if self.transport is not None:
                self.transport.open(graph, raw_no_op)
            inboxes: Dict[int, List[int]] = {
                v: [raw_no_op] * degree_bound for v in graph.vertex_ids
            }
        return RoundLoop(
            superstep=sequential_superstep(
                graph.vertex_ids,
                lambda _vid, state, messages: program.circuit_update(
                    state, messages, degree_bound, circuit
                ),
            ),
            route=lambda outboxes: route_messages(
                graph, outboxes, raw_no_op, transport=self.transport
            ),
            observe=self._aggregate_raw,
            states=raw_states,
            inboxes=inboxes,
            phases=phases,
        )

    def finish_fixed(self, loop: RoundLoop) -> PlaintextRun:
        """Package a fixed-mode loop's current state as a result."""
        program = self.program
        return PlaintextRun(
            aggregate=self._aggregate_raw(loop.states),
            final_states={
                vertex_id: program.decode_state(raw)
                for vertex_id, raw in loop.states.items()
            },
            trajectory=loop.trajectory,
            phases=loop.phases,
        )

    def run_fixed(self, graph: DistributedGraph, iterations: int) -> PlaintextRun:
        """Clear evaluation of the MPC circuits — the secure-engine oracle.

        Aggregate and states are reported in decoded (real-valued) units;
        the raw aggregate is an exact sum of raw registers, mirroring the
        aggregation circuit.
        """
        loop = self.start_fixed(graph, PhaseTimer())
        loop.advance(iterations)
        return self.finish_fixed(loop)

    def _aggregate_raw(self, raw_states: Dict[int, Dict[str, int]]) -> float:
        register = self.program.aggregate_register
        total = sum(raw[register] for raw in raw_states.values())
        return self.program.fmt.decode(total)
