"""The distributed property graph DStress computes over (§2).

Each of the N participants knows one vertex, the edges adjacent to it, and
the properties of that vertex; nobody holds the whole graph. This module is
the *logical* graph model: vertices with ordered in/out neighbor lists
(slot order matters — message slot ``t`` corresponds to neighbor ``t``) and
a per-vertex private data dictionary.

The degree bound ``D`` (§3.2 assumption 4) is enforced at construction:
every vertex must fit its in- and out-neighbors into ``D`` slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["VertexView", "DistributedGraph"]


@dataclass
class VertexView:
    """Everything participant ``vertex_id`` knows: its vertex and edges."""

    vertex_id: int
    data: Dict[str, float] = field(default_factory=dict)
    out_neighbors: List[int] = field(default_factory=list)
    in_neighbors: List[int] = field(default_factory=list)

    @property
    def out_degree(self) -> int:
        return len(self.out_neighbors)

    @property
    def in_degree(self) -> int:
        return len(self.in_neighbors)

    def out_slot(self, neighbor: int) -> int:
        """Message slot used for the edge to ``neighbor``."""
        return self.out_neighbors.index(neighbor)

    def in_slot(self, neighbor: int) -> int:
        """Message slot on which ``neighbor``'s messages arrive."""
        return self.in_neighbors.index(neighbor)


class DistributedGraph:
    """A directed graph with per-vertex private data and a degree bound."""

    def __init__(self, degree_bound: int) -> None:
        if degree_bound < 1:
            raise ConfigurationError("degree bound D must be at least 1")
        self.degree_bound = degree_bound
        self._vertices: Dict[int, VertexView] = {}

    # -- construction ---------------------------------------------------------

    def add_vertex(self, vertex_id: int, **data: float) -> VertexView:
        if vertex_id in self._vertices:
            raise ConfigurationError(f"duplicate vertex {vertex_id}")
        view = VertexView(vertex_id=vertex_id, data=dict(data))
        self._vertices[vertex_id] = view
        return view

    def add_edge(self, src: int, dst: int, **edge_data: float) -> None:
        """Add the directed edge ``src -> dst``.

        Edge properties are stored on *both* endpoints under slot-indexed
        keys (``out_<name>_<slot>`` at the source, ``in_<name>_<slot>`` at
        the destination) — each participant knows the annotations of its
        adjacent edges (§2) and nothing else.
        """
        if src == dst:
            raise ConfigurationError("self-loops are not allowed")
        source = self._vertices[src]
        dest = self._vertices[dst]
        if dst in source.out_neighbors:
            raise ConfigurationError(f"duplicate edge {src}->{dst}")
        if source.out_degree >= self.degree_bound:
            raise ConfigurationError(
                f"vertex {src} would exceed out-degree bound {self.degree_bound}"
            )
        if dest.in_degree >= self.degree_bound:
            raise ConfigurationError(
                f"vertex {dst} would exceed in-degree bound {self.degree_bound}"
            )
        out_slot = source.out_degree
        in_slot = dest.in_degree
        source.out_neighbors.append(dst)
        dest.in_neighbors.append(src)
        for name, value in edge_data.items():
            source.data[f"out_{name}_{out_slot}"] = value
            dest.data[f"in_{name}_{in_slot}"] = value

    # -- access ------------------------------------------------------------------

    @property
    def vertex_ids(self) -> List[int]:
        return sorted(self._vertices)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return sum(v.out_degree for v in self._vertices.values())

    def vertex(self, vertex_id: int) -> VertexView:
        return self._vertices[vertex_id]

    def vertices(self) -> Iterable[VertexView]:
        return (self._vertices[v] for v in self.vertex_ids)

    def edges(self) -> Iterable[Tuple[int, int]]:
        for view in self.vertices():
            for dst in view.out_neighbors:
                yield (view.vertex_id, dst)

    def max_degree(self) -> int:
        """Largest in- or out-degree actually present."""
        return max(
            (max(v.in_degree, v.out_degree) for v in self._vertices.values()),
            default=0,
        )
