"""The shared run lifecycle: one staged spine for every engine backend.

Every DStress execution — float oracle, clear circuit evaluation, the
sharded/async variants, the full secure protocol, and the naive-MPC
baseline — walks the same five stages:

    setup -> rounds -> aggregate -> noise -> release

Before this module each backend hard-coded that shape (and its own copy
of accountant charging, ``timed_phase`` plumbing, and release handling)
into its ``execute``. Now :func:`run_lifecycle` owns the spine and a
backend only supplies a :class:`LifecycleCore` — the five stage bodies —
while a :class:`ReleasePolicy` decides *when* the tail stages run:

* :class:`OneShotRelease` (default) runs rounds once and releases once at
  the end — byte-for-byte the historical behaviour of every engine.
* :class:`WindowedRelease` is continual release (ROADMAP "streaming and
  workload-shaped releases"): the round schedule is split into windows,
  each window ends with its own aggregate/noise/release, the budget is a
  per-window epsilon validated through
  :func:`~repro.privacy.budget.whole_releases`, and the accountant's
  audit ledger records one entry per window.

The :class:`RunState` threading through the stages is resumable: the
round loop's pending outboxes (or the secure engine's share context)
live in the core between windows, so window ``j + 1`` continues the §3.6
schedule exactly where window ``j`` stopped. The resumption contract is
stated (and property-tested) on :func:`~repro.core.rounds.run_rounds`:
a windowed run's pre-noise trajectory is bit-identical to the one-shot
run of the same total length.

Stage timings land in the same :class:`~repro.simulation.netsim.PhaseTimer`
as the engines' fine-grained phases, under ``stage:``-prefixed keys, so
every engine emits the same ordered stage names (the lifecycle parity
test) without renaming any existing phase.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.obs.clock import now as clock_now
from repro.obs.metrics import record_run
from repro.obs.trace import current_recorder, timed_phase
from repro.privacy.admission import Precharge, precharge, release_schedule
from repro.privacy.budget import whole_releases
from repro.simulation.netsim import PhaseTimer

__all__ = [
    "STAGES",
    "ReleasePolicy",
    "OneShotRelease",
    "WindowedRelease",
    "resolve_release_policy",
    "ReleaseRecord",
    "RunState",
    "LifecycleCore",
    "run_lifecycle",
]

#: The stage names, in execution order. ``rounds`` through ``release``
#: repeat once per window under a windowed policy.
STAGES = ("setup", "rounds", "aggregate", "noise", "release")

#: Upper bound on release windows per run: windows are individually
#: charged ledger entries, so an unbounded count would let one scenario
#: flood the audit ledger.
MAX_WINDOWS = 64


# ------------------------------------------------------------- policies --


class ReleasePolicy(ABC):
    """When (and with what budget) the aggregate/noise/release stages run."""

    #: Registry-style discriminator (``"oneshot"`` / ``"windowed"``).
    kind: str = "abstract"

    #: Whether this policy makes an otherwise non-releasing engine (the
    #: plaintext family) noise and release its output: continual release
    #: publishes per-window values, so it always consumes budget.
    forces_release: bool = False

    @abstractmethod
    def window_schedule(self, iterations: int) -> List[int]:
        """Split ``iterations`` computation rounds into release windows."""

    @abstractmethod
    def epsilon_schedule(self, config: Any) -> List[float]:
        """Per-window epsilon, one entry per window (releasing runs only)."""


@dataclass(frozen=True)
class OneShotRelease(ReleasePolicy):
    """Run all rounds, then release once — the historical behaviour."""

    kind = "oneshot"
    forces_release = False

    def window_schedule(self, iterations: int) -> List[int]:
        return [iterations]

    def epsilon_schedule(self, config: Any) -> List[float]:
        return [config.output_epsilon]


@dataclass(frozen=True)
class WindowedRelease(ReleasePolicy):
    """Continual release: one aggregate/noise/release per round window.

    ``windows`` are the per-window round counts; they must sum to the
    run's ``iterations``. ``epsilon_per_window`` defaults to an even
    split of ``config.output_epsilon`` across the windows; an explicit
    value lets a monitoring schedule spend less than the full budget.
    Either way the schedule must be chargeable under the run budget
    according to :func:`~repro.privacy.budget.whole_releases` — the same
    arithmetic the accountant uses, so admission can never approve a
    schedule the ledger would refuse.
    """

    windows: Tuple[int, ...] = ()
    epsilon_per_window: Optional[float] = None

    kind = "windowed"
    forces_release = True

    def __post_init__(self) -> None:
        if not self.windows:
            raise ConfigurationError("windowed release needs at least one window")
        if len(self.windows) > MAX_WINDOWS:
            raise ConfigurationError(
                f"windowed release supports at most {MAX_WINDOWS} windows"
            )
        for rounds in self.windows:
            if isinstance(rounds, bool) or not isinstance(rounds, int) or rounds < 1:
                raise ConfigurationError(
                    f"every release window needs a positive round count, got {rounds!r}"
                )
        if self.epsilon_per_window is not None and self.epsilon_per_window <= 0:
            raise ConfigurationError("per-window epsilon must be positive")

    def window_schedule(self, iterations: int) -> List[int]:
        total = sum(self.windows)
        if total != iterations:
            raise ConfigurationError(
                f"release windows {list(self.windows)} cover {total} rounds "
                f"but the run executes {iterations}; they must match exactly"
            )
        return list(self.windows)

    def epsilon_schedule(self, config: Any) -> List[float]:
        count = len(self.windows)
        epsilon = (
            self.epsilon_per_window
            if self.epsilon_per_window is not None
            else config.output_epsilon / count
        )
        if whole_releases(config.output_epsilon, epsilon) < count:
            raise ConfigurationError(
                f"{count} windows at epsilon {epsilon} per window exceed the "
                f"run's release budget {config.output_epsilon}"
            )
        return [epsilon] * count


def resolve_release_policy(
    release: Union[str, ReleasePolicy] = "oneshot",
    windows: Optional[Sequence[int]] = None,
    window_epsilon: Optional[float] = None,
) -> ReleasePolicy:
    """The one place engine options become a :class:`ReleasePolicy`.

    Accepts the string options every engine constructor (and the scenario
    AST) exposes, or a ready policy instance for programmatic callers.
    """
    if isinstance(release, ReleasePolicy):
        if windows is not None or window_epsilon is not None:
            raise ConfigurationError(
                "pass windows/window_epsilon through the policy object, "
                "not alongside it"
            )
        return release
    if release == "oneshot":
        if windows is not None or window_epsilon is not None:
            raise ConfigurationError(
                "windows/window_epsilon require release='windowed'"
            )
        return OneShotRelease()
    if release == "windowed":
        if windows is None:
            raise ConfigurationError("release='windowed' requires windows=[...]")
        return WindowedRelease(tuple(windows), window_epsilon)
    raise ConfigurationError(
        f"unknown release policy {release!r}; choose 'oneshot' or 'windowed'"
    )


# ------------------------------------------------------------ run state --


@dataclass
class ReleaseRecord:
    """One published output: what window ``j`` released, and at what cost."""

    window: int
    rounds: int
    end: int
    value: float
    pre_noise: float
    noise_raw: Optional[int]
    epsilon: float


@dataclass
class RunState:
    """The state a run carries across stages (and, windowed, across windows).

    The engine-specific resumption payload — pending outboxes, share
    contexts — lives inside the :class:`LifecycleCore`; this object holds
    the engine-independent bookkeeping the driver and tests read.
    """

    engine: str
    program: str
    windows: List[int]
    rounds_done: int = 0
    window: int = 0
    trajectory: List[float] = field(default_factory=list)
    phases: PhaseTimer = field(default_factory=PhaseTimer)
    releases: List[ReleaseRecord] = field(default_factory=list)


class LifecycleCore(ABC):
    """The five stage bodies a backend plugs into :func:`run_lifecycle`."""

    @abstractmethod
    def setup(self, state: RunState) -> None:
        """Build whatever the round loop needs (graph state, shares, pools)."""

    @abstractmethod
    def run_window(self, state: RunState, rounds: int, first: bool) -> None:
        """Advance the §3.6 schedule by ``rounds`` computation steps.

        ``first`` distinguishes the initial window (which starts from the
        freshly initialized state) from resumed ones (which first route
        the pending outboxes of the previous window's last step).
        """

    @abstractmethod
    def aggregate(self, state: RunState) -> float:
        """Current pre-noise aggregate of the designated register."""

    def noise(
        self, state: RunState, pre_noise: float, epsilon: Optional[float], end: int
    ) -> Tuple[float, Optional[int]]:
        """Noise the aggregate for release; ``epsilon=None`` means the run
        releases nothing and the exact value passes through untouched."""
        return pre_noise, None

    @abstractmethod
    def finalize(self, state: RunState, started: float) -> Any:
        """Assemble the backend's RunResult from the completed state."""


# --------------------------------------------------------------- driver --


def run_lifecycle(
    engine: Any,
    core: LifecycleCore,
    program: Any,
    config: Any,
    iterations: int,
    accountant: Any = None,
) -> Any:
    """Drive one run through the staged spine.

    Owns everything the backends used to duplicate: the ``run`` trace
    span, wall-clock capture, budget admission (one ledger entry per
    release window, refunded for windows that never released if the run
    fails), the ``stage:*`` phase timings, and the final
    :func:`~repro.obs.metrics.record_run` absorption. Released fields
    (aggregate / pre-noise / noise / epsilon / per-window records) are
    stamped onto the core's result uniformly, so a windowed run reports
    its last window exactly like a one-shot run reports its only one.
    """
    policy = engine.release_policy
    windows = policy.window_schedule(iterations)
    releasing = bool(engine.releases_output)
    schedule = release_schedule(engine, config, engine.release_label(program.name))
    recorder = current_recorder()
    with recorder.span("run", engine=engine.name, program=program.name):
        started = clock_now()
        state = RunState(
            engine=engine.name, program=program.name, windows=list(windows)
        )
        admitted: Optional[Precharge] = precharge(accountant, schedule)
        try:
            with timed_phase(state.phases, "stage:setup", span=False):
                core.setup(state)
            for index, rounds in enumerate(windows):
                with timed_phase(state.phases, "stage:rounds", span=False):
                    core.run_window(state, rounds, first=index == 0)
                state.rounds_done += rounds
                with timed_phase(state.phases, "stage:aggregate", span=False):
                    pre_noise = core.aggregate(state)
                epsilon = schedule[index][1] if releasing else None
                with timed_phase(state.phases, "stage:noise", span=False):
                    value, noise_raw = core.noise(
                        state, pre_noise, epsilon, state.rounds_done
                    )
                with timed_phase(state.phases, "stage:release", span=False):
                    if releasing:
                        state.releases.append(
                            ReleaseRecord(
                                window=index,
                                rounds=rounds,
                                end=state.rounds_done,
                                value=value,
                                pre_noise=pre_noise,
                                noise_raw=noise_raw,
                                epsilon=epsilon or 0.0,
                            )
                        )
                        if admitted is not None:
                            admitted.confirm()
                state.window = index + 1
        except BaseException:
            # windows that never released give their pre-charge back; the
            # budget pays for published outputs, not failed attempts
            if admitted is not None:
                admitted.refund()
            raise
        result = core.finalize(state, started)
        if state.releases:
            last = state.releases[-1]
            result.aggregate = last.value
            result.pre_noise_aggregate = last.pre_noise
            result.noise_raw = last.noise_raw
            result.epsilon = sum(eps for _, eps in schedule)
            result.releases = list(state.releases)
            if len(windows) > 1:
                result.extras["windows"] = float(len(windows))
        record_run(result)
        return result
