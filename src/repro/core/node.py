"""A simulated participant node.

Each participant runs one node (§3.3): it owns a vertex's private data,
holds ElGamal key material, participates in the blocks it was assigned to,
and meters its traffic. The engine orchestrates; the node is deliberately
a passive container of per-participant secrets so that tests can reason
about exactly which node knows what.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.rng import DeterministicRNG
from repro.transfer.certificates import BlockCertificate, MemberKeys, generate_member_keys

__all__ = ["SimulatedNode"]


@dataclass
class SimulatedNode:
    """One participant: keys, neighbor keys, and received certificates."""

    node_id: int
    member_keys: MemberKeys
    #: scalar neighbor keys, one per certificate slot (``D`` of them, §3.4)
    neighbor_keys: List[int] = field(default_factory=list)
    #: certificates received from neighbors, keyed by the *neighbor's* id
    #: (or by ``("self", slot)`` for retained leftovers in padded mode);
    #: used when this node's block sends a message to that neighbor
    neighbor_certificates: Dict[object, BlockCertificate] = field(default_factory=dict)
    #: ids of the blocks this node is a member of (fills in during setup)
    block_memberships: List[int] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        node_id: int,
        elgamal: ExponentialElGamal,
        message_bits: int,
        degree_bound: int,
        rng: DeterministicRNG,
    ) -> "SimulatedNode":
        """Generate a node's key material (the §3.4 per-node inputs)."""
        node_rng = rng.fork(f"node-{node_id}")
        member_keys = generate_member_keys(elgamal, message_bits, node_rng)
        neighbor_keys = [
            elgamal.group.random_scalar(node_rng) for _ in range(degree_bound)
        ]
        return cls(
            node_id=node_id,
            member_keys=member_keys,
            neighbor_keys=neighbor_keys,
        )
