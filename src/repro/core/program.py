"""The DStress programming model: vertex programs (§3.1).

A vertex program consists of (1) a graph, (2) per-vertex initial state and
an update function, (3) an iteration count ``n``, (4) an aggregation
function, (5) a no-op message and (6) a sensitivity bound. Update functions
must be expressible as Boolean circuits with no data-dependent control flow
(§3.7), so a :class:`VertexProgram` here provides the update in two forms:

* ``float_update`` — plain Python over floats, the semantic reference;
* ``build_update_circuit`` — the Boolean circuit the secure engine
  evaluates in MPC, over L-bit fixed point.

Both forms take the vertex state (named registers) and ``D`` incoming
message slots, and produce the new state plus ``D`` outgoing messages; the
engines pad unused slots with the no-op message so the circuit shape (and
hence the MPC transcript) is independent of the actual degree.

The aggregation function is restricted to a *noised sum of one designated
state register* — exactly what both systemic-risk programs need (Figure 2)
and what keeps the aggregation block's circuit small (§3.6).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.graph import VertexView
from repro.exceptions import SensitivityError
from repro.mpc.circuit import Circuit
from repro.mpc.fixedpoint import FixedPointBuilder, FixedPointFormat

__all__ = ["VertexProgram", "ProgramSpec"]

#: The no-op message value (§3.1): vertices always emit D messages, padding
#: with this value, so communication patterns leak nothing.
NO_OP_MESSAGE = 0.0


@dataclass(frozen=True)
class ProgramSpec:
    """Static parameters of one program execution."""

    iterations: int
    sensitivity: float
    degree_bound: int

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise SensitivityError("iteration count cannot be negative")
        if self.sensitivity < 0:
            raise SensitivityError("sensitivity bound cannot be negative")


class VertexProgram(ABC):
    """Base class for vertex programs runnable on both engines."""

    def __init__(self, fmt: FixedPointFormat | None = None) -> None:
        self.fmt = fmt if fmt is not None else FixedPointFormat()

    # -- static description --------------------------------------------------

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in logs and benchmark output."""

    @property
    @abstractmethod
    def sensitivity(self) -> float:
        """The §3.1 sensitivity bound of the aggregate, in units of the
        dollar-DP granularity T."""

    @property
    @abstractmethod
    def aggregate_register(self) -> str:
        """State register summed by the aggregation function A."""

    @abstractmethod
    def state_registers(self, degree_bound: int) -> List[str]:
        """Ordered names of the state registers for a given degree bound.

        Constant per-edge data (debts, cross-holdings, ...) are registers
        too: the block holds shares of them and the update circuit passes
        them through, so no member ever sees them in the clear.
        """

    # -- semantics -----------------------------------------------------------

    @abstractmethod
    def initial_state(self, vertex: VertexView, degree_bound: int) -> Dict[str, float]:
        """INIT (Figure 2): the state the participant loads for its vertex."""

    @abstractmethod
    def float_update(
        self,
        state: Dict[str, float],
        messages: List[float],
        degree_bound: int,
    ) -> Tuple[Dict[str, float], List[float]]:
        """UPDATE + COMMUNICATE-WITH over floats (the reference semantics).

        ``messages`` has exactly ``degree_bound`` entries (padded with the
        no-op message); returns the new state and ``degree_bound`` outgoing
        messages (padded likewise).
        """

    @abstractmethod
    def build_update_circuit(self, degree_bound: int) -> Circuit:
        """The Boolean circuit form of one computation step.

        Input buses: one per state register (named as in
        :meth:`state_registers`) plus ``msg_in_0 .. msg_in_{D-1}``; output
        buses: the same register names plus ``msg_out_0 .. msg_out_{D-1}``.
        All buses are ``fmt.total_bits`` wide.
        """

    # -- shared helpers ---------------------------------------------------------

    def new_builder(self) -> FixedPointBuilder:
        return FixedPointBuilder(self.fmt)

    def encode_state(self, state: Dict[str, float]) -> Dict[str, int]:
        """Quantize a float state into raw fixed-point register values."""
        return {name: self.fmt.encode(value) for name, value in state.items()}

    def decode_state(self, raw: Dict[str, int]) -> Dict[str, float]:
        return {name: self.fmt.decode(value) for name, value in raw.items()}

    def circuit_update(
        self,
        raw_state: Dict[str, int],
        raw_messages: List[int],
        degree_bound: int,
        circuit: Circuit | None = None,
    ) -> Tuple[Dict[str, int], List[int]]:
        """Evaluate the update circuit in the clear on raw register values.

        This is the bit-exact oracle for the secure engine: GMW evaluation
        of the same circuit on shares must reconstruct to these outputs.
        """
        if circuit is None:
            circuit = self.build_update_circuit(degree_bound)
        inputs = {name: self.fmt.to_unsigned(value) for name, value in raw_state.items()}
        for slot in range(degree_bound):
            inputs[f"msg_in_{slot}"] = self.fmt.to_unsigned(raw_messages[slot])
        outputs = circuit.evaluate(inputs)
        new_state = {
            name: self.fmt.from_unsigned(outputs[name])
            for name in self.state_registers(degree_bound)
        }
        out_messages = [
            self.fmt.from_unsigned(outputs[f"msg_out_{slot}"])
            for slot in range(degree_bound)
        ]
        return new_state, out_messages
