"""The round scheduler: the §3.6 execution skeleton, engine-independent.

Every DStress execution — float reference, clear circuit evaluation, the
secure protocol's simulation harness, and the sharded backend — walks the
same schedule: ``n`` computation+communication rounds (update every
vertex, route the out-slot messages to the matching in-slots, observe the
aggregate) followed by one final computation step. This module owns that
skeleton so backends only supply the three varying pieces:

* ``superstep`` — advance *all* vertices one computation step. The
  plaintext engines update vertices sequentially
  (:func:`sequential_superstep`); the sharded engine fans the same work
  across a process pool and merges at the barrier.
* ``route`` — deliver outboxes to inboxes. :func:`route_messages`
  implements the §3.6 slot-to-slot delivery for any payload type (floats
  or raw fixed-point words).
* ``observe`` — record the designated aggregate after each round (the
  convergence trajectory).

Determinism contract: :func:`run_rounds` calls ``superstep`` exactly
``iterations + 1`` times with identical inputs regardless of who computes
the superstep, so two backends whose supersteps are pointwise equal
produce bit-identical trajectories and final states.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, TypeVar

from repro.core.graph import DistributedGraph
from repro.exceptions import ConfigurationError

__all__ = ["run_rounds", "route_messages", "sequential_superstep"]

#: Per-vertex state payload (float registers or raw fixed-point registers).
S = TypeVar("S")
#: Message payload (float or raw fixed-point word).
M = TypeVar("M")

#: states, inboxes -> new states, outboxes (all keyed by vertex id).
Superstep = Callable[[Dict[int, S], Dict[int, List[M]]], Tuple[Dict[int, S], Dict[int, List[M]]]]


def run_rounds(
    superstep: Superstep,
    route: Callable[[Dict[int, List[M]]], Dict[int, List[M]]],
    observe: Callable[[Dict[int, S]], float],
    states: Dict[int, S],
    inboxes: Dict[int, List[M]],
    iterations: int,
) -> Tuple[Dict[int, S], List[float]]:
    """Drive the §3.6 schedule and return (final states, trajectory).

    ``iterations`` computation+communication rounds, then one final
    computation step whose outgoing messages are discarded — exactly the
    shape both plaintext modes always had, now shared by every backend.
    """
    if iterations < 0:
        raise ConfigurationError("iteration count cannot be negative")
    trajectory: List[float] = []
    for _ in range(iterations):
        states, outboxes = superstep(states, inboxes)
        inboxes = route(outboxes)
        trajectory.append(observe(states))
    states, _ = superstep(states, inboxes)
    trajectory.append(observe(states))
    return states, trajectory


def route_messages(
    graph: DistributedGraph,
    outboxes: Dict[int, List[M]],
    fill: M,
) -> Dict[int, List[M]]:
    """Deliver out-slot messages to the matching in-slots (§3.6).

    Unused in-slots hold ``fill`` (the encoded no-op message), so every
    vertex always receives exactly ``degree_bound`` messages and the
    communication pattern leaks nothing about the true degree.
    """
    inboxes = {v: [fill] * graph.degree_bound for v in graph.vertex_ids}
    for view in graph.vertices():
        for out_slot, neighbor in enumerate(view.out_neighbors):
            in_slot = graph.vertex(neighbor).in_slot(view.vertex_id)
            inboxes[neighbor][in_slot] = outboxes[view.vertex_id][out_slot]
    return inboxes


def sequential_superstep(
    vertex_ids: List[int],
    update: Callable[[int, S, List[M]], Tuple[S, List[M]]],
) -> Superstep:
    """A superstep that updates vertices one by one, in id order.

    The id order fixes dict insertion order of the produced state map,
    which in turn fixes the float summation order of the observers — the
    property the sharded backend's merge step must (and does) preserve to
    stay bit-identical.
    """

    def superstep(states, inboxes):
        new_states: Dict[int, S] = {}
        outboxes: Dict[int, List[M]] = {}
        for vertex_id in vertex_ids:
            new_states[vertex_id], outboxes[vertex_id] = update(
                vertex_id, states[vertex_id], inboxes[vertex_id]
            )
        return new_states, outboxes

    return superstep
