"""The round scheduler: the §3.6 execution skeleton, engine-independent.

Every DStress execution — float reference, clear circuit evaluation, the
secure protocol's simulation harness, and the sharded backend — walks the
same schedule: ``n`` computation+communication rounds (update every
vertex, route the out-slot messages to the matching in-slots, observe the
aggregate) followed by one final computation step. This module owns that
skeleton so backends only supply the three varying pieces:

* ``superstep`` — advance *all* vertices one computation step. The
  plaintext engines update vertices sequentially
  (:func:`sequential_superstep`); the sharded engine fans the same work
  across a process pool and merges at the barrier.
* ``route`` — deliver outboxes to inboxes. :func:`route_messages`
  implements the §3.6 slot-to-slot delivery for any payload type (floats
  or raw fixed-point words). Since the transport subsystem landed it is a
  thin wrapper over :meth:`~repro.core.transport.Transport.deliver_outboxes`;
  pass ``transport=`` to route a run over a metered/simulated bus instead
  of the default in-memory one.
* ``observe`` — record the designated aggregate after each round (the
  convergence trajectory).

Determinism contract: :func:`run_rounds` calls ``superstep`` exactly
``iterations + 1`` times with identical inputs regardless of who computes
the superstep, so two backends whose supersteps are pointwise equal
produce bit-identical trajectories and final states.

:func:`run_rounds_async` is the same schedule reshaped for the async
engine: one pipeline per vertex over a :class:`~repro.core.transport.Transport`,
where a vertex starts its round ``r + 1`` computation as soon as *its own*
round-``r`` inbox is complete — overlapping computation of ready vertices
with in-flight deliveries of slow ones — while trajectories and final
states are still assembled in sorted-vertex order, so the result is
bit-identical to :func:`run_rounds` for pointwise-equal updates.
"""

from __future__ import annotations

import asyncio
import copy
from typing import Callable, Dict, List, Optional, Set, Tuple, TypeVar

from repro.core.graph import DistributedGraph
from repro.core.transport import InMemoryTransport, Transport
from repro.exceptions import ConfigurationError
from repro.obs.trace import current_recorder, timed_phase
from repro.simulation.netsim import PhaseTimer

__all__ = [
    "run_rounds",
    "run_rounds_async",
    "route_messages",
    "sequential_superstep",
    "RoundLoop",
    "SecureRoundScheduler",
]

#: Default bus behind :func:`route_messages`: stateless for the synchronous
#: full-round path, so one shared instance serves every sequential engine.
_DEFAULT_TRANSPORT = InMemoryTransport()

#: Per-vertex state payload (float registers or raw fixed-point registers).
S = TypeVar("S")
#: Message payload (float or raw fixed-point word).
M = TypeVar("M")

#: states, inboxes -> new states, outboxes (all keyed by vertex id).
Superstep = Callable[[Dict[int, S], Dict[int, List[M]]], Tuple[Dict[int, S], Dict[int, List[M]]]]


def run_rounds(
    superstep: Superstep,
    route: Callable[[Dict[int, List[M]]], Dict[int, List[M]]],
    observe: Callable[[Dict[int, S]], float],
    states: Dict[int, S],
    inboxes: Dict[int, List[M]],
    iterations: int,
    phases: Optional[PhaseTimer] = None,
    *,
    first_round: int = 0,
    resume_outboxes: Optional[Dict[int, List[M]]] = None,
) -> Tuple[Dict[int, S], List[float], Dict[int, List[M]]]:
    """Drive the §3.6 schedule; return (final states, trajectory, outboxes).

    ``iterations`` computation+communication rounds, then one final
    computation step — exactly the shape both plaintext modes always had,
    now shared by every backend. The final step's outgoing messages are
    returned (not routed): a one-shot run discards them, a windowed run
    hands them back as ``resume_outboxes`` to continue the very same
    schedule across release windows.

    Resumption contract: calling once with ``iterations=a+b`` is
    step-for-step identical to calling with ``iterations=a``, then again
    with ``iterations=b``, ``resume_outboxes=`` the first call's returned
    outboxes and ``first_round=a+1``. The resumed call first routes the
    pending outboxes (the communication half of computation step ``a``,
    spanned as round ``first_round - 1``), then runs ``b - 1`` full
    rounds and the final computation step — so supersteps see the same
    inputs in the same order and the trajectory/final states concatenate
    bit-identically.

    ``phases`` (optional) accumulates per-phase wall-clock through the
    shared :func:`~repro.obs.trace.timed_phase` path — the same recorder
    code path every engine uses, so ``RunResult.phases`` means the same
    thing everywhere. Telemetry reads only the injectable clock: it never
    touches the RNG or reorders work, so traced runs stay bit-identical.
    """
    if iterations < 0:
        raise ConfigurationError("iteration count cannot be negative")
    recorder = current_recorder()
    trajectory: List[float] = []
    round_index = first_round
    if resume_outboxes is not None:
        if iterations < 1:
            raise ConfigurationError(
                "a resumed window needs at least one computation step"
            )
        with recorder.span("round", round=round_index - 1):
            with timed_phase(phases, "communication"):
                inboxes = route(resume_outboxes)
        remaining = iterations - 1
    else:
        remaining = iterations
    for _ in range(remaining):
        with recorder.span("round", round=round_index):
            with timed_phase(phases, "computation"):
                states, outboxes = superstep(states, inboxes)
            with timed_phase(phases, "communication"):
                inboxes = route(outboxes)
        trajectory.append(observe(states))
        round_index += 1
    with recorder.span("round", round=round_index):
        with timed_phase(phases, "computation"):
            states, final_outboxes = superstep(states, inboxes)
    trajectory.append(observe(states))
    return states, trajectory, final_outboxes


def route_messages(
    graph: DistributedGraph,
    outboxes: Dict[int, List[M]],
    fill: M,
    transport: Optional[Transport] = None,
) -> Dict[int, List[M]]:
    """Deliver out-slot messages to the matching in-slots (§3.6).

    Unused in-slots hold ``fill`` (the encoded no-op message), so every
    vertex always receives exactly ``degree_bound`` messages and the
    communication pattern leaks nothing about the true degree.

    Delivery is transport-backed: ``transport=None`` routes over the
    shared zero-delay :class:`~repro.core.transport.InMemoryTransport`
    (exactly the historical dict shuffle); passing a
    :class:`~repro.core.transport.SimulatedWanTransport` meters the same
    round into its :class:`~repro.simulation.netsim.TrafficMeter` and
    accounts the link delays without changing a single payload.
    """
    bus = transport if transport is not None else _DEFAULT_TRANSPORT
    return bus.deliver_outboxes(graph, outboxes, fill)


def sequential_superstep(
    vertex_ids: List[int],
    update: Callable[[int, S, List[M]], Tuple[S, List[M]]],
) -> Superstep:
    """A superstep that updates vertices one by one, in id order.

    The id order fixes dict insertion order of the produced state map,
    which in turn fixes the float summation order of the observers — the
    property the sharded backend's merge step must (and does) preserve to
    stay bit-identical.
    """

    def superstep(states, inboxes):
        new_states: Dict[int, S] = {}
        outboxes: Dict[int, List[M]] = {}
        for vertex_id in vertex_ids:
            new_states[vertex_id], outboxes[vertex_id] = update(
                vertex_id, states[vertex_id], inboxes[vertex_id]
            )
        return new_states, outboxes

    return superstep


class RoundLoop:
    """A resumable handle over :func:`run_rounds`.

    Owns the (states, inboxes, pending outboxes) triple between windows so
    a release policy can interleave aggregate/noise/release stages with
    the round schedule without the engine re-deriving resumption state.
    ``advance(n)`` runs ``n`` more computation steps and returns the new
    trajectory entries; span numbering continues exactly where the
    previous window stopped, so a windowed run's trace is the one-shot
    trace with extra release stages in between.
    """

    def __init__(
        self,
        superstep: Superstep,
        route: Callable[[Dict[int, List[M]]], Dict[int, List[M]]],
        observe: Callable[[Dict[int, S]], float],
        states: Dict[int, S],
        inboxes: Dict[int, List[M]],
        phases: Optional[PhaseTimer] = None,
    ) -> None:
        self.superstep = superstep
        self.route = route
        self.observe = observe
        self.states = states
        self.inboxes = inboxes
        self.phases = phases
        self.steps = 0
        self.pending: Optional[Dict[int, List[M]]] = None
        self.trajectory: List[float] = []

    def advance(self, rounds: int) -> List[float]:
        """Run ``rounds`` more computation steps; return their trajectory."""
        if self.pending is None:
            self.states, trajectory, self.pending = run_rounds(
                self.superstep,
                self.route,
                self.observe,
                self.states,
                self.inboxes,
                rounds,
                phases=self.phases,
            )
        else:
            self.states, trajectory, self.pending = run_rounds(
                self.superstep,
                self.route,
                self.observe,
                self.states,
                self.inboxes,
                rounds,
                phases=self.phases,
                first_round=self.steps + 1,
                resume_outboxes=self.pending,
            )
        self.steps += rounds
        self.trajectory.extend(trajectory)
        return trajectory


async def run_rounds_async(
    graph: DistributedGraph,
    update: Callable[[int, S, List[M]], Tuple[S, List[M]]],
    observe: Callable[[Dict[int, S]], float],
    states: Dict[int, S],
    inboxes: Dict[int, List[M]],
    iterations: int,
    transport: Transport,
    fill: M,
    max_tasks: Optional[int] = None,
    overlap: bool = True,
    phases: Optional[PhaseTimer] = None,
    first_round: int = 0,
    resume_outboxes: Optional[Dict[int, List[M]]] = None,
) -> Tuple[Dict[int, S], List[float], Dict[int, List[M]]]:
    """The §3.6 schedule as per-vertex pipelines over a transport.

    Returns ``(final_states, trajectory, final_outboxes)`` with the same
    resumption contract as :func:`run_rounds`: pass the previous window's
    ``final_outboxes`` back as ``resume_outboxes`` (with ``first_round``
    set to the steps already taken plus one) to continue the schedule
    across release windows. The pending outboxes are routed synchronously
    through :meth:`~repro.core.transport.Transport.deliver_outboxes`
    before the per-vertex pipelines start — the §3.6 step boundary at a
    window edge is a full barrier anyway, so nothing is lost to overlap.

    Each vertex runs its own task: compute round ``r``, push the round's
    out-edge messages onto the bus, then await its complete round-``r``
    inbox (:meth:`~repro.core.transport.Transport.gather_round` — the
    round barrier) before computing round ``r + 1``. Nothing synchronizes
    *across* vertices between rounds, so a vertex whose neighbors already
    delivered computes ahead while slow links are still in flight — the
    communication/computation overlap the paper's WAN deployment assumes.

    ``max_tasks`` bounds how many vertex pipelines may occupy the compute
    section at once: an :class:`asyncio.Semaphore` around the compute
    step, with an explicit suspension point inside so the gate genuinely
    contends (a synchronous-only critical section would always release
    before anyone else could attempt acquire, making the bound a no-op).
    Different ``max_tasks`` values therefore produce genuinely different
    task interleavings — and identical results, which is what the parity
    matrix asserts. The gate covers the compute section only; the message
    waits must stay concurrent or a one-task schedule would deadlock on
    its own barrier. ``overlap=False`` degrades to the fully
    sequential schedule — every send awaited one at a time, in vertex-id
    order — which is the honest WAN baseline the async engine is measured
    against.

    Bit-identity argument: a vertex's round-``r`` inbox is complete if and
    only if it holds exactly the deliveries ``route_messages`` would have
    produced (transports never alter payloads or slots), so every
    ``update`` call sees the same ``(state, inbox)`` it sees under
    :func:`run_rounds`; per-round states are recorded per vertex and
    re-assembled in sorted-vertex order before ``observe`` runs, so float
    summation order matches the sequential engines exactly.
    """
    if iterations < 0:
        raise ConfigurationError("iteration count cannot be negative")
    if max_tasks is not None and max_tasks < 1:
        raise ConfigurationError("max_tasks must be at least 1")
    # Note on phase semantics under overlap: per-pipeline communication
    # waits run concurrently, so the summed "communication" seconds can
    # legitimately exceed wall-clock — that over-count *is* the overlap
    # the engine exists to exploit (documented in DESIGN.md).
    recorder = current_recorder()
    vertex_ids = graph.vertex_ids
    transport.open(graph, fill)
    if resume_outboxes is not None:
        if iterations < 1:
            raise ConfigurationError(
                "a resumed window needs at least one computation step"
            )
        # the communication half of the previous window's last computation
        # step: a full barrier sits at the window edge anyway, so routing
        # it synchronously loses no overlap
        with recorder.span("round", round=first_round - 1):
            with timed_phase(phases, "communication"):
                inboxes = transport.deliver_outboxes(graph, resume_outboxes, fill)
        full_rounds = iterations - 1
    else:
        full_rounds = iterations
    # (out_slot -> (dst, in_slot)) per vertex, precomputed once: senders
    # resolve the destination slot, the transport only moves payloads.
    routes: Dict[int, List[Tuple[int, int]]] = {
        vid: [
            (dst, graph.vertex(dst).in_slot(vid))
            for dst in graph.vertex(vid).out_neighbors
        ]
        for vid in vertex_ids
    }
    # round -> vertex -> state-after-that-computation-step. A round is
    # observed (in sorted-vertex order, preserving the reference float
    # summation order) as soon as every vertex has recorded it, and its
    # state map is freed — vertices record their rounds in order, so
    # rounds complete in order and retained state is bounded by how far
    # the fastest pipeline runs ahead of the slowest (O(vertices) when
    # progress is balanced; a source vertex with no in-edges can race
    # ahead and retain one entry per round it leads by).
    round_states: List[Dict[int, S]] = [{} for _ in range(full_rounds + 1)]
    num_vertices = len(vertex_ids)
    trajectory: List[float] = []
    final_outboxes: Dict[int, List[M]] = {}

    def record(round_index: int, vid: int, state: S) -> None:
        # snapshot, don't alias: observation is deferred until the whole
        # round completes, and an update that mutates its state dict in
        # place (instead of returning a fresh one) would otherwise leak a
        # fast vertex's future rounds into an earlier observation — the
        # sequential scheduler observes immediately, so async must see
        # the same values. A shallow copy covers the flat register maps
        # every engine uses.
        round_states[round_index][vid] = copy.copy(state)
        next_round = len(trajectory)
        while next_round <= full_rounds and len(round_states[next_round]) == num_vertices:
            per_round = round_states[next_round]
            trajectory.append(observe({v: per_round[v] for v in vertex_ids}))
            if next_round < full_rounds:  # the final round backs final_states
                round_states[next_round] = {}
            next_round += 1

    if overlap:
        gate = asyncio.Semaphore(max_tasks) if max_tasks is not None else None

        async def vertex_pipeline(vid: int) -> None:
            state = states[vid]
            inbox = inboxes[vid]
            for round_index in range(full_rounds):
                with recorder.span("round", round=first_round + round_index, vertex=vid):
                    if gate is not None:
                        async with gate:
                            # the yield makes the gate real: the holder
                            # suspends here, so other pipelines actually
                            # queue on acquire while this slot is occupied
                            await asyncio.sleep(0)
                            with timed_phase(phases, "computation"):
                                state, outbox = update(vid, state, inbox)
                    else:
                        with timed_phase(phases, "computation"):
                            state, outbox = update(vid, state, inbox)
                    record(round_index, vid, state)
                    sends = [
                        transport.send(vid, dst, in_slot, outbox[out_slot], round_index)
                        for out_slot, (dst, in_slot) in enumerate(routes[vid])
                    ]
                    with timed_phase(phases, "communication"):
                        if sends:
                            await asyncio.gather(*sends)
                        inbox = await transport.gather_round(vid, round_index)
            with recorder.span("round", round=first_round + full_rounds, vertex=vid):
                with timed_phase(phases, "computation"):
                    state, final_outboxes[vid] = update(vid, state, inbox)
                record(full_rounds, vid, state)

        # first failure cancels the siblings: a transport fault (dropped
        # delivery, dead peer) raises in one pipeline while the others are
        # parked on their own barriers — on a real-socket bus each would
        # otherwise sit out its full I/O timeout before the error surfaces
        tasks = [asyncio.ensure_future(vertex_pipeline(vid)) for vid in vertex_ids]
        try:
            await asyncio.gather(*tasks)
        except BaseException:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
    else:
        # Sequential reference schedule over the same bus: compute every
        # vertex, then await every send one at a time, then gather — no
        # overlap anywhere, so wall-clock pays the full sum of link delays.
        current = dict(states)
        current_inboxes = dict(inboxes)
        for round_index in range(full_rounds):
            with recorder.span("round", round=first_round + round_index):
                outboxes: Dict[int, List[M]] = {}
                with timed_phase(phases, "computation"):
                    for vid in vertex_ids:
                        current[vid], outboxes[vid] = update(
                            vid, current[vid], current_inboxes[vid]
                        )
                        record(round_index, vid, current[vid])
                with timed_phase(phases, "communication"):
                    for vid in vertex_ids:
                        for out_slot, (dst, in_slot) in enumerate(routes[vid]):
                            await transport.send(
                                vid, dst, in_slot, outboxes[vid][out_slot], round_index
                            )
                    for vid in vertex_ids:
                        current_inboxes[vid] = await transport.gather_round(
                            vid, round_index
                        )
        with recorder.span("round", round=first_round + full_rounds):
            with timed_phase(phases, "computation"):
                for vid in vertex_ids:
                    current[vid], final_outboxes[vid] = update(
                        vid, current[vid], current_inboxes[vid]
                    )
                    record(full_rounds, vid, current[vid])

    final_states = {vid: round_states[full_rounds][vid] for vid in vertex_ids}
    return final_states, trajectory, final_outboxes


class SecureRoundScheduler:
    """Overlap per-block crypto deliveries with the blocks still computing.

    The secure engine's rounds have a different shape from the plaintext
    ones: the expensive unit is not a vertex update but a *block batch* —
    the OT-extension bits a block's GMW evaluation puts on the wire, or a
    §3.5 transfer's aggregates. The values of those batches must be
    computed in the sequential engine's exact order (every fork of the
    :class:`~repro.crypto.rng.DeterministicRNG` consumes parent stream, so
    reordering crypto work would change the transcript and break
    bit-identity with ``engine="secure"``); what *can* overlap is the
    wire time. This scheduler is that overlap: :meth:`dispatch` hands a
    finished batch's per-link bytes to the bus as an asyncio task and
    returns to the caller immediately, so block ``b + 1``'s OT
    computation proceeds while block ``b``'s bytes are still in flight on
    a :class:`~repro.core.transport.SimulatedWanTransport`;
    :meth:`barrier` is the §3.6 step boundary — computation steps and
    communication steps never interleave.

    ``max_tasks`` bounds how many batch deliveries may be in flight at
    once (an :class:`asyncio.Semaphore` acquired inside the task, so
    dispatch itself never blocks the computing coroutine).
    ``overlap=False`` awaits every link of every batch one at a time —
    the honest sequential baseline, paying the full sum of link delays —
    which is what ``benchmarks/bench_secure_async.py`` measures the
    overlap against.
    """

    def __init__(
        self,
        transport: Transport,
        max_tasks: Optional[int] = None,
        overlap: bool = True,
    ) -> None:
        if max_tasks is not None and max_tasks < 1:
            raise ConfigurationError("max_tasks must be at least 1")
        self.transport = transport
        self.overlap = bool(overlap)
        self._gate = asyncio.Semaphore(max_tasks) if max_tasks is not None else None
        self._pending: Set[asyncio.Task] = set()

    async def _deliver(
        self, link_bytes: Dict[Tuple[int, int], float], round_index: int, kind: str
    ) -> None:
        conveys = [
            self.transport.convey(src, dst, num_bytes, round_index, kind=kind)
            for (src, dst), num_bytes in sorted(link_bytes.items())
        ]
        if not conveys:
            return
        if self._gate is None:
            await asyncio.gather(*conveys)
        else:
            async with self._gate:
                await asyncio.gather(*conveys)

    async def dispatch(
        self,
        link_bytes: Dict[Tuple[int, int], float],
        round_index: int,
        kind: str = "crypto",
    ) -> None:
        """Put one block batch on the wire.

        Overlapping mode schedules the delivery and yields once (so the
        new task actually enters its link waits before the caller resumes
        computing); sequential mode awaits every link in sorted order.
        """
        if not self.overlap:
            for (src, dst), num_bytes in sorted(link_bytes.items()):
                await self.transport.convey(src, dst, num_bytes, round_index, kind=kind)
            return
        task = asyncio.ensure_future(self._deliver(link_bytes, round_index, kind))
        self._pending.add(task)
        task.add_done_callback(self._pending.discard)
        # let the fresh task reach its first await so its link delays are
        # genuinely in flight while the caller's next block computes
        await asyncio.sleep(0)

    async def barrier(self) -> None:
        """Await all in-flight deliveries (the §3.6 step boundary).

        Propagates the first delivery failure — a faulted convey raises
        here, at the step that depended on it, instead of hanging. Every
        task is awaited even on failure (``return_exceptions=True``), so
        sibling faults are consumed rather than logged as unretrieved.
        """
        pending = list(self._pending)
        self._pending.clear()
        if not pending:
            return
        outcomes = await asyncio.gather(*pending, return_exceptions=True)
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome

    async def drain(self) -> None:
        """Consume every in-flight delivery, suppressing their failures.

        The cleanup path for a driver already unwinding another error:
        abandoned tasks would otherwise surface as "exception was never
        retrieved" noise over the real traceback.
        """
        pending = list(self._pending)
        self._pending.clear()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
