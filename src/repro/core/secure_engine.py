"""The DStress secure execution engine (§3.3–§3.6).

Runs a vertex program over a distributed graph such that no coalition of
at most ``k`` nodes learns anything beyond the differentially-private
output:

1. **Setup** — the trusted party assigns blocks and issues block
   certificates; each node forwards certificates to its in-neighbors.
2. **Initialization** — every node XOR-shares its vertex's initial state
   (and ``D`` no-op inbox slots) among its block.
3. **Computation steps** — each block evaluates the program's update
   circuit under GMW; inputs and outputs stay shared.
4. **Communication steps** — each outgoing message's shares move along the
   edge through the §3.5 transfer protocol (subshares, exponential
   ElGamal, even geometric noise), landing as fresh shares at the
   receiving block.
5. **Aggregation + noising** — contribution registers are re-shared to
   the aggregation tree; the root block samples two-sided geometric noise
   inside MPC (Dwork-style bit sampler) and reveals only the noised sum.

All network traffic is metered per node *and per directed link*; timings
are recorded per phase. The engine is a faithful simulation: every byte it
reports corresponds to a protocol message of the real deployment.

Two drivers share the protocol code. :meth:`SecureEngine.run` is the
historical sequential driver. :meth:`SecureEngine.run_async` walks the
*same* crypto operations in the *same* order (every
:meth:`~repro.crypto.rng.DeterministicRNG.fork` consumes parent stream, so
the order of crypto work is the transcript — reordering it would change
every share), but hands each finished block batch — a GMW evaluation's
OT-extension bits, a transfer's aggregates — to a
:class:`~repro.core.rounds.SecureRoundScheduler` that conveys the bytes
over a :class:`~repro.core.transport.Transport` while later blocks are
still computing. Released outputs are bit-identical between the two
drivers by construction; only wall-clock and the bus's own metering move.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.aggregation import AggregationPlan, plan_groups, reshare_word
from repro.core.config import DStressConfig
from repro.core.convergence import TrajectoryConvergence
from repro.core.graph import DistributedGraph
from repro.core.node import SimulatedNode
from repro.core.program import NO_OP_MESSAGE, VertexProgram
from repro.core.rounds import SecureRoundScheduler
from repro.core.setup import AGGREGATION_BLOCK_ID, BlockAssignment, TrustedParty
from repro.core.transport import Transport
from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.ot import SimulatedObliviousTransfer
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError
from repro.mpc.gmw import GMWEngine
from repro.mpc.noise_circuit import (
    build_noised_sum_bits_circuit,
    build_partial_sum_circuit,
    geometric_bits_seed_width,
)
from repro.obs.metrics import absorb_gmw
from repro.obs.trace import current_recorder, timed_phase
from repro.privacy.budget import PrivacyAccountant
from repro.privacy.edge_privacy import per_iteration_epsilon, transfer_sensitivity
from repro.sharing.xor import reconstruct_value, share_value
from repro.simulation.netsim import PhaseTimer, TrafficMeter
from repro.transfer.protocol import MessageTransferProtocol

__all__ = ["SecureRunResult", "SecureEngine"]

#: Ordered directed link with a byte payload: the unit the transport
#: conveys for the secure path.
LinkBytes = Dict[Tuple[int, int], float]


def _record_link(
    meter: TrafficMeter, link_bytes: LinkBytes, src: int, dst: int, num_bytes: float
) -> None:
    """Meter one directed send and accumulate it into a batch's link map."""
    meter.record_send(src, dst, num_bytes)
    key = (src, dst)
    link_bytes[key] = link_bytes.get(key, 0.0) + num_bytes


@dataclass
class SecureRunResult(TrajectoryConvergence):
    """Everything a DStress run produces.

    ``noisy_output`` is the only value a real deployment would release.
    ``pre_noise_output`` and ``noise_raw`` exist so tests and benchmarks
    can verify correctness and noise calibration; they are reconstructed
    by the simulation harness, not by any protocol participant.
    """

    noisy_output: float
    pre_noise_output: float
    noise_raw: int
    iterations: int
    traffic: TrafficMeter
    phases: PhaseTimer
    num_vertices: int
    num_edges: int
    transfer_count: int = 0
    gmw_ot_count: int = 0
    gmw_and_gates_per_step: int = 0
    output_epsilon: float = 0.0
    edge_epsilon_per_iteration: Optional[float] = None
    aggregation_levels: int = 1
    #: Simulation-only diagnostic: pre-noise aggregate after each
    #: computation step, reconstructed by the harness from the XOR shares.
    #: No protocol participant ever sees these values; a real deployment
    #: releases only ``noisy_output``.
    trajectory: List[float] = field(default_factory=list)

    @property
    def mean_traffic_per_node(self) -> float:
        return self.traffic.mean_node_total_bytes()


@dataclass
class _RunContext:
    """Mutable state of one execution, shared by the two drivers.

    Built once by :meth:`SecureEngine._begin_run`; the sync and async
    drivers both walk the same context through the same step generators,
    which is what makes their transcripts — and therefore their released
    outputs — bit-identical.
    """

    graph: DistributedGraph
    iterations: int
    nodes: Dict[int, SimulatedNode]
    assignment: BlockAssignment
    vertex_bound: Dict[int, int]
    circuits: Dict[int, object]
    circuit_and_gates: int
    gmw: GMWEngine
    state_shares: Dict[int, Dict[str, List[int]]]
    inbox_shares: Dict[int, List[List[int]]]
    outbox_shares: Dict[int, List[List[int]]] = field(default_factory=dict)
    meter: TrafficMeter = field(default_factory=TrafficMeter)
    phases: PhaseTimer = field(default_factory=PhaseTimer)
    rng: DeterministicRNG = field(default_factory=DeterministicRNG)
    trajectory: List[float] = field(default_factory=list)
    total_ots: int = 0
    transfer_count: int = 0
    #: Computation steps executed so far. Lets a windowed run resume the
    #: §3.6 schedule exactly where the previous window stopped (the round
    #: span numbering continues, so the transcript order is unchanged).
    steps: int = 0


class SecureEngine:
    """Executes vertex programs under the full DStress protocol stack.

    ``backend`` selects the GMW gate evaluator: ``"scalar"`` (default) is
    the per-gate Python loop; ``"bitsliced"`` packs every computation
    step's blocks into numpy uint64 lanes with an offline/online phase
    split (see :mod:`repro.mpc.bitslice`). Both produce bit-identical
    released outputs, shares, and metered traffic — the parity matrix
    asserts it — so the choice is purely a throughput knob.
    """

    def __init__(
        self,
        program: VertexProgram,
        config: Optional[DStressConfig] = None,
        backend: str = "scalar",
    ) -> None:
        if backend not in ("scalar", "bitsliced"):
            raise ConfigurationError(f"unknown secure backend {backend!r}")
        self.backend = backend
        self.program = program
        self.config = config if config is not None else DStressConfig()
        if program.fmt.total_bits != self.config.fmt.total_bits:
            raise ConfigurationError("program and config fixed-point formats disagree")
        self.elgamal = ExponentialElGamal(
            self.config.group, dlog_half_width=self.config.dlog_half_width
        )
        self.transfer = MessageTransferProtocol(
            self.elgamal,
            message_bits=self.config.fmt.total_bits,
            noise_alpha=self.config.edge_noise_alpha,
        )

    # ------------------------------------------------------------------ run --

    def run(
        self,
        graph: DistributedGraph,
        iterations: int,
        accountant: Optional[PrivacyAccountant] = None,
        bucket_bounds: Optional[List[int]] = None,
    ) -> SecureRunResult:
        """Execute the program for ``iterations`` rounds (sequential driver).

        ``bucket_bounds`` enables the §3.7 degree-bucket optimization:
        instead of padding every vertex's circuit to the global degree
        bound D, each vertex uses the smallest bucket that fits its
        degree (e.g. ``[10, 100]``). This reveals each vertex's bucket —
        roughly its size class, which the paper notes is acceptable — in
        exchange for much cheaper MPC steps at low-degree vertices.
        """
        ctx = self._begin_run(graph, iterations, accountant, bucket_bounds)
        self._window_sync(ctx, iterations, first=True)
        return self._finish_run(ctx)

    async def run_async(
        self,
        graph: DistributedGraph,
        iterations: int,
        transport: Transport,
        accountant: Optional[PrivacyAccountant] = None,
        bucket_bounds: Optional[List[int]] = None,
        max_tasks: Optional[int] = None,
        overlap: bool = True,
    ) -> SecureRunResult:
        """Execute the protocol with its rounds scheduled over ``transport``.

        Identical crypto, identical order, identical released outputs to
        :meth:`run` — the difference is that every block batch's bytes are
        dispatched through the bus (overlapping OT computation of later
        blocks with in-flight deliveries when ``overlap=True``), and a
        faulted delivery raises a
        :class:`~repro.exceptions.TransportError` at the step barrier
        instead of silently sharing a dict. ``max_tasks`` bounds the
        number of batch deliveries in flight.
        """
        transport.open(graph, fill=None)
        scheduler = SecureRoundScheduler(transport, max_tasks=max_tasks, overlap=overlap)
        ctx = self._begin_run(graph, iterations, accountant, bucket_bounds)
        await self._window_async(ctx, scheduler, iterations, first=True)
        return self._finish_run(ctx)

    # ------------------------------------------------------------ windows --

    def _window_sync(self, ctx: _RunContext, rounds: int, first: bool) -> None:
        """Advance the §3.6 schedule by ``rounds`` computation steps.

        A fresh window runs ``rounds`` full (computation + communication)
        steps plus the final computation step. A resumed window first runs
        the communication step the previous window's final computation
        left pending, so the windowed schedule's crypto order — and hence
        the transcript — is bit-identical to one uninterrupted run of the
        same total length. Round span numbering continues across windows.
        """
        recorder = current_recorder()
        graph = ctx.graph
        base = ctx.steps
        if not first:
            if rounds < 1:
                raise ConfigurationError(
                    "a resumed window needs at least one computation step"
                )
            with recorder.span("round", round=base - 1):
                with timed_phase(ctx.phases, "communication"):
                    for _batch in self._communication_transfers(ctx):
                        pass
        full = rounds if first else rounds - 1
        for index in range(full):
            with recorder.span("round", round=base + index):
                with timed_phase(ctx.phases, "computation"):
                    for _batch in self._computation_blocks(ctx):
                        pass
                ctx.trajectory.append(
                    self._simulated_aggregate(graph, ctx.state_shares)
                )
                with timed_phase(ctx.phases, "communication"):
                    for _batch in self._communication_transfers(ctx):
                        pass
        # Final computation step (§3.6).
        with recorder.span("round", round=base + full):
            with timed_phase(ctx.phases, "computation"):
                for _batch in self._computation_blocks(ctx):
                    pass
        ctx.trajectory.append(self._simulated_aggregate(graph, ctx.state_shares))
        ctx.steps = base + full + 1

    async def _window_async(
        self, ctx: _RunContext, scheduler: SecureRoundScheduler, rounds: int, first: bool
    ) -> None:
        """:meth:`_window_sync` with batches dispatched over the bus."""
        recorder = current_recorder()
        graph = ctx.graph
        base = ctx.steps
        try:
            if not first:
                if rounds < 1:
                    raise ConfigurationError(
                        "a resumed window needs at least one computation step"
                    )
                with recorder.span("round", round=base - 1):
                    with timed_phase(ctx.phases, "communication"):
                        for batch in self._communication_transfers(ctx):
                            await scheduler.dispatch(batch, base - 1, kind="transfer")
                        await scheduler.barrier()
            full = rounds if first else rounds - 1
            for index in range(full):
                step = base + index
                with recorder.span("round", round=step):
                    with timed_phase(ctx.phases, "computation"):
                        for batch in self._computation_blocks(ctx):
                            await scheduler.dispatch(batch, step, kind="ot")
                        await scheduler.barrier()
                    ctx.trajectory.append(
                        self._simulated_aggregate(graph, ctx.state_shares)
                    )
                    with timed_phase(ctx.phases, "communication"):
                        for batch in self._communication_transfers(ctx):
                            await scheduler.dispatch(batch, step, kind="transfer")
                        await scheduler.barrier()
            # Final computation step (§3.6).
            with recorder.span("round", round=base + full):
                with timed_phase(ctx.phases, "computation"):
                    for batch in self._computation_blocks(ctx):
                        await scheduler.dispatch(batch, base + full, kind="ot")
                    await scheduler.barrier()
        except BaseException:
            # unwinding past in-flight deliveries would leak their tasks
            # (and log any sibling faults as never-retrieved); consume
            # them before the real traceback propagates
            await scheduler.drain()
            raise
        ctx.trajectory.append(self._simulated_aggregate(graph, ctx.state_shares))
        ctx.steps = base + full + 1

    # --------------------------------------------------------- run phases --

    def _begin_run(
        self,
        graph: DistributedGraph,
        iterations: int,
        accountant: Optional[PrivacyAccountant],
        bucket_bounds: Optional[List[int]],
        phases: Optional[PhaseTimer] = None,
    ) -> _RunContext:
        """Setup + initialization (§3.4, §3.6 init): everything before the
        first computation step, identical for both drivers.

        ``phases`` lets a lifecycle driver share one timer between its
        stage timings and the engine's fine-grained phases; direct callers
        get a fresh one.
        """
        config = self.config
        program = self.program
        fmt = program.fmt
        bits = fmt.total_bits
        word_bytes = (bits + 7) / 8.0
        rng = DeterministicRNG(config.seed)
        meter = TrafficMeter()
        phases = phases if phases is not None else PhaseTimer()
        vertex_bound = self._assign_buckets(graph, bucket_bounds)

        if accountant is not None:
            accountant.charge(config.output_epsilon, label=f"{program.name}-release")

        # ---------------------------------------------------------- setup --
        with timed_phase(phases, "setup"):
            nodes, assignment = self._setup_blocks(graph, config, rng, meter, bits)

        # --------------------------------------------------------- init --
        with timed_phase(phases, "initialization"):
            state_shares, inbox_shares = self._share_initial_state(
                graph, config, program, vertex_bound, assignment, rng, meter,
                word_bytes,
            )

        circuits = {
            bound: program.build_update_circuit(bound)
            for bound in sorted(set(vertex_bound.values()))
        }
        if self.backend == "bitsliced":
            # Imported lazily: numpy is an optional dependency and the
            # scalar path must keep working without it.
            from repro.mpc.bitslice import BitslicedGMWEngine

            gmw: GMWEngine = BitslicedGMWEngine(
                config.block_size,
                ot=SimulatedObliviousTransfer(config.group),
                mode=config.gmw_mode,
            )
        else:
            gmw = GMWEngine(
                config.block_size,
                ot=SimulatedObliviousTransfer(config.group),
                mode=config.gmw_mode,
            )
        return _RunContext(
            graph=graph,
            iterations=iterations,
            nodes=nodes,
            assignment=assignment,
            vertex_bound=vertex_bound,
            circuits=circuits,
            circuit_and_gates=circuits[max(circuits)].stats().and_gates,
            gmw=gmw,
            state_shares=state_shares,
            inbox_shares=inbox_shares,
            meter=meter,
            phases=phases,
            rng=rng,
        )

    def _setup_blocks(
        self,
        graph: DistributedGraph,
        config: DStressConfig,
        rng: DeterministicRNG,
        meter: TrafficMeter,
        bits: int,
    ) -> Tuple[Dict[int, SimulatedNode], BlockAssignment]:
        """§3.4 setup: node keys, block assignment, certificate forwarding."""
        nodes: Dict[int, SimulatedNode] = {
            v: SimulatedNode.create(v, self.elgamal, bits, graph.degree_bound, rng)
            for v in graph.vertex_ids
        }
        tp = TrustedParty(self.elgamal, rng)
        assignment = tp.assign_blocks(graph.vertex_ids, config.collusion_bound)
        certificates = {
            v: tp.build_block_certificates(
                v,
                [nodes[m].member_keys for m in assignment.blocks[v]],
                nodes[v].neighbor_keys,
            )
            for v in graph.vertex_ids
        }
        # Each node forwards certificate `slot` of its own block to the
        # in-neighbor on that slot; leftover slots stay with the owner
        # (used for padded self-transfers when configured).
        for view in graph.vertices():
            for slot, neighbor in enumerate(view.in_neighbors):
                nodes[neighbor].neighbor_certificates[view.vertex_id] = certificates[
                    view.vertex_id
                ][slot]
                cert_bytes = (
                    config.block_size * bits * self.elgamal.group.element_size_bytes
                )
                meter.record_send(view.vertex_id, neighbor, cert_bytes)
        return nodes, assignment

    def _share_initial_state(
        self,
        graph: DistributedGraph,
        config: DStressConfig,
        program: VertexProgram,
        vertex_bound: Dict[int, int],
        assignment: BlockAssignment,
        rng: DeterministicRNG,
        meter: TrafficMeter,
        word_bytes: float,
    ) -> Tuple[Dict[int, Dict[str, List[int]]], Dict[int, List[List[int]]]]:
        """§3.6 init: XOR-share every vertex's state and no-op inbox slots."""
        fmt = program.fmt
        bits = fmt.total_bits
        block_size = config.block_size
        state_shares: Dict[int, Dict[str, List[int]]] = {}
        inbox_shares: Dict[int, List[List[int]]] = {}
        raw_no_op = fmt.encode(NO_OP_MESSAGE)
        for view in graph.vertices():
            v = view.vertex_id
            bound = vertex_bound[v]
            initial = program.initial_state(view, bound)
            raw = program.encode_state(initial)
            shares: Dict[str, List[int]] = {}
            for reg in program.state_registers(bound):
                shares[reg] = share_value(fmt.to_unsigned(raw[reg]), bits, block_size, rng)
                self._meter_share_distribution(meter, v, assignment.blocks[v], word_bytes)
            state_shares[v] = shares
            inbox_shares[v] = []
            for _ in range(bound):
                inbox_shares[v].append(
                    share_value(fmt.to_unsigned(raw_no_op), bits, block_size, rng)
                )
                self._meter_share_distribution(meter, v, assignment.blocks[v], word_bytes)
        return state_shares, inbox_shares

    def _finish_run(self, ctx: _RunContext) -> SecureRunResult:
        """Aggregation + noising + result assembly, identical for both
        drivers (the aggregation tree is one final phase, not a round)."""
        with timed_phase(ctx.phases, "aggregation"):
            noisy_raw, pre_noise_raw, levels = self._aggregate_and_noise(ctx)
        return self._assemble_result(ctx, noisy_raw, pre_noise_raw, levels)

    def _assemble_result(
        self, ctx: _RunContext, noisy_raw: int, pre_noise_raw: int, levels: int
    ) -> SecureRunResult:
        """Wrap a finished context and its last release into the result."""
        config = self.config
        fmt = self.program.fmt
        bits = fmt.total_bits
        edge_eps = None
        if config.edge_noise_alpha is not None:
            delta = transfer_sensitivity(config.collusion_bound)
            eps_transfer = -math.log(config.edge_noise_alpha) * delta / 2.0
            edge_eps = per_iteration_epsilon(config.collusion_bound, bits, eps_transfer)

        return SecureRunResult(
            noisy_output=noisy_raw * fmt.resolution,
            pre_noise_output=pre_noise_raw * fmt.resolution,
            noise_raw=noisy_raw - pre_noise_raw,
            iterations=ctx.iterations,
            traffic=ctx.meter,
            phases=ctx.phases,
            num_vertices=ctx.graph.num_vertices,
            num_edges=ctx.graph.num_edges,
            transfer_count=ctx.transfer_count,
            gmw_ot_count=ctx.total_ots,
            gmw_and_gates_per_step=ctx.circuit_and_gates,
            output_epsilon=config.output_epsilon,
            edge_epsilon_per_iteration=edge_eps,
            aggregation_levels=levels,
            trajectory=ctx.trajectory,
        )

    # ------------------------------------------------------------ phases --

    def _simulated_aggregate(self, graph: DistributedGraph, state_shares) -> float:
        """Reconstruct the pre-noise aggregate (simulation-only diagnostic).

        The harness — not any protocol participant — XORs the shares back
        together so results can expose a convergence trajectory comparable
        to :class:`~repro.core.engine.PlaintextRun`.
        """
        fmt = self.program.fmt
        register = self.program.aggregate_register
        raw = 0
        for v in graph.vertex_ids:
            raw += fmt.from_unsigned(
                reconstruct_value(state_shares[v][register], fmt.total_bits)
            )
        return fmt.decode(raw)

    def _assign_buckets(
        self, graph: DistributedGraph, bucket_bounds: Optional[List[int]]
    ) -> Dict[int, int]:
        """Map each vertex to its degree bound (§3.7 buckets).

        Without buckets every vertex pads to the global degree bound.
        With buckets, each vertex gets the smallest bucket that holds its
        actual degree; the largest bucket must cover the global bound so
        any degree is placeable.
        """
        if bucket_bounds is None:
            return {v: graph.degree_bound for v in graph.vertex_ids}
        bounds = sorted(set(bucket_bounds))
        if not bounds or bounds[-1] < graph.max_degree():
            raise ConfigurationError(
                "largest bucket must cover the graph's maximum degree"
            )
        if bounds[0] < 1:
            raise ConfigurationError("bucket bounds must be positive")
        assignment = {}
        for view in graph.vertices():
            degree = max(view.in_degree, view.out_degree, 1)
            assignment[view.vertex_id] = next(b for b in bounds if b >= degree)
        return assignment

    def _meter_share_distribution(
        self, meter: TrafficMeter, src: int, members: List[int], word_bytes: float
    ) -> None:
        for member in members:
            if member != src:
                meter.record_send(src, member, word_bytes)

    def _computation_blocks(self, ctx: _RunContext) -> Iterator[LinkBytes]:
        """One §3.6 computation step, block by block.

        Evaluates each vertex block's update circuit under GMW (in vertex
        order — the transcript order) and yields the block's OT batch as
        per-link bytes *after* metering it, so a driver can overlap the
        delivery of block ``b`` with the evaluation of block ``b + 1``
        simply by consuming the generator one item at a time.

        With ``backend="bitsliced"`` the per-vertex evaluations are
        batched into numpy lanes but the generator's contract — one link
        batch per vertex, in vertex order, identical bytes — is unchanged,
        so both drivers (and the secure-async scheduler) consume it
        without knowing which backend ran.
        """
        if self.backend == "bitsliced":
            yield from self._computation_blocks_bitsliced(ctx)
            return
        gmw = ctx.gmw
        meter = ctx.meter
        for view in ctx.graph.vertices():
            v = view.vertex_id
            bound = ctx.vertex_bound[v]
            registers = self.program.state_registers(bound)
            shared_inputs = dict(ctx.state_shares[v])
            for slot in range(bound):
                shared_inputs[f"msg_in_{slot}"] = ctx.inbox_shares[v][slot]
            result = gmw.evaluate(ctx.circuits[bound], shared_inputs, ctx.rng)
            ctx.state_shares[v] = {reg: result.output_shares[reg] for reg in registers}
            ctx.outbox_shares[v] = [
                result.output_shares[f"msg_out_{slot}"] for slot in range(bound)
            ]
            members = ctx.assignment.blocks[v]
            link_bytes = self._meter_gmw(meter, members, result)
            per_member_ots = result.traffic.ot_count // max(1, len(members))
            for member in members:
                meter.node(member).ot_transfers += per_member_ots
            ctx.total_ots += result.traffic.ot_count
            yield link_bytes

    def _computation_blocks_bitsliced(self, ctx: _RunContext) -> Iterator[LinkBytes]:
        """The bit-sliced computation step: offline, online, then emit.

        **Offline** walks the vertices in vertex order — the transcript
        order — drawing each block's per-gate randomness from ``ctx.rng``
        exactly as a scalar ``gmw.evaluate`` call would (same forks, same
        bytes), accumulating lane pools per circuit bound. **Online**
        evaluates each bound's vertices as lanes of one RNG-free batch.
        Results are then metered and yielded vertex by vertex, so state
        updates, traffic accumulation order, and the per-link batches this
        generator hands the round scheduler are bit-identical to the
        scalar path's.
        """
        gmw = ctx.gmw
        meter = ctx.meter

        with timed_phase(ctx.phases, "gmw-offline"):
            builders: Dict[int, object] = {}
            batch_inputs: Dict[int, List[Dict[str, List[int]]]] = {}
            batch_vertices: Dict[int, List[int]] = {}
            for view in ctx.graph.vertices():
                v = view.vertex_id
                bound = ctx.vertex_bound[v]
                builder = builders.get(bound)
                if builder is None:
                    builder = builders[bound] = gmw.pool_builder(ctx.circuits[bound])
                    batch_inputs[bound] = []
                    batch_vertices[bound] = []
                shared_inputs = dict(ctx.state_shares[v])
                for slot in range(bound):
                    shared_inputs[f"msg_in_{slot}"] = ctx.inbox_shares[v][slot]
                builder.add_instance(ctx.rng)
                batch_inputs[bound].append(shared_inputs)
                batch_vertices[bound].append(v)

        with timed_phase(ctx.phases, "gmw-online"):
            results: Dict[int, object] = {}
            for bound, builder in builders.items():
                batch = gmw.evaluate_batch(
                    ctx.circuits[bound], batch_inputs[bound], pools=builder.build()
                )
                results.update(zip(batch_vertices[bound], batch))

        for view in ctx.graph.vertices():
            v = view.vertex_id
            bound = ctx.vertex_bound[v]
            registers = self.program.state_registers(bound)
            result = results[v]
            ctx.state_shares[v] = {reg: result.output_shares[reg] for reg in registers}
            ctx.outbox_shares[v] = [
                result.output_shares[f"msg_out_{slot}"] for slot in range(bound)
            ]
            members = ctx.assignment.blocks[v]
            link_bytes = self._meter_gmw(meter, members, result)
            per_member_ots = result.traffic.ot_count // max(1, len(members))
            for member in members:
                meter.node(member).ot_transfers += per_member_ots
            ctx.total_ots += result.traffic.ot_count
            yield link_bytes

    def _communication_transfers(self, ctx: _RunContext) -> Iterator[LinkBytes]:
        """One §3.6 communication step, transfer by transfer.

        Executes the §3.5 protocol for each directed edge (in vertex/slot
        order — again the transcript order) and yields each transfer's
        wire bytes at link granularity. Local no-op padding (the cheap
        non-``pad_transfers`` mode) stays inside the generator: it moves
        share words between block members but is not an edge transfer.
        """
        config = self.config
        fmt = self.program.fmt
        graph = ctx.graph
        for view in graph.vertices():
            u = view.vertex_id
            for out_slot, v in enumerate(view.out_neighbors):
                in_slot = graph.vertex(v).in_slot(u)
                certificate = ctx.nodes[u].neighbor_certificates[v]
                neighbor_key = ctx.nodes[v].neighbor_keys[in_slot]
                receiver_members = ctx.assignment.blocks[v]
                receiver_keys = [ctx.nodes[m].member_keys for m in receiver_members]
                result = self.transfer.execute(
                    ctx.outbox_shares[u][out_slot],
                    certificate,
                    neighbor_key,
                    receiver_keys,
                    ctx.rng,
                )
                ctx.inbox_shares[v][in_slot] = result.receiver_shares
                ctx.transfer_count += 1
                yield self._meter_transfer(ctx.meter, u, v, ctx.assignment, result.traffic)
            if config.pad_transfers:
                yield from self._padded_self_transfers(ctx, view)
            else:
                # Unused inbox slots revert to fresh no-op shares from the
                # owner (cheap local padding; see DESIGN.md).
                raw_no_op = fmt.to_unsigned(fmt.encode(NO_OP_MESSAGE))
                for slot in range(view.in_degree, ctx.vertex_bound[view.vertex_id]):
                    ctx.inbox_shares[view.vertex_id][slot] = share_value(
                        raw_no_op, fmt.total_bits, config.block_size, ctx.rng
                    )
                    self._meter_share_distribution(
                        ctx.meter,
                        view.vertex_id,
                        ctx.assignment.blocks[view.vertex_id],
                        (fmt.total_bits + 7) / 8.0,
                    )

    def _padded_self_transfers(self, ctx: _RunContext, view) -> Iterator[LinkBytes]:
        """Run full no-op transfers on unused slots (degree hiding)."""
        config = self.config
        fmt = self.program.fmt
        v = view.vertex_id
        for slot in range(view.in_degree, ctx.vertex_bound[v]):
            certificate = ctx.nodes[v].neighbor_certificates.get(("self", slot))
            if certificate is None:
                # Leftover certificate for this slot, retained by the owner.
                certificate = self._own_certificate(ctx.nodes, ctx.assignment, v, slot)
                ctx.nodes[v].neighbor_certificates[("self", slot)] = certificate
            shares = share_value(
                fmt.to_unsigned(fmt.encode(NO_OP_MESSAGE)),
                fmt.total_bits,
                config.block_size,
                ctx.rng,
            )
            receiver_keys = [ctx.nodes[m].member_keys for m in ctx.assignment.blocks[v]]
            result = self.transfer.execute(
                shares, certificate, ctx.nodes[v].neighbor_keys[slot], receiver_keys,
                ctx.rng,
            )
            ctx.inbox_shares[v][slot] = result.receiver_shares
            ctx.transfer_count += 1
            yield self._meter_transfer(ctx.meter, v, v, ctx.assignment, result.traffic)

    def _own_certificate(self, nodes, assignment, v: int, slot: int):
        """Rebuild the leftover certificate for slot ``slot`` of node ``v``.

        In a deployment the node would simply have kept the certificate the
        TP sent; the simulation reconstructs it on demand to avoid storing
        all D certificates for every node.
        """
        # The certificate contents only depend on member keys and the
        # neighbor key, both of which the owner legitimately holds.
        from repro.crypto.keys import SchnorrSigner
        from repro.transfer.certificates import build_certificate

        signer = SchnorrSigner(self.elgamal.group)
        throwaway = signer.keygen(DeterministicRNG(f"self-cert-{v}-{slot}"))
        return build_certificate(
            self.elgamal,
            signer,
            throwaway,
            owner=v,
            edge_slot=slot,
            member_keys=[nodes[m].member_keys for m in assignment.blocks[v]],
            neighbor_key=nodes[v].neighbor_keys[slot],
            rng=DeterministicRNG(f"self-cert-rng-{v}-{slot}"),
        )

    def _meter_transfer(
        self, meter: TrafficMeter, u: int, v: int, assignment: BlockAssignment, traffic
    ) -> LinkBytes:
        """Distribute §5.3 role traffic onto the simulated nodes; returns
        the same traffic as per-link bytes for the transport dispatch."""
        link_bytes: LinkBytes = {}
        for member in assignment.blocks[u]:
            if member != u:
                _record_link(meter, link_bytes, member, u, traffic.sender_member_bytes)
        if u != v:
            _record_link(meter, link_bytes, u, v, traffic.node_u_sent_bytes)
        for member in assignment.blocks[v]:
            if member != v:
                _record_link(meter, link_bytes, v, member, traffic.receiver_member_bytes)
        # Exponentiation counts per role (cost model input).
        bits = traffic.message_bits
        for member in assignment.blocks[u]:
            meter.node(member).exponentiations += traffic.block_size * (bits + 1)
        meter.node(u).exponentiations += traffic.block_size * bits  # noise terms
        meter.node(v).exponentiations += traffic.block_size  # adjust
        for member in assignment.blocks[v]:
            meter.node(member).exponentiations += bits  # decryption
        return link_bytes

    # -------------------------------------------------------- aggregation --

    def _aggregate_and_noise(
        self, ctx: _RunContext, epsilon: Optional[float] = None
    ) -> Tuple[int, int, int]:
        """§3.6 aggregation + noising over a (possibly hierarchical) tree.

        ``epsilon`` overrides the config's ``output_epsilon`` for one
        release (windowed continual release noises each window at its
        per-window budget); the default keeps the one-shot calibration.
        """
        root_inputs, root_width, levels, pre_noise_raw = self._aggregation_tree(ctx)
        noised_raw = self._noise_and_reveal(ctx, root_inputs, root_width, epsilon)
        return noised_raw, pre_noise_raw, levels

    def _aggregation_tree(
        self, ctx: _RunContext
    ) -> Tuple[List[List[int]], int, int, int]:
        """Re-share contribution registers up the aggregation tree.

        Returns the root block's input shares, their bit width, the tree
        depth, and the simulation-only pre-noise aggregate (raw LSBs).
        """
        graph = ctx.graph
        gmw = ctx.gmw
        state_shares = ctx.state_shares
        assignment = ctx.assignment
        meter = ctx.meter
        rng = ctx.rng
        config = self.config
        program = self.program
        fmt = program.fmt
        bits = fmt.total_bits

        plan = AggregationPlan(
            groups=plan_groups(graph.vertex_ids, config.aggregation_fanout),
            value_bits=bits,
        )
        root_members = assignment.blocks[AGGREGATION_BLOCK_ID]

        def reshare_to(
            share_words: List[int], width: int, src_members: List[int], dst_members: List[int]
        ) -> List[int]:
            fresh = reshare_word(share_words, width, len(dst_members), rng)
            for src in src_members:
                for dst in dst_members:
                    if src != dst:
                        meter.record_send(src, dst, (width + 7) / 8.0)
            return fresh

        register = program.aggregate_register
        pre_noise_raw = 0
        for v in graph.vertex_ids:
            pre_noise_raw += fmt.from_unsigned(
                reconstruct_value(state_shares[v][register], bits)
            )

        if plan.is_hierarchical:
            group_width = plan.group_sum_bits
            group_sum_shares: List[List[int]] = []
            for group in plan.groups:
                # The group's aggregation block: reuse the first member's
                # block (already a uniformly random k+1 subset).
                group_block = assignment.blocks[group[0]]
                circuit = build_partial_sum_circuit(len(group), bits, group_width)
                shared_inputs = {}
                for index, v in enumerate(group):
                    shared_inputs[f"state_{index}"] = reshare_to(
                        state_shares[v][register], bits, assignment.blocks[v], group_block
                    )
                result = gmw.evaluate(circuit, shared_inputs, rng)
                self._meter_gmw(meter, group_block, result)
                group_sum_shares.append(
                    reshare_to(
                        result.output_shares["partial_sum"],
                        group_width,
                        group_block,
                        root_members,
                    )
                )
            root_inputs = group_sum_shares
            root_width = group_width
            levels = 2
        else:
            root_inputs = [
                reshare_to(state_shares[v][register], bits, assignment.blocks[v], root_members)
                for v in graph.vertex_ids
            ]
            root_width = bits
            levels = 1
        return root_inputs, root_width, levels, pre_noise_raw

    def _noise_and_reveal(
        self,
        ctx: _RunContext,
        root_inputs: List[List[int]],
        root_width: int,
        epsilon: Optional[float] = None,
    ) -> int:
        """Root-block noised sum: in-MPC geometric sampler, then reveal."""
        gmw = ctx.gmw
        meter = ctx.meter
        rng = ctx.rng
        config = self.config
        program = self.program
        root_members = ctx.assignment.blocks[AGGREGATION_BLOCK_ID]

        alpha = config.noise_alpha_for(program.sensitivity, epsilon)
        magnitude_bits = config.noise_magnitude_bits_for(program.sensitivity, epsilon)
        root_circuit = build_noised_sum_bits_circuit(
            num_inputs=len(root_inputs),
            value_bits=root_width,
            alpha=alpha,
            magnitude_bits=magnitude_bits,
            precision_bits=config.noise_precision_bits,
        )
        seed_width = geometric_bits_seed_width(magnitude_bits, config.noise_precision_bits)
        shared_inputs = {f"state_{i}": shares for i, shares in enumerate(root_inputs)}
        # Every root member contributes its own uniform word as its share of
        # the seed; XOR of the shares is the seed, so one honest member
        # suffices for uniformity (§3.6 "combine the random shares").
        shared_inputs["seed"] = [rng.fork(f"seed-{m}").randbits(seed_width) for m in root_members]
        result = gmw.evaluate(root_circuit, shared_inputs, rng)
        self._meter_gmw(meter, root_members, result)

        noised_raw = result.reveal("noised_sum", signed=True)
        # Revealing the output: every root member publishes its share.
        out_width = result.bus_widths["noised_sum"]
        for member in root_members:
            for other in root_members:
                if member != other:
                    meter.record_send(member, other, (out_width + 7) / 8.0)
        return noised_raw

    def _meter_gmw(self, meter: TrafficMeter, members: List[int], result) -> LinkBytes:
        """Attribute a GMW evaluation's wire traffic to the member nodes.

        Uses the engine's per-ordered-pair accounting
        (:attr:`~repro.mpc.gmw.GMWTraffic.pair_bits`), so every OT-extension
        byte lands on a directed *link* between two real block members —
        node totals are unchanged (the pair map sums to the per-party
        totals by construction) but link-level hot spots become visible
        and the secure-async driver can dispatch the returned map.
        """
        link_bytes: LinkBytes = {}
        for (i, j), pair_bytes in result.traffic.pair_bytes().items():
            _record_link(meter, link_bytes, members[i], members[j], pair_bytes)
        for member in members:
            meter.node(member).gmw_evaluations += 1
        recorder = current_recorder()
        if recorder.enabled:
            # pair indices are block-local; attribute the bits to the real
            # member node ids so the series lines up with traffic.link.bytes
            absorb_gmw(
                recorder.metrics,
                {
                    (members[i], members[j]): bits
                    for (i, j), bits in result.traffic.pair_bits.items()
                },
            )
        return link_bytes
