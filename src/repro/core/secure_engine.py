"""The DStress secure execution engine (§3.3–§3.6).

Runs a vertex program over a distributed graph such that no coalition of
at most ``k`` nodes learns anything beyond the differentially-private
output:

1. **Setup** — the trusted party assigns blocks and issues block
   certificates; each node forwards certificates to its in-neighbors.
2. **Initialization** — every node XOR-shares its vertex's initial state
   (and ``D`` no-op inbox slots) among its block.
3. **Computation steps** — each block evaluates the program's update
   circuit under GMW; inputs and outputs stay shared.
4. **Communication steps** — each outgoing message's shares move along the
   edge through the §3.5 transfer protocol (subshares, exponential
   ElGamal, even geometric noise), landing as fresh shares at the
   receiving block.
5. **Aggregation + noising** — contribution registers are re-shared to
   the aggregation tree; the root block samples two-sided geometric noise
   inside MPC (Dwork-style bit sampler) and reveals only the noised sum.

All network traffic is metered per node; timings are recorded per phase.
The engine is a faithful simulation: every byte it reports corresponds to
a protocol message of the real deployment.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.aggregation import AggregationPlan, plan_groups, reshare_word
from repro.core.config import DStressConfig
from repro.core.convergence import DEFAULT_TOLERANCE, convergence_index
from repro.core.graph import DistributedGraph
from repro.core.node import SimulatedNode
from repro.core.program import NO_OP_MESSAGE, VertexProgram
from repro.core.setup import AGGREGATION_BLOCK_ID, BlockAssignment, TrustedParty
from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.ot import SimulatedObliviousTransfer
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError
from repro.mpc.gmw import GMWEngine
from repro.mpc.noise_circuit import (
    build_noised_sum_bits_circuit,
    build_partial_sum_circuit,
    geometric_bits_seed_width,
)
from repro.privacy.budget import PrivacyAccountant
from repro.privacy.edge_privacy import per_iteration_epsilon, transfer_sensitivity
from repro.sharing.xor import reconstruct_value, share_value
from repro.simulation.netsim import PhaseTimer, TrafficMeter
from repro.transfer.protocol import MessageTransferProtocol

__all__ = ["SecureRunResult", "SecureEngine"]


@dataclass
class SecureRunResult:
    """Everything a DStress run produces.

    ``noisy_output`` is the only value a real deployment would release.
    ``pre_noise_output`` and ``noise_raw`` exist so tests and benchmarks
    can verify correctness and noise calibration; they are reconstructed
    by the simulation harness, not by any protocol participant.
    """

    noisy_output: float
    pre_noise_output: float
    noise_raw: int
    iterations: int
    traffic: TrafficMeter
    phases: PhaseTimer
    num_vertices: int
    num_edges: int
    transfer_count: int = 0
    gmw_ot_count: int = 0
    gmw_and_gates_per_step: int = 0
    output_epsilon: float = 0.0
    edge_epsilon_per_iteration: Optional[float] = None
    aggregation_levels: int = 1
    #: Simulation-only diagnostic: pre-noise aggregate after each
    #: computation step, reconstructed by the harness from the XOR shares.
    #: No protocol participant ever sees these values; a real deployment
    #: releases only ``noisy_output``.
    trajectory: List[float] = field(default_factory=list)

    @property
    def mean_traffic_per_node(self) -> float:
        return self.traffic.mean_node_total_bytes()

    def converged_at(self, tolerance: float = DEFAULT_TOLERANCE) -> Optional[int]:
        """Smallest iteration count after which the (simulation-only)
        pre-noise aggregate stopped moving by more than ``tolerance``."""
        return convergence_index(self.trajectory, tolerance)


class SecureEngine:
    """Executes vertex programs under the full DStress protocol stack."""

    def __init__(self, program: VertexProgram, config: Optional[DStressConfig] = None) -> None:
        self.program = program
        self.config = config if config is not None else DStressConfig()
        if program.fmt.total_bits != self.config.fmt.total_bits:
            raise ConfigurationError("program and config fixed-point formats disagree")
        self.elgamal = ExponentialElGamal(
            self.config.group, dlog_half_width=self.config.dlog_half_width
        )
        self.transfer = MessageTransferProtocol(
            self.elgamal,
            message_bits=self.config.fmt.total_bits,
            noise_alpha=self.config.edge_noise_alpha,
        )

    # ------------------------------------------------------------------ run --

    def run(
        self,
        graph: DistributedGraph,
        iterations: int,
        accountant: Optional[PrivacyAccountant] = None,
        bucket_bounds: Optional[List[int]] = None,
    ) -> SecureRunResult:
        """Execute the program for ``iterations`` rounds.

        ``bucket_bounds`` enables the §3.7 degree-bucket optimization:
        instead of padding every vertex's circuit to the global degree
        bound D, each vertex uses the smallest bucket that fits its
        degree (e.g. ``[10, 100]``). This reveals each vertex's bucket —
        roughly its size class, which the paper notes is acceptable — in
        exchange for much cheaper MPC steps at low-degree vertices.
        """
        config = self.config
        program = self.program
        fmt = program.fmt
        bits = fmt.total_bits
        word_bytes = (bits + 7) / 8.0
        rng = DeterministicRNG(config.seed)
        meter = TrafficMeter()
        phases = PhaseTimer()
        vertex_bound = self._assign_buckets(graph, bucket_bounds)

        if accountant is not None:
            accountant.charge(config.output_epsilon, label=f"{program.name}-release")

        # ---------------------------------------------------------- setup --
        started = time.perf_counter()
        nodes: Dict[int, SimulatedNode] = {
            v: SimulatedNode.create(v, self.elgamal, bits, graph.degree_bound, rng)
            for v in graph.vertex_ids
        }
        tp = TrustedParty(self.elgamal, rng)
        assignment = tp.assign_blocks(graph.vertex_ids, config.collusion_bound)
        certificates = {
            v: tp.build_block_certificates(
                v,
                [nodes[m].member_keys for m in assignment.blocks[v]],
                nodes[v].neighbor_keys,
            )
            for v in graph.vertex_ids
        }
        # Each node forwards certificate `slot` of its own block to the
        # in-neighbor on that slot; leftover slots stay with the owner
        # (used for padded self-transfers when configured).
        for view in graph.vertices():
            for slot, neighbor in enumerate(view.in_neighbors):
                nodes[neighbor].neighbor_certificates[view.vertex_id] = certificates[
                    view.vertex_id
                ][slot]
                cert_bytes = (
                    config.block_size * bits * self.elgamal.group.element_size_bytes
                )
                meter.record_send(view.vertex_id, neighbor, cert_bytes)
        phases.add("setup", time.perf_counter() - started)

        # --------------------------------------------------------- init --
        started = time.perf_counter()
        block_size = config.block_size
        state_shares: Dict[int, Dict[str, List[int]]] = {}
        inbox_shares: Dict[int, List[List[int]]] = {}
        raw_no_op = fmt.encode(NO_OP_MESSAGE)
        for view in graph.vertices():
            v = view.vertex_id
            bound = vertex_bound[v]
            initial = program.initial_state(view, bound)
            raw = program.encode_state(initial)
            shares: Dict[str, List[int]] = {}
            for reg in program.state_registers(bound):
                shares[reg] = share_value(fmt.to_unsigned(raw[reg]), bits, block_size, rng)
                self._meter_share_distribution(meter, v, assignment.blocks[v], word_bytes)
            state_shares[v] = shares
            inbox_shares[v] = []
            for _ in range(bound):
                inbox_shares[v].append(
                    share_value(fmt.to_unsigned(raw_no_op), bits, block_size, rng)
                )
                self._meter_share_distribution(meter, v, assignment.blocks[v], word_bytes)
        phases.add("initialization", time.perf_counter() - started)

        # ------------------------------------------------- main iterations --
        circuits = {
            bound: program.build_update_circuit(bound)
            for bound in sorted(set(vertex_bound.values()))
        }
        circuit_stats = circuits[max(circuits)].stats()
        gmw = GMWEngine(
            block_size,
            ot=SimulatedObliviousTransfer(config.group),
            mode=config.gmw_mode,
        )
        total_ots = 0
        transfer_count = 0
        trajectory: List[float] = []

        outbox_shares: Dict[int, List[List[int]]] = {}
        for step in range(iterations):
            total_ots += self._computation_step(
                graph, gmw, circuits, vertex_bound, state_shares, inbox_shares,
                outbox_shares, assignment, meter, phases, rng,
            )
            trajectory.append(self._simulated_aggregate(graph, state_shares))
            transfer_count += self._communication_step(
                graph, nodes, assignment, vertex_bound, inbox_shares,
                outbox_shares, meter, phases, rng,
            )
        # Final computation step (§3.6).
        total_ots += self._computation_step(
            graph, gmw, circuits, vertex_bound, state_shares, inbox_shares,
            outbox_shares, assignment, meter, phases, rng,
        )
        trajectory.append(self._simulated_aggregate(graph, state_shares))

        # ------------------------------------------------- aggregation --
        started = time.perf_counter()
        noisy_raw, pre_noise_raw, levels = self._aggregate_and_noise(
            graph, gmw, state_shares, assignment, meter, rng
        )
        phases.add("aggregation", time.perf_counter() - started)

        edge_eps = None
        if config.edge_noise_alpha is not None:
            delta = transfer_sensitivity(config.collusion_bound)
            eps_transfer = -math.log(config.edge_noise_alpha) * delta / 2.0
            edge_eps = per_iteration_epsilon(config.collusion_bound, bits, eps_transfer)

        return SecureRunResult(
            noisy_output=noisy_raw * fmt.resolution,
            pre_noise_output=pre_noise_raw * fmt.resolution,
            noise_raw=noisy_raw - pre_noise_raw,
            iterations=iterations,
            traffic=meter,
            phases=phases,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            transfer_count=transfer_count,
            gmw_ot_count=total_ots,
            gmw_and_gates_per_step=circuit_stats.and_gates,
            output_epsilon=config.output_epsilon,
            edge_epsilon_per_iteration=edge_eps,
            aggregation_levels=levels,
            trajectory=trajectory,
        )

    # ------------------------------------------------------------ phases --

    def _simulated_aggregate(self, graph: DistributedGraph, state_shares) -> float:
        """Reconstruct the pre-noise aggregate (simulation-only diagnostic).

        The harness — not any protocol participant — XORs the shares back
        together so results can expose a convergence trajectory comparable
        to :class:`~repro.core.engine.PlaintextRun`.
        """
        fmt = self.program.fmt
        register = self.program.aggregate_register
        raw = 0
        for v in graph.vertex_ids:
            raw += fmt.from_unsigned(
                reconstruct_value(state_shares[v][register], fmt.total_bits)
            )
        return fmt.decode(raw)

    def _assign_buckets(
        self, graph: DistributedGraph, bucket_bounds: Optional[List[int]]
    ) -> Dict[int, int]:
        """Map each vertex to its degree bound (§3.7 buckets).

        Without buckets every vertex pads to the global degree bound.
        With buckets, each vertex gets the smallest bucket that holds its
        actual degree; the largest bucket must cover the global bound so
        any degree is placeable.
        """
        if bucket_bounds is None:
            return {v: graph.degree_bound for v in graph.vertex_ids}
        bounds = sorted(set(bucket_bounds))
        if not bounds or bounds[-1] < graph.max_degree():
            raise ConfigurationError(
                "largest bucket must cover the graph's maximum degree"
            )
        if bounds[0] < 1:
            raise ConfigurationError("bucket bounds must be positive")
        assignment = {}
        for view in graph.vertices():
            degree = max(view.in_degree, view.out_degree, 1)
            assignment[view.vertex_id] = next(b for b in bounds if b >= degree)
        return assignment

    def _meter_share_distribution(
        self, meter: TrafficMeter, src: int, members: List[int], word_bytes: float
    ) -> None:
        for member in members:
            if member != src:
                meter.record_send(src, member, word_bytes)

    def _computation_step(
        self,
        graph: DistributedGraph,
        gmw: GMWEngine,
        circuits,
        vertex_bound,
        state_shares,
        inbox_shares,
        outbox_shares,
        assignment: BlockAssignment,
        meter: TrafficMeter,
        phases: PhaseTimer,
        rng: DeterministicRNG,
    ) -> int:
        """One §3.6 computation step: GMW per vertex block."""
        started = time.perf_counter()
        ots = 0
        for view in graph.vertices():
            v = view.vertex_id
            bound = vertex_bound[v]
            registers = self.program.state_registers(bound)
            shared_inputs = dict(state_shares[v])
            for slot in range(bound):
                shared_inputs[f"msg_in_{slot}"] = inbox_shares[v][slot]
            result = gmw.evaluate(circuits[bound], shared_inputs, rng)
            state_shares[v] = {reg: result.output_shares[reg] for reg in registers}
            outbox_shares[v] = [
                result.output_shares[f"msg_out_{slot}"] for slot in range(bound)
            ]
            members = assignment.blocks[v]
            per_member_ots = result.traffic.ot_count // max(1, len(members))
            for p, member in enumerate(members):
                meter.node(member).bytes_sent += result.traffic.sent_bits[p] / 8.0
                meter.node(member).bytes_received += result.traffic.received_bits[p] / 8.0
                meter.node(member).gmw_evaluations += 1
                meter.node(member).ot_transfers += per_member_ots
            ots += result.traffic.ot_count
        phases.add("computation", time.perf_counter() - started)
        return ots

    def _communication_step(
        self,
        graph: DistributedGraph,
        nodes: Dict[int, SimulatedNode],
        assignment: BlockAssignment,
        vertex_bound,
        inbox_shares,
        outbox_shares,
        meter: TrafficMeter,
        phases: PhaseTimer,
        rng: DeterministicRNG,
    ) -> int:
        """One §3.6 communication step: §3.5 transfer per directed edge."""
        started = time.perf_counter()
        config = self.config
        fmt = self.program.fmt
        transfers = 0
        for view in graph.vertices():
            u = view.vertex_id
            for out_slot, v in enumerate(view.out_neighbors):
                in_slot = graph.vertex(v).in_slot(u)
                certificate = nodes[u].neighbor_certificates[v]
                neighbor_key = nodes[v].neighbor_keys[in_slot]
                receiver_members = assignment.blocks[v]
                receiver_keys = [nodes[m].member_keys for m in receiver_members]
                result = self.transfer.execute(
                    outbox_shares[u][out_slot],
                    certificate,
                    neighbor_key,
                    receiver_keys,
                    rng,
                )
                inbox_shares[v][in_slot] = result.receiver_shares
                self._meter_transfer(meter, u, v, assignment, result.traffic)
                transfers += 1
            if config.pad_transfers:
                transfers += self._padded_self_transfers(
                    graph, nodes, assignment, vertex_bound, inbox_shares, meter,
                    view, rng
                )
            else:
                # Unused inbox slots revert to fresh no-op shares from the
                # owner (cheap local padding; see DESIGN.md).
                raw_no_op = fmt.to_unsigned(fmt.encode(NO_OP_MESSAGE))
                for slot in range(view.in_degree, vertex_bound[view.vertex_id]):
                    inbox_shares[view.vertex_id][slot] = share_value(
                        raw_no_op, fmt.total_bits, config.block_size, rng
                    )
                    self._meter_share_distribution(
                        meter,
                        view.vertex_id,
                        assignment.blocks[view.vertex_id],
                        (fmt.total_bits + 7) / 8.0,
                    )
        phases.add("communication", time.perf_counter() - started)
        return transfers

    def _padded_self_transfers(
        self, graph, nodes, assignment, vertex_bound, inbox_shares, meter, view, rng
    ) -> int:
        """Run full no-op transfers on unused slots (degree hiding)."""
        config = self.config
        fmt = self.program.fmt
        v = view.vertex_id
        count = 0
        for slot in range(view.in_degree, vertex_bound[v]):
            certificate = nodes[v].neighbor_certificates.get(("self", slot))
            if certificate is None:
                # Leftover certificate for this slot, retained by the owner.
                certificate = self._own_certificate(nodes, assignment, v, slot)
                nodes[v].neighbor_certificates[("self", slot)] = certificate
            shares = share_value(
                fmt.to_unsigned(fmt.encode(NO_OP_MESSAGE)),
                fmt.total_bits,
                config.block_size,
                rng,
            )
            receiver_keys = [nodes[m].member_keys for m in assignment.blocks[v]]
            result = self.transfer.execute(
                shares, certificate, nodes[v].neighbor_keys[slot], receiver_keys, rng
            )
            inbox_shares[v][slot] = result.receiver_shares
            self._meter_transfer(meter, v, v, assignment, result.traffic)
            count += 1
        return count

    def _own_certificate(self, nodes, assignment, v: int, slot: int):
        """Rebuild the leftover certificate for slot ``slot`` of node ``v``.

        In a deployment the node would simply have kept the certificate the
        TP sent; the simulation reconstructs it on demand to avoid storing
        all D certificates for every node.
        """
        # The certificate contents only depend on member keys and the
        # neighbor key, both of which the owner legitimately holds.
        from repro.crypto.keys import SchnorrSigner
        from repro.transfer.certificates import build_certificate

        signer = SchnorrSigner(self.elgamal.group)
        throwaway = signer.keygen(DeterministicRNG(f"self-cert-{v}-{slot}"))
        return build_certificate(
            self.elgamal,
            signer,
            throwaway,
            owner=v,
            edge_slot=slot,
            member_keys=[nodes[m].member_keys for m in assignment.blocks[v]],
            neighbor_key=nodes[v].neighbor_keys[slot],
            rng=DeterministicRNG(f"self-cert-rng-{v}-{slot}"),
        )

    def _meter_transfer(
        self, meter: TrafficMeter, u: int, v: int, assignment: BlockAssignment, traffic
    ) -> None:
        """Distribute §5.3 role traffic onto the simulated nodes."""
        for member in assignment.blocks[u]:
            if member != u:
                meter.record_send(member, u, traffic.sender_member_bytes)
        if u != v:
            meter.record_send(u, v, traffic.node_u_sent_bytes)
        for member in assignment.blocks[v]:
            if member != v:
                meter.record_send(v, member, traffic.receiver_member_bytes)
        # Exponentiation counts per role (cost model input).
        bits = traffic.message_bits
        for member in assignment.blocks[u]:
            meter.node(member).exponentiations += traffic.block_size * (bits + 1)
        meter.node(u).exponentiations += traffic.block_size * bits  # noise terms
        meter.node(v).exponentiations += traffic.block_size  # adjust
        for member in assignment.blocks[v]:
            meter.node(member).exponentiations += bits  # decryption

    # -------------------------------------------------------- aggregation --

    def _aggregate_and_noise(
        self,
        graph: DistributedGraph,
        gmw: GMWEngine,
        state_shares,
        assignment: BlockAssignment,
        meter: TrafficMeter,
        rng: DeterministicRNG,
    ):
        """§3.6 aggregation + noising over a (possibly hierarchical) tree."""
        config = self.config
        program = self.program
        fmt = program.fmt
        bits = fmt.total_bits
        word_bytes = (bits + 7) / 8.0
        block_size = config.block_size

        plan = AggregationPlan(
            groups=plan_groups(graph.vertex_ids, config.aggregation_fanout),
            value_bits=bits,
        )
        root_members = assignment.blocks[AGGREGATION_BLOCK_ID]

        def reshare_to(
            share_words: List[int], width: int, src_members: List[int], dst_members: List[int]
        ) -> List[int]:
            fresh = reshare_word(share_words, width, len(dst_members), rng)
            for src in src_members:
                for dst in dst_members:
                    if src != dst:
                        meter.record_send(src, dst, (width + 7) / 8.0)
            return fresh

        register = program.aggregate_register
        pre_noise_raw = 0
        for v in graph.vertex_ids:
            pre_noise_raw += fmt.from_unsigned(
                reconstruct_value(state_shares[v][register], bits)
            )

        if plan.is_hierarchical:
            group_width = plan.group_sum_bits
            group_sum_shares: List[List[int]] = []
            for group in plan.groups:
                # The group's aggregation block: reuse the first member's
                # block (already a uniformly random k+1 subset).
                group_block = assignment.blocks[group[0]]
                circuit = build_partial_sum_circuit(len(group), bits, group_width)
                shared_inputs = {}
                for index, v in enumerate(group):
                    shared_inputs[f"state_{index}"] = reshare_to(
                        state_shares[v][register], bits, assignment.blocks[v], group_block
                    )
                result = gmw.evaluate(circuit, shared_inputs, rng)
                self._meter_gmw(meter, group_block, result)
                group_sum_shares.append(
                    reshare_to(
                        result.output_shares["partial_sum"],
                        group_width,
                        group_block,
                        root_members,
                    )
                )
            root_inputs = group_sum_shares
            root_width = group_width
            levels = 2
        else:
            root_inputs = [
                reshare_to(state_shares[v][register], bits, assignment.blocks[v], root_members)
                for v in graph.vertex_ids
            ]
            root_width = bits
            levels = 1

        alpha = config.noise_alpha_for(program.sensitivity)
        magnitude_bits = config.noise_magnitude_bits_for(program.sensitivity)
        root_circuit = build_noised_sum_bits_circuit(
            num_inputs=len(root_inputs),
            value_bits=root_width,
            alpha=alpha,
            magnitude_bits=magnitude_bits,
            precision_bits=config.noise_precision_bits,
        )
        seed_width = geometric_bits_seed_width(magnitude_bits, config.noise_precision_bits)
        shared_inputs = {f"state_{i}": shares for i, shares in enumerate(root_inputs)}
        # Every root member contributes its own uniform word as its share of
        # the seed; XOR of the shares is the seed, so one honest member
        # suffices for uniformity (§3.6 "combine the random shares").
        shared_inputs["seed"] = [rng.fork(f"seed-{m}").randbits(seed_width) for m in root_members]
        result = gmw.evaluate(root_circuit, shared_inputs, rng)
        self._meter_gmw(meter, root_members, result)

        noised_raw = result.reveal("noised_sum", signed=True)
        # Revealing the output: every root member publishes its share.
        out_width = result.bus_widths["noised_sum"]
        for member in root_members:
            for other in root_members:
                if member != other:
                    meter.record_send(member, other, (out_width + 7) / 8.0)
        return noised_raw, pre_noise_raw, levels

    def _meter_gmw(self, meter: TrafficMeter, members: List[int], result) -> None:
        for p, member in enumerate(members):
            meter.node(member).bytes_sent += result.traffic.sent_bits[p] / 8.0
            meter.node(member).bytes_received += result.traffic.received_bits[p] / 8.0
            meter.node(member).gmw_evaluations += 1
