"""The one-time trusted-party setup step (§3.4).

The trusted party (e.g. the Federal Reserve) performs exactly two duties
and then leaves:

1. **Block assignment** — picks the ``k+1`` members of every node's block
   (plus the aggregation block) at random, preventing Sybil-stuffed
   blocks, and publishes the signed list.
2. **Certificate generation** — for each node ``v``, builds ``D``
   certificates containing the public keys of ``B_v``'s members
   re-randomized with ``v``'s ``D`` neighbor keys, and signs them.

Critically, the TP's inputs are node identities, public keys and neighbor
keys — *never edges* — so its transcript is independent of the graph
topology. The test suite asserts this structurally: the TP object has no
code path that accepts edge information.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.keys import SchnorrSigner, SchnorrSignature, SigningKeyPair
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError, CryptoError
from repro.transfer.certificates import BlockCertificate, MemberKeys, build_certificate

__all__ = ["BlockAssignment", "TrustedParty", "AGGREGATION_BLOCK_ID"]

#: Pseudo-id under which the aggregation block appears in the block list.
AGGREGATION_BLOCK_ID = -1


@dataclass
class BlockAssignment:
    """The signed output of the block-assignment step.

    ``blocks[i]`` lists the ``k+1`` member node ids of ``B_i`` (node ``i``
    included); ``blocks[AGGREGATION_BLOCK_ID]`` is ``B_A`` (§3.6).
    """

    blocks: Dict[int, List[int]]
    signature: SchnorrSignature

    def digest(self) -> bytes:
        return _assignment_digest(self.blocks)

    def members_of(self, block_id: int) -> List[int]:
        return list(self.blocks[block_id])


def _assignment_digest(blocks: Dict[int, List[int]]) -> bytes:
    hasher = hashlib.sha256()
    for block_id in sorted(blocks):
        hasher.update(f"{block_id}:{','.join(map(str, blocks[block_id]))};".encode())
    return hasher.digest()


class TrustedParty:
    """Runs §3.4 setup. Holds no state between calls beyond its signing key.

    The API deliberately has no parameter through which edge information
    could flow: assignment takes node ids, certificate generation takes
    public keys and neighbor keys.
    """

    def __init__(self, elgamal: ExponentialElGamal, rng: DeterministicRNG) -> None:
        self.elgamal = elgamal
        self.signer = SchnorrSigner(elgamal.group)
        self._rng = rng.fork("trusted-party")
        self.signing_key: SigningKeyPair = self.signer.keygen(self._rng)

    @property
    def public_key(self):
        """The TP verification key every participant knows."""
        return self.signing_key.public

    # -- duty 1: block assignment ------------------------------------------------

    def assign_blocks(self, node_ids: Sequence[int], collusion_bound: int) -> BlockAssignment:
        """Randomly pick ``k+1`` members for every block and for ``B_A``.

        Each node's own block contains the node itself (it coordinates the
        block, §3.3) plus ``k`` distinct others chosen uniformly.
        """
        node_ids = list(node_ids)
        k = collusion_bound
        if len(node_ids) < k + 1:
            raise ConfigurationError(
                f"need at least k+1 = {k + 1} nodes, got {len(node_ids)}"
            )
        blocks: Dict[int, List[int]] = {}
        for node_id in node_ids:
            others = [n for n in node_ids if n != node_id]
            members = [node_id] + self._rng.sample(others, k)
            blocks[node_id] = members
        blocks[AGGREGATION_BLOCK_ID] = self._rng.sample(node_ids, k + 1)
        signature = self.signer.sign(
            self.signing_key, _assignment_digest(blocks), self._rng
        )
        return BlockAssignment(blocks=blocks, signature=signature)

    def verify_assignment(self, assignment: BlockAssignment) -> None:
        """Participant-side check of the signed block list."""
        if not self.signer.verify(self.public_key, assignment.digest(), assignment.signature):
            raise CryptoError("block assignment signature invalid")

    # -- duty 2: block certificates ------------------------------------------------

    def build_block_certificates(
        self,
        owner: int,
        block_member_keys: Sequence[MemberKeys],
        neighbor_keys: Sequence[int],
    ) -> List[BlockCertificate]:
        """``D`` certificates for ``B_owner``, one per neighbor key.

        The TP learns the neighbor keys but not which neighbor will receive
        which certificate — the owner forwards them privately — so the TP
        still learns nothing about edges.
        """
        return [
            build_certificate(
                self.elgamal,
                self.signer,
                self.signing_key,
                owner=owner,
                edge_slot=slot,
                member_keys=block_member_keys,
                neighbor_key=neighbor_key,
                rng=self._rng,
            )
            for slot, neighbor_key in enumerate(neighbor_keys)
        ]
