"""The message bus every engine routes rounds over (§3.6 as a transport).

A real DStress deployment is message-passing over a WAN: each participant
is one node, and a round's cost is dominated by the transfer I/O, not the
local compute. The seed engines instead shuffled dicts in-process, which
made it impossible to model (let alone overlap) communication. This module
is the abstraction that separates *what* a round delivers from *how* it
travels:

* :class:`Transport` — the protocol: a synchronous full-round delivery
  (:meth:`~Transport.deliver_outboxes`, the hook behind
  :func:`repro.core.rounds.route_messages`) plus the asynchronous per-edge
  path (:meth:`~Transport.send` / :meth:`~Transport.gather_round`) the
  async engine schedules vertex tasks over. ``gather_round`` *is* the
  round barrier: a vertex's round-``r`` gather resolves exactly when all
  of its expected round-``r`` messages have been delivered (or accounted
  as faulted), never earlier. A third path, :meth:`~Transport.convey`,
  carries slot-less cryptographic payloads (GMW OT-extension batches, §3.5
  transfer aggregates) for the secure engine's rounds — same link model,
  byte counts instead of values.
* :class:`InMemoryTransport` — the reference path. Zero-delay, in-order
  per slot, bit-identical to the historical dict shuffle; every engine
  that claims parity with ``plaintext`` runs over this.
* :class:`SimulatedWanTransport` — injects per-link latency and
  bandwidth delays derived from :class:`~repro.core.config.DStressConfig`
  (``wan_latency_seconds`` / ``wan_bandwidth_bytes`` / ``wan_jitter``)
  and meters every delivery into a
  :class:`~repro.simulation.netsim.TrafficMeter`. Delays never change
  payloads, so results stay bit-identical to the in-memory path — only
  wall-clock and the meters move.
* :class:`FaultInjectingTransport` — a chaos *wrapper* that drops or
  duplicates selected deliveries over any inner bus so the failure path
  is testable: a faulted round raises a
  :class:`~repro.exceptions.TransportError` naming the link and round
  instead of hanging the gather.
* ``transport="tcp"`` — the real-socket backend
  (:class:`repro.net.transport.TcpTransport`, registered here, imported
  lazily): the same protocol over framed asyncio TCP streams between
  genuine OS processes, mesh shape taken from the ``REPRO_TCP_*``
  environment (or pass a connected instance; see :mod:`repro.net`).

Determinism contract: transports deliver *values* into slots; they never
reorder slots, merge payloads, or touch floats. Whatever the scheduling,
an engine that gathers a complete round sees exactly the inbox the
sequential ``route_messages`` would have produced.
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError, TransportError
from repro.simulation.netsim import TrafficMeter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config imports nothing here)
    from repro.core.config import DStressConfig
    from repro.core.graph import DistributedGraph

__all__ = [
    "Transport",
    "InMemoryTransport",
    "SimulatedWanTransport",
    "FaultInjectingTransport",
    "transport_from_spec",
    "check_transport_spec",
    "innermost_transport",
    "wan_meter_snapshot",
    "attach_wan_extras",
    "attach_wire_extras",
    "validate_wan_params",
]

#: Slot sentinel distinguishing "nothing delivered yet" from a delivered
#: payload that happens to equal the fill value.
_EMPTY = object()

#: A link is one directed edge's (src, dst) pair.
Link = Tuple[int, int]


def validate_wan_params(
    latency_seconds: float, bandwidth_bytes: Optional[float], jitter: float
) -> None:
    """The one rule for valid WAN model parameters.

    Shared by :class:`~repro.core.config.DStressConfig` and
    :class:`SimulatedWanTransport` so a config-built bus and a directly
    constructed one can never accept different parameter ranges.
    """
    if latency_seconds < 0:
        raise ConfigurationError("WAN latency cannot be negative")
    if bandwidth_bytes is not None and bandwidth_bytes <= 0:
        raise ConfigurationError("WAN bandwidth must be positive (or None)")
    if not 0.0 <= jitter < 1.0:
        raise ConfigurationError("WAN jitter must lie in [0, 1)")


def _duplicate_delivery_error(
    src: int, dst: int, in_slot: int, round_index: int
) -> TransportError:
    """The one wording for a duplicate-delivery fault, shared by the
    async slot check and the synchronous fault injector."""
    return TransportError(
        f"round {round_index}: duplicate delivery {src}->{dst} "
        f"(in-slot {in_slot} already filled)"
    )


class Transport(ABC):
    """One way round messages travel between vertices.

    A transport instance serves one execution at a time: :meth:`open`
    resets all per-run state (mailboxes, meters' link accounting is the
    caller's to reset). Engines may reuse an instance across sequential
    runs but must not share one across concurrent runs.
    """

    #: Registry-style name stamped into result extras.
    name: str = "abstract"

    # -- synchronous full-round path ------------------------------------------

    @abstractmethod
    def deliver_outboxes(
        self, graph: "DistributedGraph", outboxes: Dict[int, List[Any]], fill: Any
    ) -> Dict[int, List[Any]]:
        """Deliver a full round of outboxes and return the inboxes.

        This is the slot-to-slot §3.6 delivery the sequential engines
        route through (:func:`repro.core.rounds.route_messages`): unused
        in-slots hold ``fill`` so every vertex receives exactly
        ``degree_bound`` messages.
        """

    # -- asynchronous per-edge path -------------------------------------------

    def open(self, graph: "DistributedGraph", fill: Any) -> None:
        """Bind to a graph for one execution — sync or async.

        Allocates per-(vertex, round) mailboxes and the expected-arrival
        counts the round barrier resolves against, and resets any per-run
        state a subclass keeps (round counters, fault accounting). Every
        engine calls this once at the start of each execution, so a bus
        instance reused across runs starts each run fresh; for the async
        path, call it before the first :meth:`send`.
        """
        self._graph = graph
        self._fill = fill
        self._expected: Dict[int, int] = {
            view.vertex_id: view.in_degree for view in graph.vertices()
        }
        self._mail: Dict[Tuple[int, int], List[Any]] = {}
        self._resolved: Dict[Tuple[int, int], int] = {}
        self._faulted: Dict[Tuple[int, int], List[str]] = {}
        self._events: Dict[Tuple[int, int], asyncio.Event] = {}

    async def send(
        self, src: int, dst: int, in_slot: int, payload: Any, round_index: int
    ) -> None:
        """Deliver one round message into ``dst``'s in-slot.

        Subclasses that model the wire override this to await the link
        delay before handing off to :meth:`_deliver`.
        """
        self._deliver(src, dst, in_slot, payload, round_index)

    async def convey(
        self, src: int, dst: int, num_bytes: float, round_index: int, kind: str = "crypto"
    ) -> None:
        """Carry ``num_bytes`` of cryptographic payload over ``src -> dst``.

        This is the bus's side-channel for protocol traffic that has no
        in-slot — a block's GMW OT-extension batch, a §3.5 transfer's
        subshare aggregates — where the *values* are computed by the
        protocol simulation and only the *bytes* travel. The reference bus
        carries them instantly; :class:`SimulatedWanTransport` meters the
        bytes into its per-link accounting and awaits the payload-scaled
        link delay (latency + ``num_bytes / bandwidth``), which is what
        the secure-async engine overlaps OT computation against; and
        :class:`FaultInjectingTransport` raises a
        :class:`~repro.exceptions.TransportError` for faulted deliveries
        instead of hanging the round. ``kind`` names the payload class in
        fault messages (``"ot"`` / ``"transfer"``).
        """
        return None

    async def gather_round(self, vertex_id: int, round_index: int) -> List[Any]:
        """Await and return ``vertex_id``'s complete round inbox.

        Resolves when every expected arrival for ``(vertex_id, round)``
        has been delivered or accounted as faulted; a faulted round raises
        :class:`TransportError` instead of returning a partial inbox — and
        instead of hanging, because faults count toward the barrier too.
        """
        key = (vertex_id, round_index)
        if self._expected[vertex_id] > 0:
            await self._await_round(key)
        faults = self._faulted.pop(key, None)
        if faults:
            raise TransportError(
                f"round {round_index}: vertex {vertex_id} cannot complete its "
                "gather: " + "; ".join(faults)
            )
        slots = self._mail.pop(key, None)
        self._events.pop(key, None)
        self._resolved.pop(key, None)
        if slots is None:
            return [self._fill] * self._graph.degree_bound
        return [self._fill if value is _EMPTY else value for value in slots]

    async def fault_delivery(
        self, src: int, dst: int, in_slot: int, round_index: int, description: str
    ) -> None:
        """Account one delivery that will never arrive (the chaos wrapper's
        drop path): the round barrier still resolves, and the victim's
        gather raises a :class:`TransportError` carrying ``description``.
        Buses whose mailboxes live on another thread/loop (the real-socket
        transport) override this to account the fault over there.
        """
        self._fault((dst, round_index), description)

    def close(self, error: Optional[BaseException] = None) -> None:
        """Release any resources the bus holds (sockets, loops, threads).

        The in-process buses hold none, so this is a no-op; engines call
        it in a ``finally`` for every bus they built themselves from a
        string spec, which is what lets ``transport="tcp"`` tear its mesh
        down (with ``error`` as the announced abort cause) even when the
        run fails.
        """

    # -- shared mailbox mechanics ---------------------------------------------

    async def _await_round(self, key: Tuple[int, int]) -> None:
        """Block until ``key``'s round barrier resolves.

        The one overridable wait inside :meth:`gather_round`: the
        in-process buses wait on the mailbox event alone (nothing else can
        happen), while the real-socket transport races it against peer
        failure and an I/O timeout so a dead peer can never hang a round.
        """
        await self._event(key).wait()

    def _event(self, key: Tuple[int, int]) -> asyncio.Event:
        event = self._events.get(key)
        if event is None:
            event = self._events[key] = asyncio.Event()
        return event

    def _slots(self, key: Tuple[int, int]) -> List[Any]:
        slots = self._mail.get(key)
        if slots is None:
            slots = self._mail[key] = [_EMPTY] * self._graph.degree_bound
        return slots

    def _deliver(
        self, src: int, dst: int, in_slot: int, payload: Any, round_index: int
    ) -> None:
        key = (dst, round_index)
        slots = self._slots(key)
        if slots[in_slot] is not _EMPTY:
            raise _duplicate_delivery_error(src, dst, in_slot, round_index)
        slots[in_slot] = payload
        self._resolve(key)

    def _fault(self, key: Tuple[int, int], description: str) -> None:
        """Account a delivery that will never arrive; resolves the barrier."""
        self._faulted.setdefault(key, []).append(description)
        self._resolve(key)

    def _resolve(self, key: Tuple[int, int]) -> None:
        count = self._resolved.get(key, 0) + 1
        self._resolved[key] = count
        if count >= self._expected[key[0]]:
            self._event(key).set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class InMemoryTransport(Transport):
    """The reference bus: zero delay, nothing metered, bit-identical.

    ``deliver_outboxes`` is exactly the historical dict shuffle; the async
    path delivers each payload untouched, so any engine scheduling over
    this transport reproduces the sequential inboxes verbatim.
    """

    name = "memory"

    def deliver_outboxes(self, graph, outboxes, fill):
        inboxes = {v: [fill] * graph.degree_bound for v in graph.vertex_ids}
        for view in graph.vertices():
            for out_slot, neighbor in enumerate(view.out_neighbors):
                in_slot = graph.vertex(neighbor).in_slot(view.vertex_id)
                inboxes[neighbor][in_slot] = outboxes[view.vertex_id][out_slot]
        return inboxes


class SimulatedWanTransport(InMemoryTransport):
    """A WAN bus: per-link latency + bandwidth delays, metered traffic.

    Each directed link ``src -> dst`` gets a deterministic latency of
    ``latency_seconds * jitter_factor(src, dst)`` where the factor is
    drawn once per link from a :class:`DeterministicRNG` keyed by
    ``(seed, src, dst)`` — so delays are reproducible run-to-run and
    independent of delivery order. A message of ``message_bytes`` bytes
    additionally pays ``message_bytes / bandwidth_bytes`` serialization
    delay when a bandwidth is configured.

    ``realtime=True`` (the async engines' mode) actually awaits the delay
    so wall-clock reflects the schedule; ``realtime=False`` and the
    synchronous :meth:`deliver_outboxes` path only *account* the delay in
    :attr:`simulated_seconds`. Either way every delivery is recorded into
    :attr:`meter` (a :class:`~repro.simulation.netsim.TrafficMeter`), so
    bandwidth figures are straight protocol arithmetic.
    """

    name = "wan"

    def __init__(
        self,
        latency_seconds: float = 0.0,
        bandwidth_bytes: Optional[float] = None,
        jitter: float = 0.0,
        message_bytes: float = 8.0,
        meter: Optional[TrafficMeter] = None,
        seed: int = 0,
        realtime: bool = True,
    ) -> None:
        validate_wan_params(latency_seconds, bandwidth_bytes, jitter)
        if message_bytes < 0:
            raise ConfigurationError("message size cannot be negative")
        self.latency_seconds = latency_seconds
        self.bandwidth_bytes = bandwidth_bytes
        self.jitter = jitter
        self.message_bytes = message_bytes
        self.meter = meter if meter is not None else TrafficMeter()
        self.seed = seed
        self.realtime = realtime
        #: Total accounted link-delay seconds (both sync and async paths).
        self.simulated_seconds = 0.0
        self._link_factors: Dict[Link, float] = {}

    @classmethod
    def from_config(
        cls,
        config: "DStressConfig",
        meter: Optional[TrafficMeter] = None,
        realtime: bool = True,
    ) -> "SimulatedWanTransport":
        """Build the WAN model a config describes (message size = one
        fixed-point word of the config's format)."""
        return cls(
            latency_seconds=config.wan_latency_seconds,
            bandwidth_bytes=config.wan_bandwidth_bytes,
            jitter=config.wan_jitter,
            message_bytes=config.fmt.total_bits / 8.0,
            meter=meter,
            seed=config.seed,
            realtime=realtime,
        )

    def link_delay(self, src: int, dst: int, num_bytes: Optional[float] = None) -> float:
        """Deterministic one-way delay of the directed link ``src -> dst``.

        ``num_bytes`` overrides the default per-message payload size for
        serialization-delay purposes (used by :meth:`convey`, whose crypto
        payloads are much larger than one round message).
        """
        factor = self._link_factors.get((src, dst))
        if factor is None:
            rng = DeterministicRNG(f"wan-link|{self.seed}|{src}|{dst}")
            factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            self._link_factors[(src, dst)] = factor
        delay = self.latency_seconds * factor
        if self.bandwidth_bytes is not None:
            payload = self.message_bytes if num_bytes is None else num_bytes
            delay += payload / self.bandwidth_bytes
        return delay

    def _account(self, src: int, dst: int) -> float:
        delay = self.link_delay(src, dst)
        self.simulated_seconds += delay
        self.meter.record_send(src, dst, self.message_bytes)
        return delay

    def deliver_outboxes(self, graph, outboxes, fill):
        for src, dst in graph.edges():
            self._account(src, dst)
        return super().deliver_outboxes(graph, outboxes, fill)

    async def send(self, src, dst, in_slot, payload, round_index):
        delay = self._account(src, dst)
        if self.realtime and delay > 0:
            await asyncio.sleep(delay)
        self._deliver(src, dst, in_slot, payload, round_index)

    async def convey(self, src, dst, num_bytes, round_index, kind="crypto"):
        delay = self.link_delay(src, dst, num_bytes=num_bytes)
        self.simulated_seconds += delay
        self.meter.record_send(src, dst, num_bytes)
        if self.realtime and delay > 0:
            await asyncio.sleep(delay)


class FaultInjectingTransport(Transport):
    """A chaos wrapper that misbehaves on selected deliveries — over any bus.

    ``drop`` / ``duplicate`` are sets of ``(src, dst, round_index)``
    triples; ``inner`` is the bus that actually carries everything else
    (default: a fresh :class:`InMemoryTransport`, the historical
    behavior — but wrapping a :class:`SimulatedWanTransport` or a
    real-socket ``TcpTransport`` injects the same chaos against a metered
    or genuinely networked mesh). On the async path, a dropped delivery
    never reaches the inner bus but *is* accounted at its round barrier
    (:meth:`Transport.fault_delivery`), so the victim's gather raises a
    :class:`TransportError` naming the link instead of hanging; a
    duplicated delivery goes through the inner bus twice, tripping the
    duplicate check. On the synchronous path (sequential engines, the
    sharded barrier) each :meth:`deliver_outboxes` call is one round —
    counted from the start of the execution, since every engine opens
    the bus per run — and the same faults raise at that round's
    delivery. Used by the fault-path tests and available for chaos-style
    batch runs over any engine.

    When the inner bus is shared across real processes (TCP), give every
    replica the *same* fault sets: chaos is part of the replicated
    schedule, exactly like the payloads.
    """

    name = "faulty"

    def __init__(
        self,
        drop: Iterable[Tuple[int, int, int]] = (),
        duplicate: Iterable[Tuple[int, int, int]] = (),
        inner: Optional[Transport] = None,
    ) -> None:
        self.drop: Set[Tuple[int, int, int]] = set(drop)
        self.duplicate: Set[Tuple[int, int, int]] = set(duplicate)
        self.inner: Transport = inner if inner is not None else InMemoryTransport()
        self._sync_round = 0

    def open(self, graph, fill):
        self.inner.open(graph, fill)
        self._sync_round = 0

    def close(self, error: Optional[BaseException] = None) -> None:
        self.inner.close(error)

    async def gather_round(self, vertex_id, round_index):
        return await self.inner.gather_round(vertex_id, round_index)

    def deliver_outboxes(self, graph, outboxes, fill):
        # delegate the actual slot routing to the inner bus (one copy of
        # the routing contract), then apply this round's faults on top
        round_index = self._sync_round
        self._sync_round += 1
        inboxes = self.inner.deliver_outboxes(graph, outboxes, fill)
        dropped: List[str] = []
        for src, dst, fault_round in sorted(self.duplicate):
            if fault_round == round_index and dst in graph.vertex(src).out_neighbors:
                raise _duplicate_delivery_error(
                    src, dst, graph.vertex(dst).in_slot(src), round_index
                )
        for src, dst, fault_round in sorted(self.drop):
            if fault_round == round_index and dst in graph.vertex(src).out_neighbors:
                in_slot = graph.vertex(dst).in_slot(src)
                dropped.append(
                    f"delivery {src}->{dst} (in-slot {in_slot}) was dropped"
                )
        if dropped:
            raise TransportError(
                f"round {round_index}: cannot complete delivery: "
                + "; ".join(dropped)
            )
        return inboxes

    async def send(self, src, dst, in_slot, payload, round_index):
        # no real-edge guard needed here: engines only send() along the
        # graph's actual edges, so a fault triple naming a non-edge never
        # matches a send — inert on this path exactly as on the sync one
        if (src, dst, round_index) in self.drop:
            await self.inner.fault_delivery(
                src,
                dst,
                in_slot,
                round_index,
                f"delivery {src}->{dst} (in-slot {in_slot}) was dropped",
            )
            return
        await self.inner.send(src, dst, in_slot, payload, round_index)
        if (src, dst, round_index) in self.duplicate:
            await self.inner.send(src, dst, in_slot, payload, round_index)

    async def convey(self, src, dst, num_bytes, round_index, kind="crypto"):
        # crypto payloads have no in-slot and no gather barrier, so both
        # fault classes raise right here in the conveying task — the
        # secure round scheduler's barrier propagates the error instead
        # of waiting forever on bytes that will never (or twice) arrive
        if (src, dst, round_index) in self.drop:
            raise TransportError(
                f"round {round_index}: {kind} delivery {src}->{dst} was dropped"
            )
        if (src, dst, round_index) in self.duplicate:
            raise TransportError(
                f"round {round_index}: duplicate {kind} delivery {src}->{dst} "
                "(crypto payloads are one-shot; a replay would desynchronize "
                "the protocol transcript)"
            )
        await self.inner.convey(src, dst, num_bytes, round_index, kind=kind)


def _tcp_from_env(config, meter):
    # lazy import: the in-process buses must not pay for (or depend on)
    # the socket subsystem; the spec only resolves when actually asked for
    from repro.net.transport import TcpTransport

    return TcpTransport.from_env(config, meter=meter)


#: String specs accepted anywhere a transport can be named.
_TRANSPORT_SPECS = {
    "memory": lambda config, meter: InMemoryTransport(),
    "wan": lambda config, meter: SimulatedWanTransport.from_config(config, meter=meter),
    "tcp": _tcp_from_env,
}
_TRANSPORT_ALIASES = {
    "in-memory": "memory",
    "inmemory": "memory",
    "simulated-wan": "wan",
    "wan-sim": "wan",
    "socket": "tcp",
    "sockets": "tcp",
}


def check_transport_spec(spec, optional: bool = False):
    """Validate an engine's ``transport`` constructor option and return it.

    One validation shared by every engine that accepts a transport, so
    the error message (and what counts as a valid spec) cannot drift
    between backends. String specs are resolved against the known names
    *here*, at engine construction — a typo'd name must abort a batch at
    resolve time, before budget is charged, not surface as a per-scenario
    error mid-run. ``optional=True`` additionally admits ``None`` ("use
    the engine's default bus").
    """
    if optional and spec is None:
        return spec
    if not isinstance(spec, (str, Transport)):
        raise ConfigurationError(
            "transport must be a Transport instance or a name "
            f"('memory' / 'wan' / 'tcp'), got {type(spec).__name__}"
        )
    if isinstance(spec, str):
        canonical = _TRANSPORT_ALIASES.get(spec, spec)
        if canonical not in _TRANSPORT_SPECS:
            raise ConfigurationError(
                f"unknown transport {spec!r}; known transports: "
                + ", ".join(sorted(_TRANSPORT_SPECS) + sorted(_TRANSPORT_ALIASES))
            )
    return spec


def innermost_transport(bus) -> "Transport":
    """Peel chaos (or future) wrappers off a bus: the transport that
    actually carries the bytes. Wrappers expose the wrapped bus as
    ``inner``; everything that introspects a bus's metering goes through
    here so a wrapped WAN or TCP bus reports exactly like a bare one.
    """
    while isinstance(getattr(bus, "inner", None), Transport):
        bus = bus.inner
    return bus


def wan_meter_snapshot(bus) -> Tuple[float, float]:
    """(simulated_seconds, metered bytes) of a bus before a run starts.

    Engines snapshot these counters so results report per-run deltas even
    when a caller shares one :class:`SimulatedWanTransport` instance (and
    therefore one cumulative meter) across several runs. Non-WAN buses
    snapshot as zeros.
    """
    bus = innermost_transport(bus)
    if isinstance(bus, SimulatedWanTransport):
        return bus.simulated_seconds, bus.meter.total_bytes_sent
    return 0.0, 0.0


def attach_wan_extras(result, bus, before: Tuple[float, float]) -> None:
    """Stamp a run result with the bus's WAN metering, as per-run deltas.

    ``result`` is any object with ``traffic`` and ``extras`` attributes
    (duck-typed so this module stays below :mod:`repro.api`): ``traffic``
    becomes the bus's live meter (cumulative if the caller shares the bus
    across runs), while ``extras["simulated_seconds"]`` and
    ``extras["wan_bytes"]`` are this run's deltas against the ``before``
    snapshot from :func:`wan_meter_snapshot`. No-op for non-WAN buses.
    """
    bus = innermost_transport(bus)
    if isinstance(bus, SimulatedWanTransport):
        result.traffic = bus.meter
        result.extras["simulated_seconds"] = bus.simulated_seconds - before[0]
        result.extras["wan_bytes"] = bus.meter.total_bytes_sent - before[1]


def attach_wire_extras(result, bus) -> None:
    """Stamp real-socket wire accounting onto a run result.

    Duck-typed like :func:`attach_wan_extras` (any bus exposing a
    ``wire_stats()`` mapping — the real-socket ``TcpTransport``, possibly
    under a chaos wrapper), so this module never imports the socket
    subsystem. No-op for in-process buses.
    """
    stats_fn = getattr(innermost_transport(bus), "wire_stats", None)
    if not callable(stats_fn):
        return
    stats = stats_fn()
    for key in ("frames_sent", "frames_received", "bytes_sent", "bytes_received"):
        result.extras[f"wire_{key}"] = float(stats[key])
    result.extras["wire_party_id"] = float(stats["party_id"])


def transport_from_spec(
    spec,
    config: "DStressConfig",
    meter: Optional[TrafficMeter] = None,
) -> Transport:
    """Resolve a transport spec: an instance passes through, a string
    (``"memory"`` / ``"wan"`` and aliases) builds one from the config.

    Validation (including the unknown-name error) lives solely in
    :func:`check_transport_spec`, so construction-time and resolve-time
    paths can never report different known-transport lists.
    """
    spec = check_transport_spec(spec)
    if isinstance(spec, Transport):
        return spec
    return _TRANSPORT_SPECS[_TRANSPORT_ALIASES.get(spec, spec)](config, meter)
