"""Cryptographic substrate: groups, ElGamal, signatures, OT.

Everything DStress needs from cryptography, built from scratch:

- :mod:`repro.crypto.group` — prime-order cyclic groups (Schnorr groups);
- :mod:`repro.crypto.ec` — NIST P-256 / P-384 elliptic curves (the paper's
  secp384r1 deployment group);
- :mod:`repro.crypto.elgamal` — exponential ElGamal with the additive
  homomorphism and key re-randomization required by §3;
- :mod:`repro.crypto.dlog` — bounded discrete-log recovery (lookup table /
  baby-step giant-step) for exponential-ElGamal decryption;
- :mod:`repro.crypto.keys` — Schnorr signatures for the trusted party;
- :mod:`repro.crypto.ot` / :mod:`repro.crypto.ot_extension` — base OT and
  IKNP OT extension for the GMW engine;
- :mod:`repro.crypto.rng` — deterministic randomness for replayable runs.
"""

from repro.crypto.dlog import BabyStepGiantStep, DlogTable
from repro.crypto.ec import P256, P384, EllipticCurveGroup, secp256r1, secp384r1
from repro.crypto.elgamal import (
    Ciphertext,
    CountingGroup,
    ElGamal,
    ExponentialElGamal,
    KeyPair,
)
from repro.crypto.group import (
    GROUP_160,
    GROUP_256,
    GROUP_512,
    TOY_GROUP_64,
    CyclicGroup,
    SchnorrGroup,
    default_group,
)
from repro.crypto.keys import SchnorrSignature, SchnorrSigner, Signed, SigningKeyPair
from repro.crypto.ot import (
    DDHObliviousTransfer,
    ObliviousTransfer,
    OTStats,
    SimulatedObliviousTransfer,
)
from repro.crypto.ot_extension import IKNPOTExtension
from repro.crypto.rng import DeterministicRNG

__all__ = [
    "BabyStepGiantStep",
    "Ciphertext",
    "CountingGroup",
    "CyclicGroup",
    "DDHObliviousTransfer",
    "DeterministicRNG",
    "DlogTable",
    "ElGamal",
    "EllipticCurveGroup",
    "ExponentialElGamal",
    "GROUP_160",
    "GROUP_256",
    "GROUP_512",
    "IKNPOTExtension",
    "KeyPair",
    "ObliviousTransfer",
    "OTStats",
    "P256",
    "P384",
    "SchnorrGroup",
    "SchnorrSignature",
    "SchnorrSigner",
    "Signed",
    "SigningKeyPair",
    "SimulatedObliviousTransfer",
    "TOY_GROUP_64",
    "default_group",
    "secp256r1",
    "secp384r1",
]
