"""Bounded discrete-log recovery for exponential ElGamal.

Exponential ElGamal encrypts ``g**m`` rather than ``m``, so decryption ends
with a discrete-log computation. DStress only ever decrypts *small* values
(noised sums of bits, Appendix B), so the paper uses a precomputed lookup
table; when the noised value falls outside the table the transfer fails,
which is exactly the ``P_fail`` analysed in Appendix B.

Two strategies are provided:

* :class:`DlogTable` — the paper's approach: precompute ``g**c`` for all
  candidates ``c`` in a symmetric window ``[-half, half]``.
* :class:`BabyStepGiantStep` — O(sqrt(range)) time and memory, useful when
  the window is too large to tabulate in tests.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.crypto.group import CyclicGroup
from repro.exceptions import DecryptionError

__all__ = ["DlogTable", "BabyStepGiantStep"]


class DlogTable:
    """Lookup-table discrete log over a symmetric integer window.

    Parameters
    ----------
    group:
        The cyclic group.
    half_width:
        Recoverable exponents are ``[-half_width, half_width]``; the table
        stores ``2 * half_width + 1`` entries (``N_l`` in Appendix B).
    """

    def __init__(self, group: CyclicGroup, half_width: int) -> None:
        if half_width < 0:
            raise ValueError("half_width must be non-negative")
        self.group = group
        self.half_width = half_width
        self._table: Dict[bytes, int] = {}
        element = group.identity
        g = group.generator
        for value in range(half_width + 1):
            self._table.setdefault(group.element_to_bytes(element), value)
            element = group.mul(element, g)
        element = group.inv(g)
        g_inv = element
        for value in range(1, half_width + 1):
            self._table.setdefault(group.element_to_bytes(element), -value)
            element = group.mul(element, g_inv)

    @property
    def num_entries(self) -> int:
        """Number of table entries (the Appendix B ``N_l``)."""
        return 2 * self.half_width + 1

    def recover(self, element: Any) -> int:
        """Return ``m`` such that ``g**m == element``.

        Raises
        ------
        DecryptionError
            If the exponent lies outside the table window — the transfer
            failure event whose probability Appendix B bounds.
        """
        key = self.group.element_to_bytes(element)
        try:
            return self._table[key]
        except KeyError:
            raise DecryptionError(
                f"exponent outside dlog window ±{self.half_width}"
            ) from None


class BabyStepGiantStep:
    """Shanks' baby-step/giant-step for exponents in ``[-half, half]``."""

    def __init__(self, group: CyclicGroup, half_width: int) -> None:
        if half_width < 0:
            raise ValueError("half_width must be non-negative")
        self.group = group
        self.half_width = half_width
        span = 2 * half_width + 1
        self._m = max(1, int(span**0.5) + 1)
        self._baby: Dict[bytes, int] = {}
        element = group.identity
        g = group.generator
        for j in range(self._m):
            self._baby.setdefault(group.element_to_bytes(element), j)
            element = group.mul(element, g)
        # giant step multiplies by g^{-m}
        self._giant_step = group.inv(group.power_of_g(self._m))

    def recover(self, element: Any) -> int:
        """Return ``m`` with ``g**m == element`` or raise DecryptionError."""
        group = self.group
        # Shift so the search range is [0, 2*half]: solve for m + half.
        shifted = group.mul(element, group.power_of_g(self.half_width))
        span = 2 * self.half_width + 1
        gamma = shifted
        max_i = (span + self._m - 1) // self._m
        for i in range(max_i + 1):
            j = self._baby.get(group.element_to_bytes(gamma))
            if j is not None:
                candidate = i * self._m + j - self.half_width
                if -self.half_width <= candidate <= self.half_width:
                    return candidate
            gamma = group.mul(gamma, self._giant_step)
        raise DecryptionError(f"exponent outside dlog window ±{self.half_width}")
