"""Elliptic-curve groups (NIST P-256 / P-384) in pure Python.

The DStress prototype used the secp384r1 curve through OpenSSL. This module
provides the same curve (and the smaller P-256) as a :class:`CyclicGroup`, so
every protocol in the library can run over the paper's exact group when
fidelity matters more than speed.

Points are exposed as affine ``(x, y)`` tuples with ``None`` as the point at
infinity; scalar multiplication uses Jacobian projective coordinates with a
fixed 4-bit window to avoid per-step field inversions.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.crypto.group import CyclicGroup
from repro.exceptions import CryptoError

__all__ = ["EllipticCurveGroup", "P256", "P384", "secp256r1", "secp384r1"]

Point = Optional[Tuple[int, int]]


class EllipticCurveGroup(CyclicGroup):
    """Short Weierstrass curve ``y^2 = x^3 + ax + b`` over ``GF(p)``.

    The group is the full (prime) order-``n`` group of curve points, written
    multiplicatively to satisfy the :class:`CyclicGroup` interface: ``mul``
    is point addition and ``exp`` is scalar multiplication.
    """

    def __init__(self, name: str, p: int, a: int, b: int, gx: int, gy: int, n: int) -> None:
        self.name = name
        self.p = p
        self.a = a % p
        self.b = b % p
        self.order = n
        self._g = (gx, gy)
        self._field_bytes = (p.bit_length() + 7) // 8
        if not self._on_curve(self._g):
            raise CryptoError(f"{name}: generator is not on the curve (bad constants)")
        # Fixed-window table for the generator; built lazily on first use.
        self._g_window: list[Point] | None = None

    # -- curve arithmetic (affine wrappers over Jacobian internals) -------

    def _on_curve(self, pt: Point) -> bool:
        if pt is None:
            return True
        x, y = pt
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def _to_jacobian(self, pt: Point) -> Tuple[int, int, int]:
        if pt is None:
            return (1, 1, 0)
        return (pt[0], pt[1], 1)

    def _from_jacobian(self, jac: Tuple[int, int, int]) -> Point:
        x, y, z = jac
        if z == 0:
            return None
        z_inv = pow(z, self.p - 2, self.p)
        z_inv2 = z_inv * z_inv % self.p
        return (x * z_inv2 % self.p, y * z_inv2 * z_inv % self.p)

    def _jac_double(self, jac: Tuple[int, int, int]) -> Tuple[int, int, int]:
        x, y, z = jac
        if z == 0 or y == 0:
            return (1, 1, 0)
        p = self.p
        ysq = y * y % p
        s = 4 * x * ysq % p
        m = (3 * x * x + self.a * pow(z, 4, p)) % p
        nx = (m * m - 2 * s) % p
        ny = (m * (s - nx) - 8 * ysq * ysq) % p
        nz = 2 * y * z % p
        return (nx, ny, nz)

    def _jac_add(self, p1: Tuple[int, int, int], p2: Tuple[int, int, int]) -> Tuple[int, int, int]:
        if p1[2] == 0:
            return p2
        if p2[2] == 0:
            return p1
        p = self.p
        x1, y1, z1 = p1
        x2, y2, z2 = p2
        z1sq = z1 * z1 % p
        z2sq = z2 * z2 % p
        u1 = x1 * z2sq % p
        u2 = x2 * z1sq % p
        s1 = y1 * z2sq * z2 % p
        s2 = y2 * z1sq * z1 % p
        if u1 == u2:
            if s1 != s2:
                return (1, 1, 0)
            return self._jac_double(p1)
        h = (u2 - u1) % p
        r = (s2 - s1) % p
        hsq = h * h % p
        hcu = hsq * h % p
        u1hsq = u1 * hsq % p
        nx = (r * r - hcu - 2 * u1hsq) % p
        ny = (r * (u1hsq - nx) - s1 * hcu) % p
        nz = h * z1 * z2 % p
        return (nx, ny, nz)

    def _jac_scalar_mul(self, pt: Point, k: int) -> Point:
        """4-bit fixed-window scalar multiplication."""
        k %= self.order
        if k == 0 or pt is None:
            return None
        base = self._to_jacobian(pt)
        # Precompute 1..15 multiples.
        table: list[Tuple[int, int, int]] = [(1, 1, 0), base]
        for _ in range(14):
            table.append(self._jac_add(table[-1], base))
        acc = (1, 1, 0)
        for shift in range(k.bit_length() + (-k.bit_length() % 4) - 4, -1, -4):
            for _ in range(4):
                acc = self._jac_double(acc)
            digit = (k >> shift) & 0xF
            if digit:
                acc = self._jac_add(acc, table[digit])
        return self._from_jacobian(acc)

    # -- CyclicGroup interface --------------------------------------------

    @property
    def generator(self) -> Point:
        return self._g

    @property
    def identity(self) -> Point:
        return None

    def mul(self, a: Point, b: Point) -> Point:
        return self._from_jacobian(self._jac_add(self._to_jacobian(a), self._to_jacobian(b)))

    def exp(self, base: Point, exponent: int) -> Point:
        return self._jac_scalar_mul(base, exponent)

    def power_of_g(self, exponent: int) -> Point:
        return self._jac_scalar_mul(self._g, exponent)

    def inv(self, a: Point) -> Point:
        if a is None:
            return None
        x, y = a
        return (x, (-y) % self.p)

    def is_element(self, a: Point) -> bool:
        if a is None:
            return True
        if not (isinstance(a, tuple) and len(a) == 2):
            return False
        x, y = a
        return 0 <= x < self.p and 0 <= y < self.p and self._on_curve(a)

    def element_to_bytes(self, a: Point) -> bytes:
        """Compressed SEC1 encoding: 0x00 for infinity, 0x02/0x03 || x."""
        if a is None:
            return b"\x00" * (1 + self._field_bytes)
        x, y = a
        prefix = b"\x03" if y & 1 else b"\x02"
        return prefix + x.to_bytes(self._field_bytes, "big")

    def element_from_bytes(self, data: bytes) -> Point:
        if len(data) != 1 + self._field_bytes:
            raise CryptoError("bad point encoding length")
        if data[0] == 0:
            return None
        if data[0] not in (2, 3):
            raise CryptoError("bad point encoding prefix")
        x = int.from_bytes(data[1:], "big")
        rhs = (pow(x, 3, self.p) + self.a * x + self.b) % self.p
        # Both NIST primes satisfy p = 3 (mod 4), so sqrt is a single pow.
        y = pow(rhs, (self.p + 1) // 4, self.p)
        if y * y % self.p != rhs:
            raise CryptoError("x-coordinate is not on the curve")
        if (y & 1) != (data[0] & 1):
            y = self.p - y
        return (x, y)

    @property
    def element_size_bytes(self) -> int:
        return 1 + self._field_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EllipticCurveGroup({self.name})"


_P256_P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF

P256 = EllipticCurveGroup(
    name="secp256r1",
    p=_P256_P,
    a=_P256_P - 3,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)

_P384_P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFF0000000000000000FFFFFFFF

P384 = EllipticCurveGroup(
    name="secp384r1",
    p=_P384_P,
    a=_P384_P - 3,
    b=0xB3312FA7E23EE7E4988E056BE3F82D19181D9C6EFE8141120314088F5013875AC656398D8A2ED19D2A85C8EDD3EC2AEF,
    gx=0xAA87CA22BE8B05378EB1C71EF320AD746E1D3B628BA79B9859F741E082542A385502F25DBF55296C3A545E3872760AB7,
    gy=0x3617DE4A96262C6F5D9E98BF9292DC29F8F41DBD289A147CE9DA3113B5F0B8C00A60B1CE1D7E819D7A431D7C90EA0E5F,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFC7634D81F4372DDF581A0DB248B0A77AECEC196ACCC52973,
)

#: Aliases matching the OpenSSL curve names used in the paper (§5.1).
secp256r1 = P256
secp384r1 = P384
