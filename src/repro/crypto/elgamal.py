"""ElGamal encryption with the two extensions DStress needs (§3).

1. **Additive homomorphism** — *exponential* ElGamal encrypts ``g**m``, so
   multiplying ciphertexts adds plaintexts. Decryption recovers ``g**m`` and
   then takes a bounded discrete log (:mod:`repro.crypto.dlog`).
2. **Public-key re-randomization** — a public key ``g**x`` can be raised to
   a *neighbor key* ``r`` yielding ``g**(x r)``; a ciphertext produced under
   the re-randomized key decrypts under the original secret key once its
   ephemeral half is also raised to ``r`` (the ``Adjust`` step of
   Appendix A). Neither operation needs the secret key.

The module also implements the Kurosawa multi-recipient optimization used by
the prototype (§5.1): one ephemeral scalar is shared across the ``L`` bit
ciphertexts destined for the same recipient, saving ``L - 1``
exponentiations per subshare at the cost of needing ``L`` public keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.crypto.dlog import DlogTable
from repro.crypto.group import CyclicGroup, default_group
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CryptoError

__all__ = [
    "KeyPair",
    "Ciphertext",
    "ElGamal",
    "ExponentialElGamal",
    "CountingGroup",
]


@dataclass(frozen=True)
class KeyPair:
    """An ElGamal key pair: secret scalar ``x`` and public element ``g**x``."""

    secret: int
    public: Any


@dataclass(frozen=True)
class Ciphertext:
    """An ElGamal ciphertext ``(c1, c2) = (g**y, m * h**y)``."""

    c1: Any
    c2: Any

    def size_bytes(self, group: CyclicGroup) -> int:
        """Wire size of this ciphertext; both halves are group elements."""
        return 2 * group.element_size_bytes


class ElGamal:
    """Multiplicatively homomorphic ElGamal over an arbitrary DDH group."""

    def __init__(self, group: Optional[CyclicGroup] = None) -> None:
        self.group = group if group is not None else default_group()

    def keygen(self, rng: DeterministicRNG) -> KeyPair:
        """Generate a key pair ``(x, g**x)``."""
        x = self.group.random_scalar(rng)
        return KeyPair(secret=x, public=self.group.power_of_g(x))

    def encrypt(self, public_key: Any, message: Any, rng: DeterministicRNG) -> Ciphertext:
        """Encrypt a *group element* under ``public_key``."""
        y = self.group.random_scalar(rng)
        return self.encrypt_with_ephemeral(public_key, message, y)

    def encrypt_with_ephemeral(self, public_key: Any, message: Any, ephemeral: int) -> Ciphertext:
        """Encrypt with a caller-chosen ephemeral scalar (Kurosawa reuse)."""
        g = self.group
        return Ciphertext(c1=g.power_of_g(ephemeral), c2=g.mul(message, g.exp(public_key, ephemeral)))

    def decrypt(self, secret_key: int, ciphertext: Ciphertext) -> Any:
        """Recover the group element ``m`` from ``(c1, c2)``."""
        g = self.group
        shared = g.exp(ciphertext.c1, secret_key)
        return g.mul(ciphertext.c2, g.inv(shared))

    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic product: decrypts to the product of the plaintexts."""
        g = self.group
        return Ciphertext(c1=g.mul(a.c1, b.c1), c2=g.mul(a.c2, b.c2))

    def rerandomize_key(self, public_key: Any, neighbor_key: int) -> Any:
        """Raise ``g**x`` to ``r`` yielding the re-randomized key ``g**(xr)``.

        Used by the trusted party to build block certificates (§3.4): the
        sender sees only ``g**(xr)`` and cannot link it to ``g**x``.
        """
        if not (0 < neighbor_key < self.group.order):
            raise CryptoError("neighbor key must be a nonzero scalar")
        return self.group.exp(public_key, neighbor_key)

    def adjust(self, ciphertext: Ciphertext, neighbor_key: int) -> Ciphertext:
        """Raise the ephemeral half to ``r`` so the original key decrypts.

        A ciphertext under ``g**(xr)`` is ``(g**y, m g**(xry))``; raising
        ``c1`` to ``r`` gives ``(g**(ry), m g**(x ry))`` — a valid ciphertext
        under ``g**x``. Performed by the edge endpoint ``j`` (§3.5) without
        any knowledge of ``x``.
        """
        return Ciphertext(c1=self.group.exp(ciphertext.c1, neighbor_key), c2=ciphertext.c2)


class ExponentialElGamal(ElGamal):
    """Additively homomorphic ElGamal: encrypts ``g**m`` for integer ``m``.

    Parameters
    ----------
    group:
        Underlying DDH group.
    dlog_half_width:
        Half-width of the decryption lookup table (Appendix B ``N_l/2``).
        Decryption of values outside ``[-half, half]`` raises
        :class:`~repro.exceptions.DecryptionError` — the protocol failure
        event whose probability the paper bounds.
    """

    def __init__(self, group: Optional[CyclicGroup] = None, dlog_half_width: int = 4096) -> None:
        super().__init__(group)
        self._dlog = DlogTable(self.group, dlog_half_width)

    @property
    def dlog_table(self) -> DlogTable:
        return self._dlog

    def encrypt_int(self, public_key: Any, value: int, rng: DeterministicRNG) -> Ciphertext:
        """Encrypt the integer ``value`` as ``g**value``."""
        return self.encrypt(public_key, self.group.power_of_g(value), rng)

    def encrypt_int_with_ephemeral(self, public_key: Any, value: int, ephemeral: int) -> Ciphertext:
        return self.encrypt_with_ephemeral(public_key, self.group.power_of_g(value), ephemeral)

    def decrypt_int(self, secret_key: int, ciphertext: Ciphertext) -> int:
        """Recover the integer plaintext via the bounded dlog table."""
        return self._dlog.recover(self.decrypt(secret_key, ciphertext))

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic addition: decrypts to the sum of the plaintexts."""
        return self.multiply(a, b)

    def add_plain(self, ciphertext: Ciphertext, value: int) -> Ciphertext:
        """Homomorphically add a *public* integer to a ciphertext.

        This is the operation node ``i`` uses to inject geometric noise in
        the final transfer protocol (§3.5): it multiplies ``c2`` by
        ``g**value``, leaving the ephemeral half untouched.
        """
        g = self.group
        return Ciphertext(c1=ciphertext.c1, c2=g.mul(ciphertext.c2, g.power_of_g(value)))

    def sum_ciphertexts(self, ciphertexts: Sequence[Ciphertext]) -> Ciphertext:
        """Homomorphic sum of one or more ciphertexts."""
        if not ciphertexts:
            raise CryptoError("cannot sum zero ciphertexts")
        total = ciphertexts[0]
        for ct in ciphertexts[1:]:
            total = self.add(total, ct)
        return total

    # -- Kurosawa multi-recipient optimization (§5.1) ----------------------

    def encrypt_bits_kurosawa(
        self,
        public_keys: Sequence[Any],
        bits: Sequence[int],
        rng: DeterministicRNG,
    ) -> List[Ciphertext]:
        """Encrypt ``L`` bits for one recipient holding ``L`` public keys.

        A single ephemeral scalar ``y`` is reused for every bit, so the
        ``g**y`` half is computed once: ``L + 1`` exponentiations instead of
        ``2L``. Requires one *distinct* public key per bit, exactly as the
        paper describes for [44].
        """
        if len(public_keys) != len(bits):
            raise CryptoError("need exactly one public key per bit")
        g = self.group
        y = g.random_scalar(rng)
        c1 = g.power_of_g(y)
        out = []
        for pk, bit in zip(public_keys, bits):
            if bit not in (0, 1):
                raise CryptoError("bits must be 0 or 1")
            c2 = g.mul(g.power_of_g(bit), g.exp(pk, y))
            out.append(Ciphertext(c1=c1, c2=c2))
        return out


class CountingGroup(CyclicGroup):
    """Wrapper that counts group operations for the cost model.

    The paper's microbenchmarks show exponentiations dominating transfer
    cost (§5.2); the timing model in :mod:`repro.simulation.timing` is
    calibrated against counts collected through this wrapper.
    """

    def __init__(self, inner: CyclicGroup) -> None:
        self.inner = inner
        self.name = f"counting({inner.name})"
        self.order = inner.order
        self.exp_count = 0
        self.mul_count = 0
        self.inv_count = 0

    def reset(self) -> None:
        self.exp_count = 0
        self.mul_count = 0
        self.inv_count = 0

    @property
    def generator(self) -> Any:
        return self.inner.generator

    @property
    def identity(self) -> Any:
        return self.inner.identity

    def mul(self, a: Any, b: Any) -> Any:
        self.mul_count += 1
        return self.inner.mul(a, b)

    def exp(self, base: Any, exponent: int) -> Any:
        self.exp_count += 1
        return self.inner.exp(base, exponent)

    def power_of_g(self, exponent: int) -> Any:
        self.exp_count += 1
        return self.inner.power_of_g(exponent)

    def inv(self, a: Any) -> Any:
        self.inv_count += 1
        return self.inner.inv(a)

    def is_element(self, a: Any) -> bool:
        return self.inner.is_element(a)

    def element_to_bytes(self, a: Any) -> bytes:
        return self.inner.element_to_bytes(a)

    def element_from_bytes(self, data: bytes) -> Any:
        return self.inner.element_from_bytes(data)

    @property
    def element_size_bytes(self) -> int:
        return self.inner.element_size_bytes
