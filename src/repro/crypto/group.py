"""Cyclic groups of prime order for ElGamal and the transfer protocol.

DStress needs a group in which the decisional Diffie-Hellman problem is
assumed hard (Appendix A, Theorem 2). The paper's prototype used the NIST
secp384r1 elliptic curve; this module provides the abstract interface plus
Schnorr groups (prime-order subgroups of ``Z_p^*`` for safe primes ``p``),
while :mod:`repro.crypto.ec` provides the elliptic-curve instantiations.

Group elements are opaque values manipulated only through the group object,
so ElGamal and the transfer protocol are generic over the instantiation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CryptoError

__all__ = [
    "CyclicGroup",
    "SchnorrGroup",
    "TOY_GROUP_64",
    "GROUP_160",
    "GROUP_256",
    "GROUP_512",
    "default_group",
]


class CyclicGroup(ABC):
    """A cyclic group of prime order ``q`` with a fixed generator ``g``.

    Elements are written multiplicatively: ``mul`` composes, ``exp`` raises
    to a scalar in ``Z_q``, ``identity`` is the neutral element.
    """

    #: Human-readable name, used in benchmark output.
    name: str
    #: Prime order of the group.
    order: int

    @property
    @abstractmethod
    def generator(self) -> Any:
        """The fixed generator ``g``."""

    @property
    @abstractmethod
    def identity(self) -> Any:
        """The neutral element."""

    @abstractmethod
    def mul(self, a: Any, b: Any) -> Any:
        """Return the group product ``a * b``."""

    @abstractmethod
    def exp(self, base: Any, exponent: int) -> Any:
        """Return ``base`` raised to ``exponent`` (mod the group order)."""

    @abstractmethod
    def inv(self, a: Any) -> Any:
        """Return the group inverse of ``a``."""

    @abstractmethod
    def is_element(self, a: Any) -> bool:
        """Return True when ``a`` is a valid element of this group."""

    @abstractmethod
    def element_to_bytes(self, a: Any) -> bytes:
        """Serialize ``a`` to a fixed-width byte string."""

    @abstractmethod
    def element_from_bytes(self, data: bytes) -> Any:
        """Inverse of :meth:`element_to_bytes`."""

    @property
    @abstractmethod
    def element_size_bytes(self) -> int:
        """Serialized size of one element; drives traffic accounting."""

    # -- Conveniences shared by all instantiations ------------------------

    def power_of_g(self, exponent: int) -> Any:
        """Return ``g**exponent``; subclasses may override with fixed-base
        precomputation."""
        return self.exp(self.generator, exponent)

    def random_scalar(self, rng: DeterministicRNG) -> int:
        """Return a uniform nonzero scalar in ``[1, q)``."""
        return 1 + rng.randbelow(self.order - 1)

    def div(self, a: Any, b: Any) -> Any:
        """Return ``a * b^{-1}``."""
        return self.mul(a, self.inv(b))

    def equal(self, a: Any, b: Any) -> bool:
        """Element equality (overridable for non-canonical representations)."""
        return a == b

    def hash_to_scalar(self, data: bytes) -> int:
        """Hash arbitrary bytes to a scalar; used by OT and key derivation."""
        import hashlib

        digest = hashlib.sha512(data).digest()
        return int.from_bytes(digest, "big") % self.order


class SchnorrGroup(CyclicGroup):
    """The order-``q`` subgroup of ``Z_p^*`` for a safe prime ``p = 2q+1``.

    Elements are Python ints in ``[1, p)`` that are quadratic residues.
    ``exp`` maps to native ``pow`` so these groups are fast even in pure
    Python, which makes them the default for the large simulation runs.
    """

    def __init__(self, p: int, q: int, g: int, name: str = "schnorr") -> None:
        if p != 2 * q + 1:
            raise CryptoError("SchnorrGroup requires a safe prime p = 2q + 1")
        if pow(g, q, p) != 1 or g in (0, 1):
            raise CryptoError("generator does not have order q")
        self.p = p
        self.order = q
        self._g = g
        self.name = name
        self._size = (p.bit_length() + 7) // 8

    @property
    def generator(self) -> int:
        return self._g

    @property
    def identity(self) -> int:
        return 1

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def exp(self, base: int, exponent: int) -> int:
        return pow(base, exponent % self.order, self.p)

    def inv(self, a: int) -> int:
        return pow(a, self.p - 2, self.p)

    def is_element(self, a: Any) -> bool:
        return isinstance(a, int) and 0 < a < self.p and pow(a, self.order, self.p) == 1

    def element_to_bytes(self, a: int) -> bytes:
        return a.to_bytes(self._size, "big")

    def element_from_bytes(self, data: bytes) -> int:
        if len(data) != self._size:
            raise CryptoError(f"expected {self._size} bytes, got {len(data)}")
        value = int.from_bytes(data, "big")
        if not self.is_element(value):
            raise CryptoError("bytes do not encode a group element")
        return value

    @property
    def element_size_bytes(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchnorrGroup({self.name}, |p|={self.p.bit_length()} bits)"


# Precomputed safe-prime groups (generated offline with Miller-Rabin, 40
# rounds; seed 20170423). The 64-bit group is a *toy* used only to keep unit
# tests fast; the 512-bit group is the default simulation group.

TOY_GROUP_64 = SchnorrGroup(
    p=0xEE2CB9D186C5BDAB,
    q=0x77165CE8C362DED5,
    g=0x4,
    name="toy-64",
)

GROUP_160 = SchnorrGroup(
    p=0xB1D86FA547E4BD0D691E60825815F9BA2C2BAE7B,
    q=0x58EC37D2A3F25E86B48F30412C0AFCDD1615D73D,
    g=0x4,
    name="schnorr-160",
)

GROUP_256 = SchnorrGroup(
    p=0xB377485658B5FB58F3396E0C424221257264010913E84BB7B7782D9BCACF2DD7,
    q=0x59BBA42B2C5AFDAC799CB70621211092B932008489F425DBDBBC16CDE56796EB,
    g=0x4,
    name="schnorr-256",
)

GROUP_512 = SchnorrGroup(
    p=0x9C8E5F73ED1C01B19CB58200B01ADF5887A80A5FFC56C9B53AF15A78D32B329A975379311DA88F8B8165DB80DE87A557D4E2A99C1A7F01976459042029911A4F,
    q=0x4E472FB9F68E00D8CE5AC100580D6FAC43D4052FFE2B64DA9D78AD3C6995994D4BA9BC988ED447C5C0B2EDC06F43D2ABEA7154CE0D3F80CBB22C821014C88D27,
    g=0x4,
    name="schnorr-512",
)


def default_group() -> CyclicGroup:
    """The group used by default throughout the simulation.

    We default to the 256-bit Schnorr group: it is comfortably in the DDH
    regime while keeping pure-Python exponentiation fast enough for
    end-to-end runs. The paper's secp384r1 curve is available from
    :mod:`repro.crypto.ec` for fidelity experiments.
    """
    return GROUP_256
