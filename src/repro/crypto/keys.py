"""Key material and signatures for the one-time setup step (§3.4).

The trusted party signs the block list and the block certificates. The paper
does not prescribe a signature scheme; we implement Schnorr signatures over
the same DDH group the rest of the system uses, so the whole construction
stays self-contained.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto.group import CyclicGroup, default_group
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CryptoError

__all__ = ["SchnorrSignature", "SigningKeyPair", "SchnorrSigner", "Signed"]


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature ``(challenge e, response s)``."""

    e: int
    s: int

    def size_bytes(self, group: CyclicGroup) -> int:
        scalar_bytes = (group.order.bit_length() + 7) // 8
        return 2 * scalar_bytes


@dataclass(frozen=True)
class SigningKeyPair:
    """Schnorr signing key: secret scalar and public element ``g**x``."""

    secret: int
    public: Any


@dataclass(frozen=True)
class Signed:
    """A payload together with its signature; ``payload`` must be bytes."""

    payload: bytes
    signature: SchnorrSignature


class SchnorrSigner:
    """Schnorr signatures (hash-then-respond) over a cyclic group."""

    def __init__(self, group: Optional[CyclicGroup] = None) -> None:
        self.group = group if group is not None else default_group()

    def keygen(self, rng: DeterministicRNG) -> SigningKeyPair:
        x = self.group.random_scalar(rng)
        return SigningKeyPair(secret=x, public=self.group.power_of_g(x))

    def _challenge(self, commitment: Any, message: bytes) -> int:
        data = self.group.element_to_bytes(commitment) + b"|" + message
        return int.from_bytes(hashlib.sha256(data).digest(), "big") % self.group.order

    def sign(self, key: SigningKeyPair, message: bytes, rng: DeterministicRNG) -> SchnorrSignature:
        """Sign ``message``: commit ``g**k``, challenge ``e = H(g**k, m)``,
        respond ``s = k - x e``."""
        k = self.group.random_scalar(rng)
        commitment = self.group.power_of_g(k)
        e = self._challenge(commitment, message)
        s = (k - key.secret * e) % self.group.order
        return SchnorrSignature(e=e, s=s)

    def verify(self, public_key: Any, message: bytes, signature: SchnorrSignature) -> bool:
        """Check ``e == H(g**s * pk**e, m)``."""
        g = self.group
        commitment = g.mul(g.power_of_g(signature.s), g.exp(public_key, signature.e))
        return self._challenge(commitment, message) == signature.e

    def seal(self, key: SigningKeyPair, payload: bytes, rng: DeterministicRNG) -> Signed:
        """Sign and bundle a payload."""
        return Signed(payload=payload, signature=self.sign(key, payload, rng))

    def open(self, public_key: Any, signed: Signed) -> bytes:
        """Verify a bundle and return the payload; raise on a bad signature."""
        if not self.verify(public_key, signed.payload, signed.signature):
            raise CryptoError("invalid signature on sealed payload")
        return signed.payload
