"""Oblivious transfer: the primitive under every GMW AND gate.

In the GMW protocol (§3, "Secure multiparty computation") each AND gate
requires one 1-out-of-2 OT between every ordered pair of parties. The paper
inherits OT from the Choi et al. GMW implementation, including OT extension
(§5.3); we implement the primitive from scratch:

* :class:`DDHObliviousTransfer` — the "simplest OT" protocol of Chou and
  Orlandi over any DDH group. Real public-key crypto; used in unit tests
  and available to the engine for fidelity runs.
* :class:`SimulatedObliviousTransfer` — a functionally identical fast
  backend that shortcuts the public-key steps with hashing. It reports the
  byte counts *of the real protocol*, so traffic accounting (Figure 4) is
  unaffected by the speedup.

Both expose the same interface so the GMW engine is backend-agnostic;
:mod:`repro.crypto.ot_extension` builds IKNP extension on top.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Optional

from repro.crypto.group import CyclicGroup, default_group
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError

__all__ = [
    "ObliviousTransfer",
    "DDHObliviousTransfer",
    "SimulatedObliviousTransfer",
    "OTStats",
]


class OTStats:
    """Running totals of OT invocations and wire bytes."""

    def __init__(self) -> None:
        self.transfers = 0
        self.sender_bytes = 0
        self.receiver_bytes = 0

    def record(self, sender_bytes: int, receiver_bytes: int) -> None:
        self.transfers += 1
        self.sender_bytes += sender_bytes
        self.receiver_bytes += receiver_bytes

    @property
    def total_bytes(self) -> int:
        return self.sender_bytes + self.receiver_bytes


class ObliviousTransfer(ABC):
    """1-out-of-2 oblivious transfer of equal-length byte strings.

    ``transfer`` plays both roles of the two-party protocol in-process (the
    whole deployment is simulated); implementations must not let the result
    depend on anything but ``(m0, m1, choice)``.
    """

    def __init__(self) -> None:
        self.stats = OTStats()

    @abstractmethod
    def transfer(self, m0: bytes, m1: bytes, choice: int, rng: DeterministicRNG) -> bytes:
        """Return ``m_choice``; the sender learns nothing about ``choice``
        and the receiver learns nothing about the other message."""

    @abstractmethod
    def sender_bytes_per_transfer(self, message_len: int) -> int:
        """Bytes the sender puts on the wire for one transfer."""

    @abstractmethod
    def receiver_bytes_per_transfer(self, message_len: int) -> int:
        """Bytes the receiver puts on the wire for one transfer."""

    def transfer_bit(self, b0: int, b1: int, choice: int, rng: DeterministicRNG) -> int:
        """Convenience wrapper for single-bit OT (the GMW workhorse)."""
        result = self.transfer(bytes([b0 & 1]), bytes([b1 & 1]), choice, rng)
        return result[0] & 1


def _mask(key: bytes, length: int) -> bytes:
    """Expand ``key`` into a ``length``-byte XOR pad."""
    out = b""
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(key + counter.to_bytes(4, "big")).digest()
        counter += 1
    return out[:length]


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class DDHObliviousTransfer(ObliviousTransfer):
    """Chou-Orlandi "simplest OT" over a DDH group.

    Sender publishes ``A = g**a``. The receiver with choice bit ``c`` sends
    ``B = g**b`` (c=0) or ``B = A * g**b`` (c=1). The sender derives pads
    ``k0 = H(B**a)`` and ``k1 = H((B/A)**a)`` and sends both messages
    XOR-padded; the receiver derives ``k_c = H(A**b)`` and unpads its choice.
    """

    def __init__(self, group: Optional[CyclicGroup] = None) -> None:
        super().__init__()
        self.group = group if group is not None else default_group()

    def _derive(self, element) -> bytes:
        return hashlib.sha256(b"ot-pad|" + self.group.element_to_bytes(element)).digest()

    def transfer(self, m0: bytes, m1: bytes, choice: int, rng: DeterministicRNG) -> bytes:
        if len(m0) != len(m1):
            raise ProtocolError("OT messages must have equal length")
        if choice not in (0, 1):
            raise ProtocolError("OT choice must be 0 or 1")
        g = self.group

        # Sender round 1: A = g**a.
        a = g.random_scalar(rng)
        big_a = g.power_of_g(a)

        # Receiver round: B depends on the choice bit.
        b = g.random_scalar(rng)
        big_b = g.power_of_g(b) if choice == 0 else g.mul(big_a, g.power_of_g(b))

        # Sender round 2: derive both pads and send padded messages.
        k0 = self._derive(g.exp(big_b, a))
        k1 = self._derive(g.exp(g.div(big_b, big_a), a))
        e0 = _xor(m0, _mask(k0, len(m0)))
        e1 = _xor(m1, _mask(k1, len(m1)))

        # Receiver output: pad for the chosen message is H(A**b).
        k_c = self._derive(g.exp(big_a, b))
        chosen = e0 if choice == 0 else e1
        result = _xor(chosen, _mask(k_c, len(chosen)))

        self.stats.record(
            sender_bytes=self.sender_bytes_per_transfer(len(m0)),
            receiver_bytes=self.receiver_bytes_per_transfer(len(m0)),
        )
        return result

    def sender_bytes_per_transfer(self, message_len: int) -> int:
        # A plus the two padded messages.
        return self.group.element_size_bytes + 2 * message_len

    def receiver_bytes_per_transfer(self, message_len: int) -> int:
        # B only.
        return self.group.element_size_bytes


class SimulatedObliviousTransfer(ObliviousTransfer):
    """Fast backend: functionally exact OT without public-key operations.

    The returned value is exactly ``m_choice`` (as any correct OT), so GMW
    executions are bit-identical to runs over :class:`DDHObliviousTransfer`.
    Traffic is accounted using the DDH protocol's message sizes over
    ``accounting_group`` so that bandwidth results (Figure 4) reflect the
    real protocol rather than the shortcut.
    """

    def __init__(self, accounting_group: Optional[CyclicGroup] = None) -> None:
        super().__init__()
        self._group = accounting_group if accounting_group is not None else default_group()
        self._sender_bit_bytes = self.sender_bytes_per_transfer(1)
        self._receiver_bit_bytes = self.receiver_bytes_per_transfer(1)

    def transfer(self, m0: bytes, m1: bytes, choice: int, rng: DeterministicRNG) -> bytes:
        if len(m0) != len(m1):
            raise ProtocolError("OT messages must have equal length")
        if choice not in (0, 1):
            raise ProtocolError("OT choice must be 0 or 1")
        # Consume randomness to mirror the real protocol's RNG usage.
        rng.randbits(32)
        self.stats.record(
            sender_bytes=self.sender_bytes_per_transfer(len(m0)),
            receiver_bytes=self.receiver_bytes_per_transfer(len(m0)),
        )
        return m1 if choice else m0

    def transfer_bit(self, b0: int, b1: int, choice: int, rng: DeterministicRNG) -> int:
        """Fast path for the GMW inner loop: skips the bytes round-trip.

        Functionally identical to the base implementation; it exists
        because GMW calls this once per AND gate per ordered party pair.
        """
        self.stats.record(
            sender_bytes=self._sender_bit_bytes,
            receiver_bytes=self._receiver_bit_bytes,
        )
        return (b1 if choice else b0) & 1

    def sender_bytes_per_transfer(self, message_len: int) -> int:
        return self._group.element_size_bytes + 2 * message_len

    def receiver_bytes_per_transfer(self, message_len: int) -> int:
        return self._group.element_size_bytes
