"""IKNP oblivious-transfer extension (Ishai et al. [41]).

GMW consumes one OT per AND gate per ordered party pair, so public-key OT
would dominate everything. The paper notes (§5.3) that its GMW backend keeps
traffic low because it uses OT extension: a small number ``kappa`` of *base*
OTs (public-key) is stretched into an arbitrary number of fast,
symmetric-crypto OTs.

This module implements the semi-honest IKNP construction:

1. The parties run ``kappa`` base OTs *in the reverse direction*: the OT
   sender plays receiver with choice bits ``s`` (its secret correlation
   string), obtaining columns ``q^i = t^i XOR (s_i * r)`` where ``t^i`` are
   the receiver's random columns and ``r`` its batch of choice bits.
2. Row-wise, the sender holds ``q_j = t_j XOR (r_j * s)``; hashing rows
   gives two pads per OT of which the receiver can compute exactly one.
3. Each precomputed *random* OT is derandomized online with one bit from
   the receiver and two padded messages from the sender.

The class is a drop-in :class:`~repro.crypto.ot.ObliviousTransfer`; the GMW
engine can use it unchanged.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

from repro.crypto.ot import ObliviousTransfer, _mask, _xor
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError

try:  # numpy is optional: the pure-Python transpose below stays correct
    import numpy as _np
except ImportError:  # pragma: no cover - container always ships numpy
    _np = None  # type: ignore[assignment]

__all__ = ["IKNPOTExtension"]


def _transpose_bits_python(cols: List[int], count: int) -> List[int]:
    """Columns-to-rows bit transpose: ``rows[j]`` has bit ``i`` equal to
    bit ``j`` of ``cols[i]`` (the IKNP matrix pivot)."""
    rows = []
    for j in range(count):
        row = 0
        for i, col in enumerate(cols):
            row |= ((col >> j) & 1) << i
        rows.append(row)
    return rows


def _transpose_bits_numpy(cols: List[int], count: int) -> List[int]:
    """Batched-matrix form of the transpose: unpack every column into a
    bit matrix, pivot it in one shot, repack rows. Bit-identical to
    :func:`_transpose_bits_python` (little-endian bit ``j`` of an int's
    little-endian bytes is exactly ``(value >> j) & 1``); asserted by
    tests/test_mpc_bitslice.py."""
    if count == 0:
        return []
    if not cols:
        return [0] * count
    col_bytes = (count + 7) // 8
    raw = b"".join(col.to_bytes(col_bytes, "little") for col in cols)
    matrix = _np.frombuffer(raw, dtype=_np.uint8).reshape(len(cols), col_bytes)
    bits = _np.unpackbits(matrix, axis=1, bitorder="little")[:, :count]
    packed = _np.packbits(bits.T, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


_transpose_bits = _transpose_bits_python if _np is None else _transpose_bits_numpy


class IKNPOTExtension(ObliviousTransfer):
    """OT extension: ``kappa`` base OTs amortized over many transfers.

    Parameters
    ----------
    base_ot:
        The (public-key) OT used for the ``kappa`` base transfers.
    kappa:
        Computational security parameter; the paper's GMW backend uses 80,
        modern practice 128.
    batch_size:
        Number of random OTs precomputed per extension phase.
    """

    def __init__(
        self,
        base_ot: ObliviousTransfer,
        kappa: int = 128,
        batch_size: int = 1024,
    ) -> None:
        super().__init__()
        if kappa < 8:
            raise ProtocolError("kappa too small to be meaningful")
        self.base_ot = base_ot
        self.kappa = kappa
        self.batch_size = batch_size
        self._pool: List[Tuple[bytes, bytes, int]] = []  # (u0, u1, c) triples
        self.base_ot_count = 0
        self.extension_phases = 0

    # -- batch generation ---------------------------------------------------

    def _hash_row(self, index: int, row: int) -> bytes:
        data = index.to_bytes(8, "big") + row.to_bytes((self.kappa + 7) // 8, "big")
        return hashlib.sha256(b"iknp|" + data).digest()

    def _run_extension(self, rng: DeterministicRNG) -> None:
        """Precompute ``batch_size`` random OTs: fills ``self._pool``."""
        m = self.batch_size
        col_bytes = (m + 7) // 8

        # Receiver side: random choice bits r and random columns t^i.
        r = rng.randbits(m)
        t_cols = [rng.randbits(m) for _ in range(self.kappa)]

        # Sender side: correlation string s.
        s = rng.randbits(self.kappa)

        # kappa base OTs in the reverse direction: the extension *sender*
        # acts as base-OT receiver with choice bit s_i and obtains
        # q^i = t^i (s_i = 0) or t^i XOR r (s_i = 1).
        q_cols = []
        for i in range(self.kappa):
            s_i = (s >> i) & 1
            m0 = t_cols[i].to_bytes(col_bytes, "big")
            m1 = (t_cols[i] ^ r).to_bytes(col_bytes, "big")
            chosen = self.base_ot.transfer(m0, m1, s_i, rng)
            q_cols.append(int.from_bytes(chosen, "big"))
            self.base_ot_count += 1

        # Transpose columns to rows (batched matrix pivot when numpy is
        # available) and derive the pads.
        t_rows = _transpose_bits(t_cols, m)
        q_rows = _transpose_bits(q_cols, m)
        pool = []
        for j in range(m):
            t_row = t_rows[j]
            q_row = q_rows[j]
            r_j = (r >> j) & 1
            u0 = self._hash_row(j, q_row)
            u1 = self._hash_row(j, q_row ^ s)
            # Sanity invariant of IKNP: the receiver's row hashes to u_{r_j}.
            receiver_pad = self._hash_row(j, t_row)
            expected = u1 if r_j else u0
            if receiver_pad != expected:
                raise ProtocolError("IKNP row correlation broken")
            pool.append((u0, u1, r_j))
        self._pool.extend(pool)
        self.extension_phases += 1

    def ensure(self, count: int, rng: DeterministicRNG) -> None:
        """Offline-phase API: run extension phases until at least ``count``
        random OTs sit in the pool, so an online loop consuming them never
        pauses for a batch mid-round."""
        if count < 0:
            raise ProtocolError("cannot provision a negative OT count")
        while len(self._pool) < count:
            self._run_extension(rng)

    @property
    def pooled(self) -> int:
        """Random OTs currently precomputed and unconsumed."""
        return len(self._pool)

    # -- ObliviousTransfer interface -----------------------------------------

    def transfer(self, m0: bytes, m1: bytes, choice: int, rng: DeterministicRNG) -> bytes:
        if len(m0) != len(m1):
            raise ProtocolError("OT messages must have equal length")
        if choice not in (0, 1):
            raise ProtocolError("OT choice must be 0 or 1")
        if not self._pool:
            self._run_extension(rng)
        u0, u1, c = self._pool.pop()

        # Online derandomization: receiver reveals d = choice XOR c; the
        # sender pads (m0, m1) with (u_d, u_{1-d}).
        d = choice ^ c
        pads = (u0, u1) if d == 0 else (u1, u0)
        e0 = _xor(m0, _mask(pads[0], len(m0)))
        e1 = _xor(m1, _mask(pads[1], len(m1)))
        chosen = e1 if choice else e0
        result = _xor(chosen, _mask(u1 if c else u0, len(chosen)))

        self.stats.record(
            sender_bytes=self.sender_bytes_per_transfer(len(m0)),
            receiver_bytes=self.receiver_bytes_per_transfer(len(m0)),
        )
        return result

    def sender_bytes_per_transfer(self, message_len: int) -> int:
        # Two padded messages; base-OT cost amortizes to kappa bits of
        # column material per extended OT.
        return 2 * message_len + (self.kappa + 7) // 8

    def receiver_bytes_per_transfer(self, message_len: int) -> int:
        # One derandomization bit, rounded up.
        return 1
