"""Deterministic randomness for the DStress simulation.

All randomness in the library flows through :class:`DeterministicRNG`, a
SHA-256 counter-mode deterministic random bit generator. Determinism matters
here: the whole point of the reproduction is that experiments are replayable,
so every protocol component takes an explicit RNG instead of reaching for
global entropy. Independent sub-streams are derived by label so that, e.g.,
each simulated node owns an independent generator.

This is a *simulation* DRBG: it is uniform and unpredictable enough for
protocol correctness experiments, but no security claims are made about seed
secrecy (the seeds are chosen by the experimenter).
"""

from __future__ import annotations

import hashlib
import struct

__all__ = ["DeterministicRNG"]

_BLOCK_BYTES = hashlib.sha256().digest_size


class DeterministicRNG:
    """SHA-256 counter-mode DRBG with labelled sub-stream derivation.

    Parameters
    ----------
    seed:
        Any bytes-like or integer seed. Two generators built from equal
        seeds produce identical streams.
    """

    def __init__(self, seed: bytes | int | str = 0) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes((seed.bit_length() + 8) // 8, "big", signed=True)
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._key = hashlib.sha256(b"repro.rng.v1|" + bytes(seed)).digest()
        self._counter = 0
        self._buffer = b""

    def _refill(self) -> None:
        block = self._key + struct.pack(">Q", self._counter)
        self._buffer += hashlib.sha256(block).digest()
        self._counter += 1

    def randbytes(self, n: int) -> bytes:
        """Return ``n`` uniformly random bytes."""
        if n < 0:
            raise ValueError("cannot generate a negative number of bytes")
        while len(self._buffer) < n:
            self._refill()
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def randbits(self, k: int) -> int:
        """Return a uniform integer in ``[0, 2**k)``."""
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        if k == 0:
            return 0
        nbytes = (k + 7) // 8
        value = int.from_bytes(self.randbytes(nbytes), "big")
        return value >> (nbytes * 8 - k)

    def randbit(self) -> int:
        """Return a single uniform bit."""
        return self.randbits(1)

    def randbelow(self, n: int) -> int:
        """Return a uniform integer in ``[0, n)`` by rejection sampling."""
        if n <= 0:
            raise ValueError("bound must be positive")
        k = n.bit_length()
        while True:
            value = self.randbits(k)
            if value < n:
                return value

    def randrange(self, start: int, stop: int | None = None) -> int:
        """Return a uniform integer in ``[start, stop)`` (or ``[0, start)``)."""
        if stop is None:
            start, stop = 0, start
        if stop <= start:
            raise ValueError("empty range")
        return start + self.randbelow(stop - start)

    def random(self) -> float:
        """Return a uniform float in ``[0, 1)`` with 53 bits of precision."""
        return self.randbits(53) / float(1 << 53)

    def shuffle(self, items: list) -> None:
        """Fisher-Yates shuffle of ``items`` in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randbelow(i + 1)
            items[i], items[j] = items[j], items[i]

    def sample(self, population: list, k: int) -> list:
        """Return ``k`` distinct elements drawn without replacement."""
        if k > len(population):
            raise ValueError("sample larger than population")
        pool = list(population)
        self.shuffle(pool)
        return pool[:k]

    def choice(self, population: list):
        """Return one uniformly chosen element."""
        if not population:
            raise ValueError("cannot choose from an empty sequence")
        return population[self.randbelow(len(population))]

    def fork(self, label: str | int) -> "DeterministicRNG":
        """Derive an independent sub-stream keyed by ``label``.

        The fork consumes 32 bytes of the parent stream, so repeated forks
        with the same label produce *different* generators — each protocol
        invocation gets fresh, independent randomness — while the overall
        sequence stays fully determined by the root seed.
        """
        material = self.randbytes(32) + b"|fork|" + str(label).encode("utf-8")
        return DeterministicRNG(material)
