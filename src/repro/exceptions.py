"""Exception hierarchy for the DStress reproduction.

Every error raised by this library derives from :class:`DStressError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class DStressError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(DStressError):
    """A cryptographic operation failed or was used incorrectly."""


class DecryptionError(CryptoError):
    """A ciphertext could not be decrypted (e.g. dlog table miss)."""


class ProtocolError(DStressError):
    """A protocol message violated the expected format or ordering."""


class CircuitError(DStressError):
    """A boolean circuit was malformed or evaluated incorrectly."""


class PrivacyBudgetExceeded(DStressError):
    """An operation would exceed the remaining differential privacy budget."""


class SensitivityError(DStressError):
    """A program declared an invalid or missing sensitivity bound."""


class ConfigurationError(DStressError):
    """Invalid runtime configuration (block size, degree bound, ...)."""


class ConvergenceError(DStressError):
    """An iterative solver failed to converge within its iteration bound."""


class TransportError(DStressError):
    """A message-bus delivery fault: a dropped, duplicated, or timed-out
    round message (see :mod:`repro.core.transport`)."""
