"""Exception hierarchy for the DStress reproduction.

Every error raised by this library derives from :class:`DStressError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class DStressError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(DStressError):
    """A cryptographic operation failed or was used incorrectly."""


class DecryptionError(CryptoError):
    """A ciphertext could not be decrypted (e.g. dlog table miss)."""


class ProtocolError(DStressError):
    """A protocol message violated the expected format or ordering."""


class CircuitError(DStressError):
    """A boolean circuit was malformed or evaluated incorrectly."""


class OfflinePoolExhaustedError(ProtocolError):
    """A bit-sliced GMW online phase asked for per-gate randomness the
    offline phase never provisioned (wrong circuit, wrong instance count,
    or a pool consumed twice).

    The offline/online split (see DESIGN.md "Bit-sliced GMW") sizes the
    Beaver-triple / OT-mask pools exactly from :func:`repro.mpc.cost.gmw_cost`;
    running dry therefore means a provisioning *bug*, and the engine must
    fail loudly rather than silently fall back to drawing fresh scalar
    randomness — a fallback would both desynchronize the deterministic
    transcript and hide the mis-sizing."""


class PrivacyBudgetExceeded(DStressError):
    """An operation would exceed the remaining differential privacy budget."""


class SensitivityError(DStressError):
    """A program declared an invalid or missing sensitivity bound."""


class ConfigurationError(DStressError):
    """Invalid runtime configuration (block size, degree bound, ...)."""


class ConvergenceError(DStressError):
    """An iterative solver failed to converge within its iteration bound."""


class TransportError(DStressError):
    """A message-bus delivery fault: a dropped, duplicated, or timed-out
    round message (see :mod:`repro.core.transport`).

    **The transport failure taxonomy** (this class and its subclasses) is
    the one place every socket/bus failure mode maps onto. The contract
    shared by all buses — in-memory, simulated WAN, fault-injecting, and
    the real-socket :class:`~repro.net.transport.TcpTransport` — is that a
    round which cannot complete raises one of these, naming the scenario
    (where known), the directed link, and the round index. **Never a
    hang.**

    ============================  =========================================
    failure mode                  raised class
    ============================  =========================================
    dropped / duplicated message  :class:`TransportError` (injected chaos)
    garbage or malformed header   :class:`WireFormatError`
    truncated frame buffer        :class:`WireFormatError`
    oversized frame declared      :class:`FrameTooLargeError`
    version / session mismatch    :class:`HandshakeError`
    connect refused / timed out   :class:`PeerConnectError`
    ECONNRESET / EPIPE            :class:`PeerDisconnectedError`
    EOF mid-frame (partial read)  :class:`PeerDisconnectedError`
    gather / barrier timeout      :class:`TransportTimeoutError`
    ============================  =========================================
    """


class WireFormatError(TransportError):
    """A frame on the wire violated the framed protocol: bad magic bytes,
    unsupported protocol version, unknown message kind, a payload shorter
    than its declared length (truncated buffer), or fields that do not
    parse. Decoders raise this instead of over-reading or blocking."""


class FrameTooLargeError(WireFormatError):
    """A frame header declared a payload larger than the configured
    ``max_frame_bytes`` — refused before any allocation, so a corrupt or
    hostile length prefix cannot balloon memory or stall the read loop."""


class HandshakeError(TransportError):
    """The versioned HELLO exchange failed: protocol-version mismatch,
    wrong session id (two clusters crossing wires), or a party id outside
    the announced mesh."""


class PeerConnectError(TransportError):
    """A peer could not be dialed (or never dialed us) within the connect
    timeout, after the configured retries with backoff."""


class PeerDisconnectedError(TransportError):
    """An established peer connection died: connection reset, broken
    pipe, or EOF in the middle of a frame. Gathers and conveys that
    depended on the dead peer raise this instead of hanging."""


class TransportTimeoutError(TransportError):
    """An I/O wait (round gather, handshake read, barrier) exceeded the
    configured timeout while the connection itself stayed up."""


class ServiceError(DStressError):
    """A failure in the long-running stress-test service layer
    (:mod:`repro.service`).

    **The service failure taxonomy**: every way a submitted scenario can
    be refused or a service conversation can fail maps onto one of these
    named classes (or :class:`PrivacyBudgetExceeded` for admission-control
    refusals), and every refusal travels the wire as a *typed response* —
    the server never answers a bad request with silence or a hang.

    ============================  =========================================
    failure mode                  raised class
    ============================  =========================================
    malformed / unwhitelisted AST :class:`ScenarioValidationError`
    admission over budget         :class:`PrivacyBudgetExceeded`
    bad request / response line   :class:`ServiceProtocolError`
    server unreachable / died     :class:`ServiceUnavailableError`
    engine failed server-side     :class:`ServiceError` (names the cause)
    ============================  =========================================
    """


class ScenarioValidationError(ServiceError):
    """A submitted scenario JSON document failed the strict whitelist
    validation (:mod:`repro.service.scenario_ast`): unknown keys, an
    unwhitelisted generator/engine/program/option, an out-of-bounds
    parameter, or a value of the wrong type. Raised *before* anything is
    built or charged — a rejected document never touches an engine or the
    privacy accountant."""


class ServiceProtocolError(ServiceError):
    """A service conversation violated the JSON-lines protocol: a line
    that is not valid JSON, not an object, missing/unknown ``op``, an
    oversized line, or a response the client cannot interpret."""


class ServiceUnavailableError(ServiceError):
    """The service (or the networked cache tier) could not be reached, or
    the connection died mid-conversation. Client-side only — the sync
    clients raise this instead of leaking raw ``OSError``/``EOFError``."""
