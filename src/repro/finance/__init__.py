"""Systemic-risk case study: models, metrics, sensitivities, scenarios."""

from repro.finance.eisenberg_noe import (
    ClearingResult,
    EisenbergNoeProgram,
    clearing_vector,
    total_dollar_shortfall,
)
from repro.finance.elliott_golub_jackson import (
    EGJResult,
    ElliottGolubJacksonProgram,
    egj_fixpoint,
    egj_total_shortfall,
)
from repro.finance.metrics import RiskReport, egj_risk_report, en_risk_report
from repro.finance.network import Bank, CrossHolding, DebtContract, FinancialNetwork
from repro.finance.scenarios import Shock, apply_shock, uniform_shock
from repro.finance.sensitivity import (
    BASEL_III_LEVERAGE_BOUND,
    check_leverage_bound,
    egj_sensitivity,
    eisenberg_noe_sensitivity,
)

__all__ = [
    "BASEL_III_LEVERAGE_BOUND",
    "Bank",
    "ClearingResult",
    "CrossHolding",
    "DebtContract",
    "EGJResult",
    "EisenbergNoeProgram",
    "ElliottGolubJacksonProgram",
    "FinancialNetwork",
    "RiskReport",
    "Shock",
    "apply_shock",
    "check_leverage_bound",
    "clearing_vector",
    "egj_fixpoint",
    "egj_risk_report",
    "egj_sensitivity",
    "egj_total_shortfall",
    "eisenberg_noe_sensitivity",
    "en_risk_report",
    "total_dollar_shortfall",
    "uniform_shock",
]
