"""The Eisenberg-Noe clearing model [25] (§4.2, Figure 2a).

Banks hold debt contracts against each other. Given liquid reserves ``e_i``
and obligations ``p_bar_i = sum_j debts[i][j]``, the *clearing vector*
``p*`` is the fixed point of

    p_i = min(p_bar_i,  max(0,  e_i + sum_j Pi_ji * p_j))

where ``Pi_ji`` is the fraction of ``j``'s obligations owed to ``i``.
Eisenberg and Noe prove the maximal fixed point is reached by iterating
from ``p = p_bar`` (the "fictitious default algorithm") in at most ``n``
rounds. The systemic-risk measure is the total dollar shortfall
``TDS = sum_i (p_bar_i - p*_i)``.

Two implementations live here:

* :func:`clearing_vector` / :func:`total_dollar_shortfall` — the exact
  float solver (the all-seeing-regulator oracle);
* :class:`EisenbergNoeProgram` — the DStress vertex program of Figure 2a,
  in both float and Boolean-circuit form. Its per-round messages carry the
  sender's *unpaid* amount per contract, and each bank's ``shortfall``
  register tracks ``totalDebt * (1 - prorate)`` so the aggregation step is
  a plain noised sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.graph import VertexView
from repro.core.program import VertexProgram
from repro.exceptions import ConvergenceError
from repro.finance.network import FinancialNetwork
from repro.mpc.circuit import Circuit
from repro.mpc.fixedpoint import FixedPointFormat

__all__ = ["ClearingResult", "clearing_vector", "total_dollar_shortfall", "EisenbergNoeProgram"]


@dataclass
class ClearingResult:
    """Output of the exact Eisenberg-Noe solver."""

    payments: Dict[int, float]
    obligations: Dict[int, float]
    defaulters: List[int]
    iterations: int

    @property
    def total_shortfall(self) -> float:
        return sum(
            self.obligations[b] - self.payments[b] for b in self.obligations
        )


def clearing_vector(
    network: FinancialNetwork,
    max_iterations: int | None = None,
    tolerance: float = 1e-9,
) -> ClearingResult:
    """Exact clearing vector by fictitious-default (Jacobi) iteration.

    Starts from full payment and iterates the clearing map. Eisenberg-Noe
    bound the number of *default-set changes* by ``n``, but between
    changes the linear payment iteration converges geometrically at a
    rate that cyclic networks can push arbitrarily close to 1, so the
    numeric tail down to ``tolerance`` needs real headroom beyond ``n``
    (a generated 8-bank network has hit 27 where ``2n + 10 = 26``). The
    default cap is ``20n + 100`` — each iteration is O(edges), so the
    generosity costs microseconds and spares a spurious
    :class:`~repro.exceptions.ConvergenceError`.
    """
    ids = network.bank_ids()
    obligations = {b: network.total_obligations(b) for b in ids}
    cash = {b: network.banks[b].cash for b in ids}
    incoming: Dict[int, List[Tuple[int, float]]] = {b: [] for b in ids}
    for debt in network.debts:
        incoming[debt.creditor].append((debt.debtor, debt.amount))

    if max_iterations is None:
        max_iterations = 20 * len(ids) + 100

    payments = dict(obligations)  # start from full payment
    for iteration in range(1, max_iterations + 1):
        updated = {}
        for b in ids:
            received = sum(
                amount * _pay_fraction(payments[d], obligations[d])
                for d, amount in incoming[b]
            )
            resources = cash[b] + received
            updated[b] = min(obligations[b], max(0.0, resources))
        delta = max(abs(updated[b] - payments[b]) for b in ids) if ids else 0.0
        payments = updated
        if delta <= tolerance:
            break
    else:
        raise ConvergenceError("clearing iteration did not converge")

    defaulters = [b for b in ids if payments[b] < obligations[b] - tolerance]
    return ClearingResult(
        payments=payments,
        obligations=obligations,
        defaulters=defaulters,
        iterations=iteration,
    )


def _pay_fraction(payment: float, obligation: float) -> float:
    if obligation <= 0.0:
        return 1.0
    return payment / obligation


def total_dollar_shortfall(network: FinancialNetwork) -> float:
    """TDS of the exact clearing solution (§4.1)."""
    return clearing_vector(network).total_shortfall


class EisenbergNoeProgram(VertexProgram):
    """Figure 2a as a DStress vertex program.

    State registers (for degree bound D):

    ``prorate``      fraction of obligations the bank can pay, starts at 1;
    ``cash``         liquid reserves (constant);
    ``total_debt``   sum of outgoing debts (constant);
    ``shortfall``    ``total_debt * (1 - prorate)`` — the aggregate register;
    ``debt_t``       obligation on out-slot ``t`` (constant);
    ``credit_t``     claim on in-slot ``t`` (constant).

    Messages carry the sender's *unpaid* amount per contract, so the no-op
    message 0 coincides with "pays in full" — exactly why Figure 2a can use
    0 as its no-op.
    """

    def __init__(self, fmt: FixedPointFormat | None = None, leverage_bound: float = 0.1) -> None:
        super().__init__(fmt)
        self.leverage_bound = leverage_bound

    @property
    def name(self) -> str:
        return "eisenberg-noe"

    @property
    def sensitivity(self) -> float:
        """``1/r`` per the Hemenway-Khanna argument (§4.4)."""
        return 1.0 / self.leverage_bound

    @property
    def aggregate_register(self) -> str:
        return "shortfall"

    def state_registers(self, degree_bound: int) -> List[str]:
        registers = ["prorate", "cash", "total_debt", "shortfall"]
        registers += [f"debt_{t}" for t in range(degree_bound)]
        registers += [f"credit_{t}" for t in range(degree_bound)]
        return registers

    # -- INIT (Figure 2a) --------------------------------------------------------

    def initial_state(self, vertex: VertexView, degree_bound: int) -> Dict[str, float]:
        state: Dict[str, float] = {
            "prorate": 1.0,
            "cash": vertex.data.get("cash", 0.0),
            "shortfall": 0.0,
        }
        total_debt = 0.0
        for t in range(degree_bound):
            debt = vertex.data.get(f"out_debt_{t}", 0.0)
            credit = vertex.data.get(f"in_debt_{t}", 0.0)
            state[f"debt_{t}"] = debt
            state[f"credit_{t}"] = credit
            total_debt += debt
        state["total_debt"] = total_debt
        return state

    # -- UPDATE + COMMUNICATE (float form) -------------------------------------------

    def float_update(
        self,
        state: Dict[str, float],
        messages: List[float],
        degree_bound: int,
    ) -> Tuple[Dict[str, float], List[float]]:
        liquid = state["cash"]
        for t in range(degree_bound):
            liquid += state[f"credit_{t}"] - messages[t]
        total_debt = state["total_debt"]

        prorate = state["prorate"]
        if liquid < total_debt and total_debt > 0.0:
            prorate = min(1.0, max(0.0, liquid / total_debt))

        new_state = dict(state)
        new_state["prorate"] = prorate
        new_state["shortfall"] = total_debt * (1.0 - prorate)
        out = [state[f"debt_{t}"] * (1.0 - prorate) for t in range(degree_bound)]
        return new_state, out

    # -- UPDATE + COMMUNICATE (circuit form) ---------------------------------------------

    def build_update_circuit(self, degree_bound: int) -> Circuit:
        builder = self.new_builder()
        fmt = self.fmt

        prorate = builder.fx_input("prorate")
        cash = builder.fx_input("cash")
        total_debt = builder.fx_input("total_debt")
        builder.fx_input("shortfall")  # replaced each round; input kept for shape
        debts = [builder.fx_input(f"debt_{t}") for t in range(degree_bound)]
        credits = [builder.fx_input(f"credit_{t}") for t in range(degree_bound)]
        messages = [builder.fx_input(f"msg_in_{t}") for t in range(degree_bound)]

        # liquid = cash + sum_t (credit_t - msg_t), accumulated wide enough
        # that D-term sums cannot wrap, then saturated into the format.
        import math

        wide = fmt.total_bits + max(1, math.ceil(math.log2(degree_bound + 1)) + 1)
        acc = builder.sign_extend(cash, wide)
        for t in range(degree_bound):
            term = builder.sub(
                builder.sign_extend(credits[t], wide),
                builder.sign_extend(messages[t], wide),
                width=wide,
            )
            acc = builder.add(acc, term, width=wide)
        liquid = self._saturate(builder, acc, wide)

        # prorate' = (liquid < totalDebt) ? clamp(liquid / totalDebt) : prorate
        zero = builder.fx_const(0.0)
        one = builder.fx_const(1.0)
        liquid_pos = builder.mux(builder.is_negative(liquid), zero, liquid)
        quotient = builder.fx_div(liquid_pos, total_debt)
        # clamp quotient into [0, 1] (guards fixed-point division artifacts)
        quotient = builder.mux(builder.lt_signed(one, quotient), one, quotient)
        quotient = builder.mux(builder.is_negative(quotient), zero, quotient)
        under = builder.lt_signed(liquid, total_debt)
        debt_zero = builder.is_zero(total_debt)
        candidate = builder.mux(debt_zero, prorate, quotient)
        prorate_new = builder.mux(under, candidate, prorate)

        one_minus = builder.fx_sub(one, prorate_new)
        shortfall = builder.fx_mul(total_debt, one_minus)

        builder.output_bus("prorate", prorate_new)
        builder.output_bus("cash", cash)
        builder.output_bus("total_debt", total_debt)
        builder.output_bus("shortfall", shortfall)
        for t in range(degree_bound):
            builder.output_bus(f"debt_{t}", debts[t])
            builder.output_bus(f"credit_{t}", credits[t])
            builder.output_bus(f"msg_out_{t}", builder.fx_mul(debts[t], one_minus))
        return builder.circuit

    def _saturate(self, builder, wide_bus, wide_width: int):
        """Saturate a wide accumulator into the fixed-point format."""
        fmt = self.fmt
        max_bus = builder.const_bus(fmt.max_raw, wide_width)
        min_bus = builder.const_bus(fmt.to_unsigned(fmt.min_raw) | (
            ((1 << (wide_width - fmt.total_bits)) - 1) << fmt.total_bits
        ), wide_width)
        over = builder.lt_signed(max_bus, wide_bus)
        under = builder.lt_signed(wide_bus, min_bus)
        clamped = builder.mux(over, max_bus, wide_bus)
        clamped = builder.mux(under, min_bus, clamped)
        return builder.truncate(clamped, fmt.total_bits)
