"""The Elliott-Golub-Jackson cross-holdings model [27] (§4.3, Figure 2b).

Banks own primitive assets and fractions of each other's equity. A bank's
valuation is

    value_i = base_i + sum_j insh[i][j] * value_j      (fixpoint iteration)

and when a valuation falls below a bank-specific threshold the bank is
*distressed* and its value drops by an additional penalty — the
discontinuity that makes EGJ contagion different from Eisenberg-Noe. The
fixpoint is not unique (it depends on iteration order and start; the paper
notes this is inherent to the model), but convergence is monotone from the
pre-shock valuation, so a bounded number of Jacobi rounds approximates the
reached fixpoint well.

The systemic-risk measure is the TDS relative to the failure thresholds:
``sum_i max(0, threshold_i - value_i)`` over distressed banks.

* :func:`egj_fixpoint` — the exact float solver (Jacobi iteration, same
  order as the vertex program so the two agree);
* :class:`ElliottGolubJacksonProgram` — Figure 2b in float and circuit
  form. Messages carry the sender's *discount* ``1 - value/origVal``; the
  no-op message 0 means "fully valued", which is why Figure 2b can use 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.graph import VertexView
from repro.core.program import VertexProgram
from repro.finance.network import FinancialNetwork
from repro.mpc.circuit import Circuit
from repro.mpc.fixedpoint import FixedPointFormat

__all__ = ["EGJResult", "egj_fixpoint", "egj_total_shortfall", "ElliottGolubJacksonProgram"]


@dataclass
class EGJResult:
    """Output of the exact EGJ solver."""

    values: Dict[int, float]
    distressed: List[int]
    iterations: int
    total_shortfall: float


def egj_fixpoint(network: FinancialNetwork, iterations: int) -> EGJResult:
    """Jacobi iteration of the EGJ valuation map for a fixed round count.

    Matches the vertex program's schedule exactly: every bank recomputes
    its value from the *previous* round's values, applies the penalty if
    distressed, and the loop runs ``iterations + 1`` computation rounds
    (DStress executes a final computation step after the last
    communication step, §3.6).
    """
    ids = network.bank_ids()
    banks = network.banks
    incoming: Dict[int, List[Tuple[int, float]]] = {b: [] for b in ids}
    for holding in network.holdings:
        incoming[holding.holder].append((holding.issuer, holding.fraction))

    values = {b: banks[b].orig_value for b in ids}
    for _ in range(iterations + 1):
        updated = {}
        for b in ids:
            value = banks[b].base_assets
            for issuer, fraction in incoming[b]:
                value += fraction * values[issuer]
            if value < banks[b].threshold:
                value -= banks[b].penalty
            updated[b] = value
        values = updated

    distressed = [b for b in ids if values[b] < banks[b].threshold]
    shortfall = sum(max(0.0, banks[b].threshold - values[b]) for b in ids)
    return EGJResult(
        values=values,
        distressed=distressed,
        iterations=iterations,
        total_shortfall=shortfall,
    )


def egj_total_shortfall(network: FinancialNetwork, iterations: int) -> float:
    """TDS under the EGJ model after a bounded fixpoint iteration."""
    return egj_fixpoint(network, iterations).total_shortfall


class ElliottGolubJacksonProgram(VertexProgram):
    """Figure 2b as a DStress vertex program.

    State registers (for degree bound D):

    ``value``       current valuation;
    ``base``        directly-held primitive assets (constant);
    ``orig_value``  pre-shock valuation (constant);
    ``threshold``   failure threshold (constant);
    ``penalty``     discontinuous drop on failure (constant);
    ``shortfall``   ``max(0, threshold - value)`` — the aggregate register;
    ``insh_t``      fraction of in-slot-t issuer held (constant);
    ``orig_t``      in-slot-t issuer's pre-shock value (constant).

    Messages carry the sender's discount ``1 - value/origVal``; receivers
    reconstruct the sender's contribution as
    ``insh * (1 - discount) * origVal``.
    """

    def __init__(self, fmt: FixedPointFormat | None = None, leverage_bound: float = 0.1) -> None:
        super().__init__(fmt)
        self.leverage_bound = leverage_bound

    @property
    def name(self) -> str:
        return "elliott-golub-jackson"

    @property
    def sensitivity(self) -> float:
        """``2/r`` per Hemenway-Khanna [39] (§4.4)."""
        return 2.0 / self.leverage_bound

    @property
    def aggregate_register(self) -> str:
        return "shortfall"

    def state_registers(self, degree_bound: int) -> List[str]:
        registers = ["value", "base", "orig_value", "threshold", "penalty", "shortfall"]
        registers += [f"insh_{t}" for t in range(degree_bound)]
        registers += [f"orig_{t}" for t in range(degree_bound)]
        return registers

    # -- INIT (Figure 2b) ------------------------------------------------------

    def initial_state(self, vertex: VertexView, degree_bound: int) -> Dict[str, float]:
        state: Dict[str, float] = {
            "value": vertex.data.get("orig_value", 0.0),
            "base": vertex.data.get("base", 0.0),
            "orig_value": vertex.data.get("orig_value", 0.0),
            "threshold": vertex.data.get("threshold", 0.0),
            "penalty": vertex.data.get("penalty", 0.0),
            "shortfall": 0.0,
        }
        for t in range(degree_bound):
            state[f"insh_{t}"] = vertex.data.get(f"in_insh_{t}", 0.0)
            state[f"orig_{t}"] = vertex.data.get(f"in_orig_issuer_{t}", 0.0)
        return state

    # -- UPDATE + COMMUNICATE (float form) --------------------------------------------

    def float_update(
        self,
        state: Dict[str, float],
        messages: List[float],
        degree_bound: int,
    ) -> Tuple[Dict[str, float], List[float]]:
        value = state["base"]
        for t in range(degree_bound):
            value += state[f"insh_{t}"] * (1.0 - messages[t]) * state[f"orig_{t}"]
        if value < state["threshold"]:
            value -= state["penalty"]

        new_state = dict(state)
        new_state["value"] = value
        new_state["shortfall"] = max(0.0, state["threshold"] - value)

        orig = state["orig_value"]
        discount = 1.0 - (value / orig) if orig > 0.0 else 0.0
        return new_state, [discount] * degree_bound

    # -- UPDATE + COMMUNICATE (circuit form) ----------------------------------------------

    def build_update_circuit(self, degree_bound: int) -> Circuit:
        import math

        builder = self.new_builder()
        fmt = self.fmt

        builder.fx_input("value")  # recomputed each round; input kept for shape
        base = builder.fx_input("base")
        orig_value = builder.fx_input("orig_value")
        threshold = builder.fx_input("threshold")
        penalty = builder.fx_input("penalty")
        builder.fx_input("shortfall")
        insh = [builder.fx_input(f"insh_{t}") for t in range(degree_bound)]
        orig = [builder.fx_input(f"orig_{t}") for t in range(degree_bound)]
        messages = [builder.fx_input(f"msg_in_{t}") for t in range(degree_bound)]

        one = builder.fx_const(1.0)
        zero = builder.fx_const(0.0)

        # value = base + sum_t insh_t * (1 - msg_t) * orig_t, accumulated wide.
        wide = fmt.total_bits + max(1, math.ceil(math.log2(degree_bound + 1)) + 1)
        acc = builder.sign_extend(base, wide)
        for t in range(degree_bound):
            recovered = builder.fx_mul(builder.fx_sub(one, messages[t]), orig[t])
            term = builder.fx_mul(insh[t], recovered)
            acc = builder.add(acc, builder.sign_extend(term, wide), width=wide)
        value_pre = self._saturate(builder, acc, wide)

        distressed = builder.lt_signed(value_pre, threshold)
        value_post = builder.mux(
            distressed, builder.fx_sub(value_pre, penalty), value_pre
        )
        shortfall = builder.relu(builder.fx_sub(threshold, value_post))

        # discount = orig_value > 0 ? 1 - value/orig_value : 0
        ratio = builder.fx_div(value_post, orig_value)
        discount = builder.fx_sub(one, ratio)
        discount = builder.mux(builder.is_zero(orig_value), zero, discount)

        builder.output_bus("value", value_post)
        builder.output_bus("base", base)
        builder.output_bus("orig_value", orig_value)
        builder.output_bus("threshold", threshold)
        builder.output_bus("penalty", penalty)
        builder.output_bus("shortfall", shortfall)
        for t in range(degree_bound):
            builder.output_bus(f"insh_{t}", insh[t])
            builder.output_bus(f"orig_{t}", orig[t])
            builder.output_bus(f"msg_out_{t}", discount)
        return builder.circuit

    def _saturate(self, builder, wide_bus, wide_width: int):
        fmt = self.fmt
        max_bus = builder.const_bus(fmt.max_raw, wide_width)
        min_pattern = fmt.to_unsigned(fmt.min_raw) | (
            ((1 << (wide_width - fmt.total_bits)) - 1) << fmt.total_bits
        )
        min_bus = builder.const_bus(min_pattern, wide_width)
        over = builder.lt_signed(max_bus, wide_bus)
        under = builder.lt_signed(wide_bus, min_bus)
        clamped = builder.mux(over, max_bus, wide_bus)
        clamped = builder.mux(under, min_bus, clamped)
        return builder.truncate(clamped, fmt.total_bits)
