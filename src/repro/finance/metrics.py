"""Systemic-risk metrics (§4.1).

The paper measures systemic risk as the *total dollar shortfall* (TDS):
the amount of money a lender of last resort would have to inject to
prevent failures. TDS is preferred over "number of failed banks" both for
interpretability and because it is the quantity with a bounded sensitivity
to portfolio changes [39] — counting queries over graphs are notoriously
high-sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.finance.eisenberg_noe import ClearingResult
from repro.finance.elliott_golub_jackson import EGJResult

__all__ = ["RiskReport", "en_risk_report", "egj_risk_report"]


@dataclass(frozen=True)
class RiskReport:
    """Summary of one stress-test outcome."""

    model: str
    total_dollar_shortfall: float
    num_failures: int
    failed_banks: List[int]
    per_bank_shortfall: Dict[int, float]

    @property
    def worst_bank(self) -> int | None:
        if not self.per_bank_shortfall:
            return None
        return max(self.per_bank_shortfall, key=self.per_bank_shortfall.get)


def en_risk_report(result: ClearingResult) -> RiskReport:
    """Risk metrics from an Eisenberg-Noe clearing solution."""
    shortfalls = {
        b: result.obligations[b] - result.payments[b] for b in result.obligations
    }
    return RiskReport(
        model="eisenberg-noe",
        total_dollar_shortfall=result.total_shortfall,
        num_failures=len(result.defaulters),
        failed_banks=list(result.defaulters),
        per_bank_shortfall=shortfalls,
    )


def egj_risk_report(result: EGJResult, thresholds: Dict[int, float]) -> RiskReport:
    """Risk metrics from an EGJ fixpoint."""
    shortfalls = {
        b: max(0.0, thresholds[b] - result.values[b]) for b in result.values
    }
    return RiskReport(
        model="elliott-golub-jackson",
        total_dollar_shortfall=result.total_shortfall,
        num_failures=len(result.distressed),
        failed_banks=list(result.distressed),
        per_bank_shortfall=shortfalls,
    )
