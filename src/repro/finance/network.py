"""The financial network data model (§2.1, §4).

A :class:`FinancialNetwork` holds the union of what all participants know:
banks with balance-sheet attributes, debt contracts (Eisenberg-Noe) and
equity cross-holdings (Elliott-Golub-Jackson). The conversion methods
produce the :class:`~repro.core.graph.DistributedGraph` views that the
DStress engines execute over — in a real deployment each bank would only
ever construct its own :class:`~repro.core.graph.VertexView`.

Monetary amounts are in units of the dollar-DP granularity ``T`` (the
paper's ``T = $1B``), which keeps fixed-point encodings well-scaled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.graph import DistributedGraph
from repro.exceptions import ConfigurationError

__all__ = ["Bank", "DebtContract", "CrossHolding", "FinancialNetwork"]


@dataclass
class Bank:
    """One financial institution's private balance-sheet attributes.

    Attributes
    ----------
    bank_id:
        Participant identifier.
    cash:
        Liquid reserves (Eisenberg-Noe ``cash[i]``).
    base_assets:
        Value of directly-held primitive assets (EGJ ``base[i]``).
    orig_value:
        Pre-shock valuation (EGJ ``origVal[i]``).
    threshold:
        Failure threshold (EGJ ``threshold[i]``).
    penalty:
        Discontinuous value drop on failure (EGJ ``penalty[i]``).
    """

    bank_id: int
    cash: float = 0.0
    base_assets: float = 0.0
    orig_value: float = 0.0
    threshold: float = 0.0
    penalty: float = 0.0


@dataclass(frozen=True)
class DebtContract:
    """``debtor`` owes ``creditor`` the (netted) amount ``amount``."""

    debtor: int
    creditor: int
    amount: float

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ConfigurationError("debt amounts must be non-negative")


@dataclass(frozen=True)
class CrossHolding:
    """``holder`` owns fraction ``fraction`` of ``issuer``'s equity."""

    holder: int
    issuer: int
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError("holding fractions must lie in [0, 1]")


class FinancialNetwork:
    """Banks plus their interbank contracts."""

    def __init__(self) -> None:
        self.banks: Dict[int, Bank] = {}
        self.debts: List[DebtContract] = []
        self.holdings: List[CrossHolding] = []

    # -- construction -----------------------------------------------------------

    def add_bank(self, bank: Bank) -> Bank:
        if bank.bank_id in self.banks:
            raise ConfigurationError(f"duplicate bank {bank.bank_id}")
        self.banks[bank.bank_id] = bank
        return bank

    def add_debt(self, debtor: int, creditor: int, amount: float) -> None:
        self._check_pair(debtor, creditor)
        self.debts.append(DebtContract(debtor, creditor, amount))

    def add_holding(self, holder: int, issuer: int, fraction: float) -> None:
        self._check_pair(holder, issuer)
        self.holdings.append(CrossHolding(holder, issuer, fraction))

    def _check_pair(self, a: int, b: int) -> None:
        if a not in self.banks or b not in self.banks:
            raise ConfigurationError("both endpoints must be registered banks")
        if a == b:
            raise ConfigurationError("contracts with oneself are not allowed")

    # -- aggregates ------------------------------------------------------------

    @property
    def num_banks(self) -> int:
        return len(self.banks)

    def bank_ids(self) -> List[int]:
        return sorted(self.banks)

    def total_obligations(self, bank_id: int) -> float:
        """EN ``totalDebt[i]``: everything ``bank_id`` owes."""
        return sum(d.amount for d in self.debts if d.debtor == bank_id)

    def total_credits(self, bank_id: int) -> float:
        """Everything owed *to* ``bank_id``."""
        return sum(d.amount for d in self.debts if d.creditor == bank_id)

    def holdings_of(self, holder: int) -> List[CrossHolding]:
        return [h for h in self.holdings if h.holder == holder]

    def max_debt_degree(self) -> int:
        """Largest in/out degree of the debt graph."""
        out: Dict[int, int] = {}
        inc: Dict[int, int] = {}
        for debt in self.debts:
            out[debt.debtor] = out.get(debt.debtor, 0) + 1
            inc[debt.creditor] = inc.get(debt.creditor, 0) + 1
        return max(list(out.values()) + list(inc.values()) + [0])

    def max_holding_degree(self) -> int:
        """Largest in/out degree of the cross-holding graph."""
        out: Dict[int, int] = {}
        inc: Dict[int, int] = {}
        for holding in self.holdings:
            out[holding.issuer] = out.get(holding.issuer, 0) + 1
            inc[holding.holder] = inc.get(holding.holder, 0) + 1
        return max(list(out.values()) + list(inc.values()) + [0])

    # -- session API -----------------------------------------------------------

    def stress_test(self) -> "StressTest":
        """Open a :class:`~repro.api.session.StressTest` session over this
        network: ``net.stress_test().program("en").engine("secure").run()``."""
        from repro.api.session import StressTest

        return StressTest(self)

    # -- DStress graph views ---------------------------------------------------------

    def to_en_graph(self, degree_bound: Optional[int] = None) -> DistributedGraph:
        """Debt graph for Eisenberg-Noe: edge debtor -> creditor carries the
        netted obligation; shortfall messages flow along it."""
        if degree_bound is None:
            degree_bound = max(1, self.max_debt_degree())
        graph = DistributedGraph(degree_bound)
        for bank_id in self.bank_ids():
            bank = self.banks[bank_id]
            graph.add_vertex(bank_id, cash=bank.cash)
        for debt in self.debts:
            graph.add_edge(debt.debtor, debt.creditor, debt=debt.amount)
        return graph

    def to_egj_graph(self, degree_bound: Optional[int] = None) -> DistributedGraph:
        """Cross-holding graph for EGJ: edge issuer -> holder carries the
        held fraction and the issuer's pre-shock value; discount messages
        flow along it."""
        if degree_bound is None:
            degree_bound = max(1, self.max_holding_degree())
        graph = DistributedGraph(degree_bound)
        for bank_id in self.bank_ids():
            bank = self.banks[bank_id]
            graph.add_vertex(
                bank_id,
                base=bank.base_assets,
                orig_value=bank.orig_value,
                threshold=bank.threshold,
                penalty=bank.penalty,
            )
        for holding in self.holdings:
            issuer_value = self.banks[holding.issuer].orig_value
            graph.add_edge(
                holding.issuer,
                holding.holder,
                insh=holding.fraction,
                orig_issuer=issuer_value,
            )
        return graph
