"""Shock scenarios for stress tests (§2.1, Appendix C).

A stress test fixes a hypothetical event and asks what happens to the
network if it occurs. Mechanically a shock reduces the liquid reserves
(Eisenberg-Noe) and primitive-asset values (EGJ) of the exposed banks;
contagion then propagates through the contract graph.

Appendix C exercises two canonical scenarios on a core-periphery network:
a *peripheral* shock that the core absorbs, and a *core* shock that
cascades. Both are provided here as parameterized constructors.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterable, List

from repro.exceptions import ConfigurationError
from repro.finance.network import FinancialNetwork

__all__ = ["Shock", "apply_shock", "uniform_shock"]


@dataclass(frozen=True)
class Shock:
    """An adverse event hitting a set of banks.

    ``severity`` is the fraction of the targeted banks' asset values wiped
    out (1.0 = total loss of the shocked component).
    """

    targets: tuple
    severity: float
    label: str = "shock"

    def __post_init__(self) -> None:
        if not 0.0 <= self.severity <= 1.0:
            raise ConfigurationError("shock severity must lie in [0, 1]")
        if not self.targets:
            raise ConfigurationError("a shock must target at least one bank")


def apply_shock(network: FinancialNetwork, shock: Shock) -> FinancialNetwork:
    """Return a deep-copied network with the shock applied.

    Liquid reserves and base assets of the targets are scaled by
    ``1 - severity``; contracts, thresholds and pre-shock valuations are
    untouched (the point of the stress test is to compare the shocked
    balance sheets against the pre-shock obligations).
    """
    shocked = copy.deepcopy(network)
    for bank_id in shock.targets:
        if bank_id not in shocked.banks:
            raise ConfigurationError(f"shock targets unknown bank {bank_id}")
        bank = shocked.banks[bank_id]
        bank.cash *= 1.0 - shock.severity
        bank.base_assets *= 1.0 - shock.severity
    return shocked


def uniform_shock(targets: Iterable[int], severity: float, label: str = "shock") -> Shock:
    """Convenience constructor from any iterable of bank ids."""
    return Shock(targets=tuple(targets), severity=severity, label=label)
