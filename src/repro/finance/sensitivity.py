"""Sensitivity bounds for the systemic-risk programs (§4.4).

DStress requires every program to declare a finite sensitivity bound
(§3.1). For the financial models the bounds come from Hemenway and Khanna
[39]: with a leverage floor ``r`` (a bank's equity must be at least an
``r`` fraction of its total assets — Basel III mandates such floors), a
reallocation of one unit of portfolio value changes the total dollar
shortfall by at most ``2/r`` under Elliott-Golub-Jackson and, by the
analogous argument, ``1/r`` under Eisenberg-Noe. Crucially the bounds are
*independent of the number of iterations* — iterating longer costs time,
not privacy.
"""

from __future__ import annotations

from repro.exceptions import SensitivityError

__all__ = [
    "check_leverage_bound",
    "eisenberg_noe_sensitivity",
    "egj_sensitivity",
    "BASEL_III_LEVERAGE_BOUND",
]

#: The leverage bound the paper adopts from the Basel III framework (§4.5).
BASEL_III_LEVERAGE_BOUND = 0.1


def check_leverage_bound(leverage_bound: float) -> float:
    """Validate a leverage floor ``r`` in (0, 1]."""
    if not 0.0 < leverage_bound <= 1.0:
        raise SensitivityError("leverage bound r must lie in (0, 1]")
    return leverage_bound


def eisenberg_noe_sensitivity(leverage_bound: float = BASEL_III_LEVERAGE_BOUND) -> float:
    """TDS sensitivity of the Eisenberg-Noe program: ``1/r`` (§4.4)."""
    return 1.0 / check_leverage_bound(leverage_bound)


def egj_sensitivity(leverage_bound: float = BASEL_III_LEVERAGE_BOUND) -> float:
    """TDS sensitivity of the Elliott-Golub-Jackson program: ``2/r``
    (Hemenway-Khanna [39])."""
    return 2.0 / check_leverage_bound(leverage_bound)
