"""Synthetic interbank network generators (Appendix C)."""

from repro.graphgen.core_periphery import CorePeripheryParams, core_periphery_network
from repro.graphgen.random_graphs import RandomNetworkParams, random_network
from repro.graphgen.scale_free import ScaleFreeParams, scale_free_network

__all__ = [
    "CorePeripheryParams",
    "RandomNetworkParams",
    "ScaleFreeParams",
    "core_periphery_network",
    "random_network",
    "scale_free_network",
]
