"""Core-periphery interbank network generator (Appendix C, Cocco et al. [18]).

Empirical work on interbank markets consistently finds a two-tier
structure: a small, densely connected core of money-center banks with
large balance sheets, and a large periphery of regional banks, each linked
to one or two core banks. Appendix C builds exactly such a stylized
network (50 banks, 10-bank core) to estimate the iteration bound
``I = log2 N``.

The generator produces a :class:`~repro.finance.network.FinancialNetwork`
with both debt contracts (for Eisenberg-Noe) and the mirroring equity
cross-holdings (for EGJ), with balance sheets sized so that a configurable
leverage bound holds — the paper's sensitivity results assume one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError
from repro.finance.network import Bank, FinancialNetwork

__all__ = ["CorePeripheryParams", "core_periphery_network"]


@dataclass(frozen=True)
class CorePeripheryParams:
    """Shape parameters for the two-tier network.

    Defaults follow Appendix C: 50 banks with a 10-bank core; amounts are
    in units of the dollar-DP granularity T ($1B), scaled so fixed-point
    encodings stay in range.
    """

    num_banks: int = 50
    core_size: int = 10
    #: probability of a debt contract between two distinct core banks
    core_density: float = 0.8
    #: number of core banks each peripheral bank links to (1 or 2, per [18])
    periphery_links: int = 2
    core_assets: float = 30.0
    periphery_assets: float = 3.0
    #: contract size as a fraction of the lender's assets
    exposure_fraction: float = 0.15
    #: equity floor: cash/base assets are at least this fraction of assets
    leverage_bound: float = 0.1
    #: EGJ failure threshold as a fraction of original value
    threshold_fraction: float = 0.5
    #: EGJ failure penalty as a fraction of original value
    penalty_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0 < self.core_size <= self.num_banks:
            raise ConfigurationError("core size must be within the bank count")
        if self.periphery_links < 1:
            raise ConfigurationError("peripheral banks need at least one link")
        if not 0.0 <= self.core_density <= 1.0:
            raise ConfigurationError("core density must lie in [0, 1]")


def core_periphery_network(
    params: CorePeripheryParams | None = None,
    rng: DeterministicRNG | None = None,
) -> FinancialNetwork:
    """Generate a two-tier interbank network.

    Core banks owe each other (dense, both directions possible); each
    peripheral bank borrows from ``periphery_links`` core banks and lends
    a smaller amount back, reproducing the intermediation pattern of [18].
    Cross-holdings mirror the debt topology with fractions derived from
    relative exposure sizes.
    """
    params = params if params is not None else CorePeripheryParams()
    rng = rng if rng is not None else DeterministicRNG(0)
    network = FinancialNetwork()

    core = list(range(params.core_size))
    periphery = list(range(params.core_size, params.num_banks))

    for bank_id in core:
        assets = params.core_assets * (0.8 + 0.4 * rng.random())
        network.add_bank(
            Bank(
                bank_id,
                cash=assets * params.leverage_bound * 1.5,
                base_assets=assets * 0.6,
                orig_value=assets,
                threshold=assets * params.threshold_fraction,
                penalty=assets * params.penalty_fraction,
            )
        )
    for bank_id in periphery:
        assets = params.periphery_assets * (0.7 + 0.6 * rng.random())
        network.add_bank(
            Bank(
                bank_id,
                cash=assets * params.leverage_bound * 1.5,
                base_assets=assets * 0.7,
                orig_value=assets,
                threshold=assets * params.threshold_fraction,
                penalty=assets * params.penalty_fraction,
            )
        )

    # Dense core: directed debt contracts between core pairs.
    for a in core:
        for b in core:
            if a != b and rng.random() < params.core_density:
                amount = params.core_assets * params.exposure_fraction * (0.5 + rng.random())
                network.add_debt(a, b, amount)
                network.add_holding(b, a, min(0.3, params.exposure_fraction * (0.5 + rng.random())))

    # Periphery: each regional bank borrows from 1-2 core banks and lends
    # a smaller amount back (two-way dependency, as in [18]).
    for bank_id in periphery:
        links = rng.sample(core, min(params.periphery_links, len(core)))
        for core_bank in links:
            borrow = params.periphery_assets * params.exposure_fraction * (1.0 + rng.random())
            network.add_debt(bank_id, core_bank, borrow)
            lend_back = borrow * 0.4
            network.add_debt(core_bank, bank_id, lend_back)
            network.add_holding(core_bank, bank_id, min(0.2, 0.05 + 0.1 * rng.random()))

    return network
