"""Simple random interbank networks for benchmarks and property tests.

The paper's end-to-end runs (§5.4) use "a synthetic graph with N = 100
banks and a degree limit of D = 10"; this module produces such graphs with
controllable N, target degree and degree cap, plus the uniform
balance-sheet synthesis the other generators share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError
from repro.finance.network import Bank, FinancialNetwork

__all__ = ["RandomNetworkParams", "random_network"]


@dataclass(frozen=True)
class RandomNetworkParams:
    """Shape parameters for the uniform random network."""

    num_banks: int = 100
    mean_degree: float = 4.0
    degree_cap: int = 10
    assets: float = 10.0
    exposure_fraction: float = 0.1
    leverage_bound: float = 0.1
    threshold_fraction: float = 0.5
    penalty_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.num_banks < 2:
            raise ConfigurationError("need at least two banks")
        if self.mean_degree <= 0 or self.degree_cap < 1:
            raise ConfigurationError("degree parameters must be positive")


def random_network(
    params: RandomNetworkParams | None = None,
    rng: DeterministicRNG | None = None,
) -> FinancialNetwork:
    """Erdos-Renyi-style debt network with a hard degree cap.

    Every ordered pair is linked with probability ``mean_degree / (N-1)``
    unless either endpoint is saturated; cross-holdings mirror the edges.
    """
    params = params if params is not None else RandomNetworkParams()
    rng = rng if rng is not None else DeterministicRNG(0)
    network = FinancialNetwork()

    for bank_id in range(params.num_banks):
        assets = params.assets * (0.6 + 0.8 * rng.random())
        network.add_bank(
            Bank(
                bank_id,
                cash=assets * params.leverage_bound * 1.5,
                base_assets=assets * 0.65,
                orig_value=assets,
                threshold=assets * params.threshold_fraction,
                penalty=assets * params.penalty_fraction,
            )
        )

    probability = min(1.0, params.mean_degree / max(1, params.num_banks - 1))
    out_deg = [0] * params.num_banks
    in_deg = [0] * params.num_banks
    hold_out = [0] * params.num_banks  # issuer side of the EGJ graph
    hold_in = [0] * params.num_banks  # holder side of the EGJ graph
    for a in range(params.num_banks):
        for b in range(params.num_banks):
            if a == b or rng.random() >= probability:
                continue
            if out_deg[a] >= params.degree_cap or in_deg[b] >= params.degree_cap:
                continue
            amount = params.assets * params.exposure_fraction * (0.5 + rng.random())
            network.add_debt(a, b, amount)
            out_deg[a] += 1
            in_deg[b] += 1
            # Mirror the debt edge with a cross-holding (b holds equity of
            # a), respecting the EGJ graph's own degree cap.
            if hold_out[a] < params.degree_cap and hold_in[b] < params.degree_cap:
                network.add_holding(b, a, min(0.2, 0.05 + 0.1 * rng.random()))
                hold_out[a] += 1
                hold_in[b] += 1
    return network
