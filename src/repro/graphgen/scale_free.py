"""Scale-free interbank network generator (Appendix C).

The alternative topology Appendix C discusses: banks closer to the
"center" have exponentially more linkages. We grow the debt graph by
preferential attachment (Barabási-Albert style) with a hard cap at the
degree bound ``D`` — DStress assumes a publicly known maximum degree
(§3.2), and real interbank data supports bounded degrees [18].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError
from repro.finance.network import Bank, FinancialNetwork

__all__ = ["ScaleFreeParams", "scale_free_network"]


@dataclass(frozen=True)
class ScaleFreeParams:
    """Shape parameters for the preferential-attachment network."""

    num_banks: int = 50
    attach_links: int = 2
    degree_cap: int = 20
    base_assets: float = 5.0
    exposure_fraction: float = 0.15
    leverage_bound: float = 0.1
    threshold_fraction: float = 0.5
    penalty_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.num_banks <= self.attach_links:
            raise ConfigurationError("need more banks than attachment links")
        if self.degree_cap < self.attach_links:
            raise ConfigurationError("degree cap below attachment count")


def scale_free_network(
    params: ScaleFreeParams | None = None,
    rng: DeterministicRNG | None = None,
) -> FinancialNetwork:
    """Grow a scale-free debt network by capped preferential attachment.

    Hubs accumulate assets proportionally to their degree, so the biggest
    banks are also the most connected — matching the stylized facts the
    paper cites. Cross-holdings mirror the debt edges.
    """
    params = params if params is not None else ScaleFreeParams()
    rng = rng if rng is not None else DeterministicRNG(0)
    network = FinancialNetwork()

    degrees: List[int] = [0] * params.num_banks
    edges: List[tuple] = []
    targets = list(range(params.attach_links))

    for new_bank in range(params.attach_links, params.num_banks):
        chosen = set()
        # Preferential attachment: sample from the degree-weighted pool,
        # skipping saturated banks.
        pool = [b for b in range(new_bank) for _ in range(degrees[b] + 1)]
        attempts = 0
        while len(chosen) < params.attach_links and attempts < 20 * params.attach_links:
            candidate = pool[rng.randbelow(len(pool))]
            attempts += 1
            if candidate in chosen or degrees[candidate] >= params.degree_cap:
                continue
            chosen.add(candidate)
        for hub in chosen:
            edges.append((new_bank, hub))
            degrees[new_bank] += 1
            degrees[hub] += 1

    for bank_id in range(params.num_banks):
        assets = params.base_assets * (1.0 + degrees[bank_id])
        network.add_bank(
            Bank(
                bank_id,
                cash=assets * params.leverage_bound * 1.5,
                base_assets=assets * 0.65,
                orig_value=assets,
                threshold=assets * params.threshold_fraction,
                penalty=assets * params.penalty_fraction,
            )
        )

    for debtor, creditor in edges:
        debtor_assets = params.base_assets * (1.0 + degrees[debtor])
        amount = debtor_assets * params.exposure_fraction * (0.5 + rng.random())
        network.add_debt(debtor, creditor, amount)
        network.add_debt(creditor, debtor, amount * 0.4)
        network.add_holding(creditor, debtor, min(0.25, 0.05 + 0.1 * rng.random()))

    return network
