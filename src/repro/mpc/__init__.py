"""MPC substrate: Boolean circuits, GMW protocol, in-MPC noise sampling."""

from repro.mpc.builder import CircuitBuilder
from repro.mpc.circuit import Circuit, CircuitStats, Gate, GateOp
from repro.mpc.cost import GMWCost, gmw_cost
from repro.mpc.fixedpoint import FixedPointBuilder, FixedPointFormat
from repro.mpc.gmw import GMWEngine, GMWResult, GMWTraffic
from repro.mpc.noise_circuit import (
    build_noise_sampler,
    build_noised_sum_circuit,
    cdf_thresholds,
    sample_noise_plaintext,
    two_sided_geometric_cdf,
)

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "CircuitStats",
    "FixedPointBuilder",
    "FixedPointFormat",
    "GMWCost",
    "GMWEngine",
    "GMWResult",
    "GMWTraffic",
    "Gate",
    "GateOp",
    "build_noise_sampler",
    "build_noised_sum_circuit",
    "cdf_thresholds",
    "gmw_cost",
    "sample_noise_plaintext",
    "two_sided_geometric_cdf",
]
