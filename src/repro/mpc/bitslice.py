"""Bit-sliced GMW: whole gate layers as numpy ``uint64`` lane operations.

The scalar :class:`~repro.mpc.gmw.GMWEngine` evaluates one gate of one
circuit instance per Python step. This module packs the same computation
across *instances*: lane ``l`` of every wire word is circuit instance
``l`` (``l // 64`` selects the word, ``l % 64`` the bit), so a batch of
``L`` instances occupies ``ceil(L / 64)`` words per wire per party::

    wires : uint64[num_wires, parties, words]      bit l of word w  =
    lane layout (one wire, one party):             instance 64*w + l
        word 0: | inst 63 ... inst 1 inst 0 |
        word 1: | inst 127 ... inst 65 inst 64 | (tail bits forced to 0)

A whole :class:`~repro.mpc.circuit.CircuitLayer` of XOR gates is then one
array XOR; an AND layer is a handful of broadcast ANDs/XOR-reductions.

**Offline/online split.** All per-gate randomness is drawn in an offline
phase (:class:`OfflinePoolBuilder`) *before* any gate is evaluated, in
exactly the byte order the scalar engine would draw it — the same
``rng.fork("gmw-party-p")`` calls, then bulk ``randbytes`` whose top bits
are the scalar ``randbit()`` results (``randbit`` == ``randbits(1)``
consumes one byte and keeps its top bit). Pools are sized from
:func:`repro.mpc.cost.gmw_cost` and indexed by AND-gate *ordinal* in
gate-list order, so the online phase may evaluate layers in any order
while every gate consumes the same random bits as its scalar twin. The
result: output shares — not just revealed outputs — and per-pair traffic
are bit-identical to the scalar transcript. The online phase touches no
RNG at all, so its latency is pure lane arithmetic (wire-bound once a
real transport carries the precomputed masks).

Requires numpy (an optional dependency: the core library stays pure
stdlib); constructing :class:`BitslicedGMWEngine` without it raises
:class:`~repro.exceptions.ConfigurationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.ot import ObliviousTransfer, SimulatedObliviousTransfer
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import (
    ConfigurationError,
    OfflinePoolExhaustedError,
    ProtocolError,
)
from repro.mpc.circuit import Circuit, CircuitLayer, GateOp, layerize
from repro.mpc.cost import gmw_cost
from repro.mpc.gmw import GMWEngine, GMWResult, GMWTraffic

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - container always ships numpy
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "LANE_BITS",
    "BitslicedGMWEngine",
    "OfflinePoolBuilder",
    "OfflinePools",
    "lane_words",
    "pack_bits",
    "pack_lane_axis",
    "unpack_bits",
    "unpack_lane_axis",
]

LANE_BITS = 64


def require_numpy(feature: str = "bit-sliced GMW") -> None:
    """Raise the library's named configuration error when numpy is absent."""
    if not HAVE_NUMPY:
        raise ConfigurationError(
            f"{feature} requires numpy, which is not installed; "
            'use the default backend="scalar" instead'
        )


def lane_words(count: int) -> int:
    """Words needed to hold ``count`` lanes (0 lanes -> 0 words)."""
    if count < 0:
        raise ProtocolError("lane count must be non-negative")
    return (count + LANE_BITS - 1) // LANE_BITS


def _tail_mask(count: int) -> "np.ndarray":
    """Per-word mask keeping lanes ``< count`` — the canonical-form
    invariant: bits past the last instance are always zero, so whole-array
    equality is meaningful in tests."""
    words = lane_words(count)
    mask = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    tail = count % LANE_BITS
    if words and tail:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


def pack_lane_axis(bits: "np.ndarray") -> "np.ndarray":
    """Pack the last axis (one entry per lane, values 0/1) into uint64
    words; shape ``(..., L)`` becomes ``(..., lane_words(L))``."""
    require_numpy("lane packing")
    bits = np.asarray(bits, dtype=np.uint64)
    count = bits.shape[-1]
    words = lane_words(count)
    padded = np.zeros(bits.shape[:-1] + (words * LANE_BITS,), dtype=np.uint64)
    padded[..., :count] = bits
    shaped = padded.reshape(bits.shape[:-1] + (words, LANE_BITS))
    shifts = np.arange(LANE_BITS, dtype=np.uint64)
    return np.bitwise_or.reduce(shaped << shifts, axis=-1)


def unpack_lane_axis(words: "np.ndarray", count: int) -> "np.ndarray":
    """Inverse of :func:`pack_lane_axis`: expand the last (word) axis back
    to ``count`` lanes of 0/1 ``uint8`` values (tail bits discarded)."""
    require_numpy("lane unpacking")
    words = np.asarray(words, dtype=np.uint64)
    if count > words.shape[-1] * LANE_BITS:
        raise ProtocolError(
            f"cannot unpack {count} lanes from {words.shape[-1]} words"
        )
    shifts = np.arange(LANE_BITS, dtype=np.uint64)
    bits = (words[..., :, None] >> shifts) & np.uint64(1)
    flat = bits.reshape(words.shape[:-1] + (words.shape[-1] * LANE_BITS,))
    return flat[..., :count].astype(np.uint8)


def pack_bits(bits: Sequence[int]) -> "np.ndarray":
    """Pack a flat 0/1 sequence into a 1-D lane-word vector."""
    require_numpy("lane packing")
    arr = np.asarray(list(bits), dtype=np.uint64)
    if arr.size and bool((arr > 1).any()):
        raise ProtocolError("lane values must be single bits (0 or 1)")
    return pack_lane_axis(arr)


def unpack_bits(words: "np.ndarray", count: int) -> List[int]:
    """Unpack a 1-D lane-word vector back into a list of ``count`` bits."""
    return [int(b) for b in unpack_lane_axis(words, count)]


def _bits_from_bytes(raw: bytes) -> "np.ndarray":
    """Top bit of each byte — exactly what ``DeterministicRNG.randbit``
    returns per one-byte draw, so a bulk ``randbytes(n)`` reproduces ``n``
    successive scalar ``randbit()`` calls."""
    return np.frombuffer(raw, dtype=np.uint8) >> 7


# ---------------------------------------------------------------------------
# Offline phase: per-gate randomness pools
# ---------------------------------------------------------------------------


@dataclass
class OfflinePools:
    """Lane-packed per-AND-gate randomness for a batch of instances.

    ``ot_masks[g, i, j]`` holds, for AND ordinal ``g``, the mask bit party
    ``i`` drew as OT *sender* toward receiver ``j`` (diagonal zero), one
    lane per instance. In beaver mode ``triple_a/b/c[g, p]`` hold party
    ``p``'s share of the dealer triple. Consumption is tracked per gate
    ordinal; re-use or out-of-range access raises
    :class:`OfflinePoolExhaustedError`.
    """

    mode: str
    num_parties: int
    num_instances: int
    and_gates: int
    ot_masks: Optional["np.ndarray"] = None  # (and_gates, n, n, words)
    triple_a: Optional["np.ndarray"] = None  # (and_gates, n, words)
    triple_b: Optional["np.ndarray"] = None
    triple_c: Optional["np.ndarray"] = None
    _consumed: "np.ndarray" = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._consumed is None:
            self._consumed = np.zeros(self.and_gates, dtype=bool)

    @property
    def remaining(self) -> int:
        """AND gates whose randomness has not been consumed yet."""
        return int(self.and_gates - self._consumed.sum())

    def _claim(self, ordinals: "np.ndarray") -> None:
        if ordinals.size == 0:
            return
        if int(ordinals.max(initial=0)) >= self.and_gates or int(ordinals.min()) < 0:
            raise OfflinePoolExhaustedError(
                f"offline pool provisioned {self.and_gates} AND gates but the "
                f"online phase asked for gate ordinal {int(ordinals.max())} — "
                "pool built for a different circuit"
            )
        if bool(self._consumed[ordinals].any()):
            raise OfflinePoolExhaustedError(
                "offline randomness pool exhausted: AND-gate randomness "
                "consumed twice (pools are single-use per batch)"
            )
        self._consumed[ordinals] = True

    def take_ot(self, ordinals: "np.ndarray") -> "np.ndarray":
        if self.mode != "ot" or self.ot_masks is None:
            raise OfflinePoolExhaustedError(
                f"pool holds {self.mode!r}-mode randomness, not OT masks"
            )
        self._claim(ordinals)
        return self.ot_masks[ordinals]

    def take_beaver(
        self, ordinals: "np.ndarray"
    ) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
        if self.mode != "beaver" or self.triple_a is None:
            raise OfflinePoolExhaustedError(
                f"pool holds {self.mode!r}-mode randomness, not Beaver triples"
            )
        self._claim(ordinals)
        return (
            self.triple_a[ordinals],
            self.triple_b[ordinals],
            self.triple_c[ordinals],
        )


class OfflinePoolBuilder:
    """Accumulates one batch's offline randomness, instance by instance,
    consuming the parent RNG byte-for-byte as the scalar engine would.

    Call :meth:`add_instance` once per circuit instance *in transcript
    order* (for the secure engine: vertex order), interleaved freely with
    other builders — each call consumes exactly the bytes the scalar
    ``GMWEngine.evaluate`` would for that instance, so a mixed-bound walk
    keeps the global RNG stream aligned. Then :meth:`build` packs lanes.
    """

    def __init__(self, circuit: Circuit, num_parties: int, mode: str) -> None:
        require_numpy()
        if mode not in ("ot", "beaver"):
            raise ProtocolError(f"unknown GMW mode {mode!r}")
        self.circuit = circuit
        self.num_parties = num_parties
        self.mode = mode
        # Sized from the cost model, not by walking gates: the offline
        # phase is exactly as trustworthy as gmw_cost's AND count (the
        # cross-check test in tests/test_mpc_gmw.py pins the two together).
        self.and_gates = gmw_cost(circuit, num_parties, 0, 0, mode=mode).and_gates
        self._instances: List["np.ndarray"] = []
        self._triples: List[Tuple["np.ndarray", "np.ndarray", "np.ndarray"]] = []

    @property
    def num_instances(self) -> int:
        return len(self._instances) if self.mode == "ot" else len(self._triples)

    def add_instance(self, rng: DeterministicRNG) -> None:
        n = self.num_parties
        ands = self.and_gates
        # Scalar transcript order, step 1: evaluate() forks one sub-stream
        # per party (unconditionally, in both modes).
        party_rngs = [rng.fork(f"gmw-party-{p}") for p in range(n)]
        if self.mode == "ot":
            # Step 2 (ot): per gate in list order, sender i draws one mask
            # bit toward each j != i from its own fork — per-party streams
            # are independent, so gate-major order per party is a straight
            # byte run: ands * (n - 1) bytes, top bits kept.
            cube = np.zeros((ands, n, n), dtype=np.uint8)
            columns = np.arange(n)
            for i, party_rng in enumerate(party_rngs):
                raw = party_rng.randbytes(ands * (n - 1))
                bits = _bits_from_bytes(raw).reshape(ands, n - 1)
                cube[:, i, columns[columns != i]] = bits
            self._instances.append(cube)
        else:
            # Step 2 (beaver): per gate in list order the *parent* rng
            # draws: a_plain, b_plain (1 byte each), then three
            # share_value(·, 1, n, rng) calls of n-1 one-byte draws each.
            per_gate = 2 + 3 * (n - 1)
            raw = rng.randbytes(ands * per_gate)
            bits = _bits_from_bytes(raw).reshape(ands, per_gate)
            a_plain = bits[:, 0]
            b_plain = bits[:, 1]
            c_plain = a_plain & b_plain
            shares = []
            for plain, lo in ((a_plain, 2), (b_plain, 2 + (n - 1)), (c_plain, 2 + 2 * (n - 1))):
                draws = bits[:, lo : lo + (n - 1)]
                last = plain ^ np.bitwise_xor.reduce(draws, axis=1) if n > 1 else plain
                shares.append(np.concatenate([draws, last[:, None]], axis=1))
            self._triples.append((shares[0], shares[1], shares[2]))

    def build(self) -> OfflinePools:
        count = self.num_instances
        if self.mode == "ot":
            stacked = (
                np.stack(self._instances, axis=-1)
                if count
                else np.zeros((self.and_gates, self.num_parties, self.num_parties, 0), dtype=np.uint8)
            )
            return OfflinePools(
                mode="ot",
                num_parties=self.num_parties,
                num_instances=count,
                and_gates=self.and_gates,
                ot_masks=pack_lane_axis(stacked),
            )
        packed = []
        for component in range(3):
            stacked = (
                np.stack([t[component] for t in self._triples], axis=-1)
                if count
                else np.zeros((self.and_gates, self.num_parties, 0), dtype=np.uint8)
            )
            packed.append(pack_lane_axis(stacked))
        return OfflinePools(
            mode="beaver",
            num_parties=self.num_parties,
            num_instances=count,
            and_gates=self.and_gates,
            triple_a=packed[0],
            triple_b=packed[1],
            triple_c=packed[2],
        )


# ---------------------------------------------------------------------------
# Layer schedule cache
# ---------------------------------------------------------------------------


class _LayerArrays:
    """A :class:`CircuitLayer` with its gate indices as ready-made numpy
    index vectors (fancy-indexing the wire cube gate-batch at a time)."""

    __slots__ = ("op", "a", "b", "out", "ordinals")

    def __init__(self, layer: CircuitLayer) -> None:
        self.op = layer.op
        self.a = np.asarray([g.a for g in layer.gates], dtype=np.intp)
        self.b = np.asarray([g.b for g in layer.gates], dtype=np.intp)
        self.out = np.asarray([g.out for g in layer.gates], dtype=np.intp)
        self.ordinals = np.asarray(layer.and_ordinals, dtype=np.intp)


class _Schedule:
    __slots__ = ("num_gates", "layers", "and_gates", "and_depth")

    def __init__(self, circuit: Circuit) -> None:
        stats = circuit.stats()
        self.num_gates = len(circuit.gates)
        self.layers = [_LayerArrays(layer) for layer in layerize(circuit)]
        self.and_gates = stats.and_gates
        self.and_depth = stats.and_depth


def _schedule_for(circuit: Circuit) -> _Schedule:
    cached = getattr(circuit, "_bitslice_schedule", None)
    if cached is not None and cached.num_gates == len(circuit.gates):
        return cached
    schedule = _Schedule(circuit)
    circuit._bitslice_schedule = schedule  # type: ignore[attr-defined]
    return schedule


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class BitslicedGMWEngine(GMWEngine):
    """Drop-in :class:`GMWEngine` whose gate evaluation is lane-parallel.

    ``evaluate`` matches the scalar engine bit-for-bit (output shares,
    traffic, OT stats, RNG stream consumption); ``evaluate_batch`` runs
    many instances of one circuit with amortized layer evaluation. The
    OT backend must be the rng-silent
    :class:`~repro.crypto.ot.SimulatedObliviousTransfer`: a backend that
    consumes party randomness per transfer (DDH, IKNP extension) would
    shift the scalar transcript the offline phase replays.
    """

    def __init__(
        self,
        num_parties: int,
        ot: Optional[ObliviousTransfer] = None,
        mode: str = "ot",
    ) -> None:
        require_numpy()
        super().__init__(num_parties, ot=ot, mode=mode)
        if mode == "ot" and not isinstance(self.ot, SimulatedObliviousTransfer):
            raise ProtocolError(
                "bit-sliced GMW requires the rng-silent simulated OT backend; "
                f"{type(self.ot).__name__} consumes per-transfer randomness, "
                "which the offline phase cannot replay"
            )
        self._sender_bits = 8 * self.ot.sender_bytes_per_transfer(1)
        self._receiver_bits = 8 * self.ot.receiver_bytes_per_transfer(1)

    # -- offline phase -----------------------------------------------------

    def pool_builder(self, circuit: Circuit) -> OfflinePoolBuilder:
        """A builder for this engine's mode/party count (the secure engine
        interleaves several builders to keep vertex transcript order)."""
        return OfflinePoolBuilder(circuit, self.num_parties, self.mode)

    def precompute(
        self, circuit: Circuit, num_instances: int, rng: DeterministicRNG
    ) -> OfflinePools:
        """Draw all per-gate randomness for ``num_instances`` back-to-back
        evaluations of ``circuit`` — the offline phase."""
        builder = self.pool_builder(circuit)
        for _ in range(num_instances):
            builder.add_instance(rng)
        return builder.build()

    # -- online phase ------------------------------------------------------

    def evaluate(
        self,
        circuit: Circuit,
        shared_inputs: Dict[str, Sequence[int]],
        rng: DeterministicRNG,
    ) -> GMWResult:
        return self.evaluate_batch(circuit, [shared_inputs], rng)[0]

    def evaluate_batch(
        self,
        circuit: Circuit,
        shared_inputs_list: Sequence[Dict[str, Sequence[int]]],
        rng: Optional[DeterministicRNG] = None,
        pools: Optional[OfflinePools] = None,
    ) -> List[GMWResult]:
        """Evaluate ``circuit`` once per entry of ``shared_inputs_list``.

        With ``pools`` the online phase is RNG-free; otherwise ``rng`` is
        consumed by an implicit offline phase exactly as the scalar engine
        would consume it for the same sequence of ``evaluate`` calls.
        """
        n = self.num_parties
        lanes = len(shared_inputs_list)
        for shared_inputs in shared_inputs_list:
            self._check_shared_inputs(circuit, shared_inputs)
        if pools is None:
            if rng is None:
                raise ProtocolError("evaluate_batch needs an rng or prebuilt pools")
            pools = self.precompute(circuit, lanes, rng)
        if pools.mode != self.mode or pools.num_parties != n:
            raise ProtocolError(
                f"offline pool is {pools.mode!r}/{pools.num_parties} parties, "
                f"engine is {self.mode!r}/{n}"
            )
        if pools.num_instances != lanes:
            raise OfflinePoolExhaustedError(
                f"offline pool provisioned {pools.num_instances} instances, "
                f"online batch has {lanes}"
            )
        if lanes == 0:
            return []

        schedule = _schedule_for(circuit)
        words = lane_words(lanes)
        ones = _tail_mask(lanes)  # canonical all-ones lane vector

        wires = np.zeros((circuit.num_wires, n, words), dtype=np.uint64)
        wires[circuit.one, 0, :] = ones

        for name, bus in circuit.input_buses.items():
            bits = np.zeros((len(bus), n, lanes), dtype=np.uint64)
            for lane, shared_inputs in enumerate(shared_inputs_list):
                shares = shared_inputs[name]
                for p in range(n):
                    value = int(shares[p])
                    for position in range(len(bus)):
                        bits[position, p, lane] = (value >> position) & 1
            wires[np.asarray(bus, dtype=np.intp)] = pack_lane_axis(bits)

        for layer in schedule.layers:
            if layer.op is GateOp.XOR:
                wires[layer.out] = wires[layer.a] ^ wires[layer.b]
            elif layer.op is GateOp.NOT:
                flipped = wires[layer.a]  # fancy index -> copy
                flipped[:, 0, :] ^= ones
                wires[layer.out] = flipped
            else:
                x = wires[layer.a]  # (gates, n, words)
                y = wires[layer.b]
                if self.mode == "ot":
                    masks = pools.take_ot(layer.ordinals)  # (gates, n, n, words)
                    sum_x = np.bitwise_xor.reduce(x, axis=1)  # (gates, words)
                    z = sum_x[:, None, :] & y
                    z ^= np.bitwise_xor.reduce(masks, axis=2)  # party as sender
                    z ^= np.bitwise_xor.reduce(masks, axis=1)  # party as receiver
                else:
                    a, b, c = pools.take_beaver(layer.ordinals)  # (gates, n, words)
                    d = np.bitwise_xor.reduce(x ^ a, axis=1)  # opened masks
                    e = np.bitwise_xor.reduce(y ^ b, axis=1)
                    z = c ^ (d[:, None, :] & b) ^ (e[:, None, :] & a)
                    z[:, 0, :] ^= d & e
                wires[layer.out] = z

        return self._collect_results(circuit, schedule, wires, lanes)

    def _collect_results(
        self,
        circuit: Circuit,
        schedule: _Schedule,
        wires: "np.ndarray",
        lanes: int,
    ) -> List[GMWResult]:
        n = self.num_parties
        self._record_bulk_ot_stats(schedule.and_gates * lanes)

        bus_bits: Dict[str, "np.ndarray"] = {}
        bus_widths: Dict[str, int] = {}
        for name, bus in circuit.output_buses.items():
            # (width, n, lanes) of 0/1
            bus_bits[name] = unpack_lane_axis(wires[np.asarray(bus, dtype=np.intp)], lanes)
            bus_widths[name] = len(bus)

        results = []
        for lane in range(lanes):
            output_shares: Dict[str, List[int]] = {}
            for name, bits in bus_bits.items():
                shares = [0] * n
                for position in range(bus_widths[name]):
                    row = bits[position, :, lane]
                    for p in range(n):
                        shares[p] |= int(row[p]) << position
                output_shares[name] = shares
            results.append(
                GMWResult(
                    num_parties=n,
                    bus_widths=dict(bus_widths),
                    output_shares=output_shares,
                    traffic=self._closed_form_traffic(schedule),
                )
            )
        return results

    def _record_bulk_ot_stats(self, and_instances: int) -> None:
        """Mirror the scalar engine's OT backend accounting in one update
        (ot mode: one transfer per ordered pair per AND gate instance)."""
        if self.mode != "ot":
            return
        n = self.num_parties
        transfers = and_instances * n * (n - 1)
        stats = self.ot.stats
        stats.transfers += transfers
        stats.sender_bytes += transfers * self.ot.sender_bytes_per_transfer(1)
        stats.receiver_bytes += transfers * self.ot.receiver_bytes_per_transfer(1)

    def _closed_form_traffic(self, schedule: _Schedule) -> GMWTraffic:
        """Per-instance traffic identical to the scalar loop — including
        ``pair_bits`` dict *insertion order*, which downstream metering
        (``SecureEngine._meter_gmw`` float accumulation) iterates."""
        n = self.num_parties
        traffic = GMWTraffic(num_parties=n)
        ands = schedule.and_gates
        if ands:
            if self.mode == "ot":
                # Scalar insertion order per gate: for i, for j != i:
                # (i, j) then (j, i). Gate multiplicity only scales counts.
                for i in range(n):
                    for j in range(n):
                        if i == j:
                            continue
                        traffic.add_pair(i, j, ands * self._sender_bits)
                        traffic.add_pair(j, i, ands * self._receiver_bits)
                traffic.ot_count = ands * n * (n - 1)
            else:
                for p in range(n):
                    for q in range(n):
                        if q != p:
                            traffic.add_pair(p, q, 2 * ands)
        traffic.rounds = schedule.and_depth
        return traffic
