"""Arithmetic circuit builder: adders, comparators, multipliers, dividers.

The Eisenberg-Noe and Elliott-Golub-Jackson update functions (Figure 2) need
fixed-point addition, subtraction, comparison, multiplication and division.
This module lowers those operations onto the Boolean IR in
:mod:`repro.mpc.circuit` using standard constructions:

* ripple-carry adders (2 AND gates per bit),
* two's-complement subtraction and negation,
* borrow-based unsigned/signed comparators,
* shift-and-add multipliers,
* restoring long division,
* 1-AND-per-bit multiplexers.

Buses are lists of wire ids, least-significant bit first. All operations
are data-oblivious by construction — there is no data-dependent control
flow, which is exactly the §3.7 restriction on DStress update functions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import CircuitError
from repro.mpc.circuit import Circuit

__all__ = ["CircuitBuilder"]

Bus = List[int]


class CircuitBuilder:
    """Ergonomic facade over :class:`Circuit` for multi-bit arithmetic."""

    def __init__(self, circuit: Optional[Circuit] = None) -> None:
        self.circuit = circuit if circuit is not None else Circuit()

    # -- bus plumbing -------------------------------------------------------

    def input_bus(self, name: str, width: int) -> Bus:
        """Declare a named input bus."""
        return self.circuit.add_input_bus(name, width)

    def output_bus(self, name: str, bus: Bus) -> None:
        """Expose a bus as a named circuit output."""
        self.circuit.mark_output_bus(name, bus)

    def const_bus(self, value: int, width: int) -> Bus:
        """A bus wired to a public constant (two's complement if negative)."""
        value &= (1 << width) - 1
        c = self.circuit
        return [c.one if (value >> i) & 1 else c.zero for i in range(width)]

    def zero_extend(self, bus: Bus, width: int) -> Bus:
        if width < len(bus):
            raise CircuitError("zero_extend cannot shrink a bus")
        return list(bus) + [self.circuit.zero] * (width - len(bus))

    def sign_extend(self, bus: Bus, width: int) -> Bus:
        if width < len(bus):
            raise CircuitError("sign_extend cannot shrink a bus")
        return list(bus) + [bus[-1]] * (width - len(bus))

    def truncate(self, bus: Bus, width: int) -> Bus:
        """Keep the low ``width`` bits."""
        return list(bus[:width])

    def shift_left_const(self, bus: Bus, amount: int) -> Bus:
        """Shift left by a public constant, widening the bus."""
        return [self.circuit.zero] * amount + list(bus)

    def shift_right_const(self, bus: Bus, amount: int, signed: bool = False) -> Bus:
        """Shift right by a public constant, keeping the width."""
        if amount >= len(bus):
            fill = bus[-1] if signed else self.circuit.zero
            return [fill] * len(bus)
        high = bus[-1] if signed else self.circuit.zero
        return list(bus[amount:]) + [high] * amount

    # -- bitwise ------------------------------------------------------------

    def _pairwise(self, a: Bus, b: Bus) -> Tuple[Bus, Bus]:
        width = max(len(a), len(b))
        return self.zero_extend(a, width), self.zero_extend(b, width)

    def bitwise_xor(self, a: Bus, b: Bus) -> Bus:
        a, b = self._pairwise(a, b)
        return [self.circuit.xor(x, y) for x, y in zip(a, b)]

    def bitwise_and(self, a: Bus, b: Bus) -> Bus:
        a, b = self._pairwise(a, b)
        return [self.circuit.and_(x, y) for x, y in zip(a, b)]

    def bitwise_not(self, a: Bus) -> Bus:
        return [self.circuit.inv(x) for x in a]

    # -- addition / subtraction ---------------------------------------------

    def _full_adder(self, a: int, b: int, carry: int) -> Tuple[int, int]:
        """Return (sum, carry_out); 2 AND gates."""
        c = self.circuit
        a_xor_b = c.xor(a, b)
        total = c.xor(a_xor_b, carry)
        carry_out = c.xor(c.and_(a, b), c.and_(carry, a_xor_b))
        return total, carry_out

    def add(self, a: Bus, b: Bus, width: Optional[int] = None, carry_in: Optional[int] = None) -> Bus:
        """Ripple-carry addition. ``width`` defaults to max operand width
        (the carry out is dropped, i.e. wraparound arithmetic)."""
        if width is None:
            width = max(len(a), len(b))
        a = self.zero_extend(self.truncate(a, width), width)
        b = self.zero_extend(self.truncate(b, width), width)
        carry = carry_in if carry_in is not None else self.circuit.zero
        out = []
        for x, y in zip(a, b):
            bit, carry = self._full_adder(x, y, carry)
            out.append(bit)
        return out

    def add_with_carry(self, a: Bus, b: Bus, carry_in: Optional[int] = None) -> Tuple[Bus, int]:
        """Like :meth:`add` but also returns the final carry-out wire."""
        width = max(len(a), len(b))
        a = self.zero_extend(a, width)
        b = self.zero_extend(b, width)
        carry = carry_in if carry_in is not None else self.circuit.zero
        out = []
        for x, y in zip(a, b):
            bit, carry = self._full_adder(x, y, carry)
            out.append(bit)
        return out, carry

    def negate(self, a: Bus) -> Bus:
        """Two's-complement negation: ``~a + 1``."""
        return self.add(self.bitwise_not(a), self.const_bus(1, len(a)))

    def sub(self, a: Bus, b: Bus, width: Optional[int] = None) -> Bus:
        """Two's-complement subtraction ``a - b`` (wraparound)."""
        if width is None:
            width = max(len(a), len(b))
        a = self.zero_extend(self.truncate(a, width), width)
        b = self.zero_extend(self.truncate(b, width), width)
        return self.add(a, self.bitwise_not(b), width=width, carry_in=self.circuit.one)

    def sub_with_borrow(self, a: Bus, b: Bus) -> Tuple[Bus, int]:
        """Return (a - b, borrow): borrow is 1 iff a < b (unsigned)."""
        width = max(len(a), len(b))
        a = self.zero_extend(a, width)
        b = self.zero_extend(b, width)
        diff, carry = self.add_with_carry(a, self.bitwise_not(b), carry_in=self.circuit.one)
        return diff, self.circuit.inv(carry)

    # -- comparison -----------------------------------------------------------

    def lt_unsigned(self, a: Bus, b: Bus) -> int:
        """Wire that is 1 iff ``a < b`` as unsigned integers."""
        _, borrow = self.sub_with_borrow(a, b)
        return borrow

    def lt_signed(self, a: Bus, b: Bus) -> int:
        """Wire that is 1 iff ``a < b`` as two's-complement integers."""
        width = max(len(a), len(b))
        a = self.sign_extend(a, width)
        b = self.sign_extend(b, width)
        c = self.circuit
        sign_a, sign_b = a[-1], b[-1]
        unsigned_lt = self.lt_unsigned(a, b)
        signs_differ = c.xor(sign_a, sign_b)
        # If the signs differ, a < b iff a is the negative one; otherwise
        # the unsigned comparison is already correct.
        return c.xor(
            c.and_(signs_differ, sign_a),
            c.and_(c.inv(signs_differ), unsigned_lt),
        )

    def eq(self, a: Bus, b: Bus) -> int:
        """Wire that is 1 iff ``a == b``."""
        a, b = self._pairwise(a, b)
        c = self.circuit
        bits = [c.inv(c.xor(x, y)) for x, y in zip(a, b)]
        return self.and_tree(bits)

    def and_tree(self, bits: Sequence[int]) -> int:
        """Balanced AND of many bits (log depth)."""
        c = self.circuit
        nodes = list(bits)
        if not nodes:
            return c.one
        while len(nodes) > 1:
            nxt = []
            for i in range(0, len(nodes) - 1, 2):
                nxt.append(c.and_(nodes[i], nodes[i + 1]))
            if len(nodes) % 2:
                nxt.append(nodes[-1])
            nodes = nxt
        return nodes[0]

    def or_tree(self, bits: Sequence[int]) -> int:
        """Balanced OR of many bits (log depth)."""
        c = self.circuit
        nodes = list(bits)
        if not nodes:
            return c.zero
        while len(nodes) > 1:
            nxt = []
            for i in range(0, len(nodes) - 1, 2):
                nxt.append(c.or_(nodes[i], nodes[i + 1]))
            if len(nodes) % 2:
                nxt.append(nodes[-1])
            nodes = nxt
        return nodes[0]

    def is_zero(self, a: Bus) -> int:
        return self.circuit.inv(self.or_tree(a))

    def is_negative(self, a: Bus) -> int:
        """Sign bit of a two's-complement bus."""
        return a[-1]

    # -- selection -------------------------------------------------------------

    def mux(self, select: int, when_true: Bus, when_false: Bus) -> Bus:
        """Per-bit 2:1 mux: 1 AND per bit."""
        when_true, when_false = self._pairwise(when_true, when_false)
        c = self.circuit
        return [
            c.xor(f, c.and_(select, c.xor(f, t)))
            for t, f in zip(when_true, when_false)
        ]

    def mux_bit(self, select: int, when_true: int, when_false: int) -> int:
        c = self.circuit
        return c.xor(when_false, c.and_(select, c.xor(when_false, when_true)))

    def min_unsigned(self, a: Bus, b: Bus) -> Bus:
        return self.mux(self.lt_unsigned(a, b), a, b)

    def max_unsigned(self, a: Bus, b: Bus) -> Bus:
        return self.mux(self.lt_unsigned(a, b), b, a)

    def min_signed(self, a: Bus, b: Bus) -> Bus:
        return self.mux(self.lt_signed(a, b), a, b)

    def max_signed(self, a: Bus, b: Bus) -> Bus:
        return self.mux(self.lt_signed(a, b), b, a)

    def abs_signed(self, a: Bus) -> Bus:
        """Absolute value of a two's-complement bus."""
        return self.mux(self.is_negative(a), self.negate(a), a)

    def relu(self, a: Bus) -> Bus:
        """``max(a, 0)`` for a signed bus — used for shortfall clamping."""
        return self.mux(self.is_negative(a), self.const_bus(0, len(a)), a)

    # -- multiplication ----------------------------------------------------------

    def mul_full(self, a: Bus, b: Bus) -> Bus:
        """Unsigned product of widths |a| and |b|, width |a|+|b|."""
        total_width = len(a) + len(b)
        accumulator = self.const_bus(0, total_width)
        for position, b_bit in enumerate(b):
            row = [self.circuit.and_(a_bit, b_bit) for a_bit in a]
            shifted = self.zero_extend(self.shift_left_const(row, position), total_width)
            accumulator = self.add(accumulator, shifted, width=total_width)
        return accumulator

    def mul_full_signed(self, a: Bus, b: Bus) -> Bus:
        """Signed product via sign-and-magnitude around the unsigned core."""
        width = len(a) + len(b)
        sign = self.circuit.xor(a[-1], b[-1])
        product = self.mul_full(self.abs_signed(a), self.abs_signed(b))
        return self.mux(sign, self.negate(product), self.truncate(product, width))

    def mul(self, a: Bus, b: Bus, width: Optional[int] = None) -> Bus:
        """Unsigned product truncated to ``width`` (default max operand)."""
        if width is None:
            width = max(len(a), len(b))
        return self.truncate(self.mul_full(a, b), width)

    # -- division ------------------------------------------------------------------

    def div_unsigned(self, dividend: Bus, divisor: Bus) -> Tuple[Bus, Bus]:
        """Restoring long division; returns (quotient, remainder).

        Quotient has the dividend's width, remainder the divisor's. The
        behaviour on divisor == 0 is quotient of all ones (the comparison
        never restores), which callers guard with an explicit mux when a
        zero divisor is possible — data-oblivious code cannot raise.
        """
        reg_width = len(divisor) + 1
        remainder = self.const_bus(0, reg_width)
        divisor_ext = self.zero_extend(divisor, reg_width)
        quotient_bits: List[int] = [self.circuit.zero] * len(dividend)
        for position in range(len(dividend) - 1, -1, -1):
            shifted = [dividend[position]] + remainder[:-1]
            difference, borrow = self.sub_with_borrow(shifted, divisor_ext)
            q_bit = self.circuit.inv(borrow)
            quotient_bits[position] = q_bit
            remainder = self.mux(q_bit, difference, shifted)
        return quotient_bits, self.truncate(remainder, len(divisor))

    # -- debugging helpers -------------------------------------------------------------

    def stats(self):
        """Statistics of the underlying circuit."""
        return self.circuit.stats()
