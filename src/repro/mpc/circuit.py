"""Boolean circuit intermediate representation for the GMW engine.

DStress update functions must be expressible as Boolean circuits (§3.7);
this module is the circuit IR and its plaintext evaluator. Circuits are
DAGs of XOR / AND / NOT gates over single-bit wires, with named multi-bit
*buses* for inputs and outputs (least-significant bit first).

XOR and NOT are "free" in GMW (local share operations); AND is the costly
gate (one OT per ordered party pair), so the circuit statistics that matter
for the cost model are the AND count and the AND *depth* (round count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Sequence

from repro.exceptions import CircuitError

__all__ = ["GateOp", "Gate", "Circuit", "CircuitStats", "CircuitLayer", "layerize"]


class GateOp(Enum):
    """Primitive gate types; everything else is built from these."""

    XOR = "xor"
    AND = "and"
    NOT = "not"


@dataclass(frozen=True)
class Gate:
    """One gate: ``out = op(a, b)`` (``b`` unused for NOT)."""

    op: GateOp
    a: int
    b: int
    out: int


@dataclass
class CircuitStats:
    """Size/depth statistics used by the cost model (§5.2)."""

    num_wires: int = 0
    xor_gates: int = 0
    and_gates: int = 0
    not_gates: int = 0
    and_depth: int = 0

    @property
    def total_gates(self) -> int:
        return self.xor_gates + self.and_gates + self.not_gates


@dataclass
class CircuitLayer:
    """One batch of like-typed gates whose inputs all come from earlier
    layers — the unit a bit-sliced evaluator executes as a single array op.

    ``and_ordinals[k]`` is the position of ``gates`` entry ``k`` among the
    circuit's AND gates *in gate-list order* (empty for XOR/NOT layers).
    The scalar engine draws per-gate randomness in gate-list order, so the
    ordinal is the index into an offline-precomputed randomness pool: a
    layered schedule may evaluate AND gates in any order without shifting
    which random bits each gate consumes.
    """

    level: int
    op: GateOp
    gates: List[Gate] = field(default_factory=list)
    and_ordinals: List[int] = field(default_factory=list)


def layerize(circuit: "Circuit") -> List[CircuitLayer]:
    """Group ``circuit.gates`` into a layered topological schedule.

    Every gate (including the free XOR/NOT gates — a chain ``a^b^c^d``
    must still evaluate in dependency order) is assigned level
    ``1 + max(level of inputs)``, with input/constant wires at level 0;
    gates sharing a ``(level, op)`` bucket are independent and can run as
    one batched operation. Buckets are emitted in ascending level order,
    ties broken by first appearance in the gate list, so the schedule is
    deterministic and evaluating layers in order respects every wire
    dependency.
    """
    level = [0] * circuit.num_wires
    buckets: Dict[tuple, CircuitLayer] = {}  # keyed (level, op), insertion-ordered
    and_ordinal = 0
    for gate in circuit.gates:
        gate_level = level[gate.a] + 1
        if gate.op is not GateOp.NOT:
            gate_level = max(gate_level, level[gate.b] + 1)
        level[gate.out] = gate_level
        key = (gate_level, gate.op)
        layer = buckets.get(key)
        if layer is None:
            layer = buckets[key] = CircuitLayer(level=gate_level, op=gate.op)
        layer.gates.append(gate)
        if gate.op is GateOp.AND:
            layer.and_ordinals.append(and_ordinal)
            and_ordinal += 1
    order: Dict[tuple, int] = {key: i for i, key in enumerate(buckets)}
    return sorted(buckets.values(), key=lambda la: (la.level, order[(la.level, la.op)]))


class Circuit:
    """A Boolean circuit with named input/output buses.

    Wires are dense integer ids. Wire 0 is the constant 0 and wire 1 the
    constant 1; they are always present so the builder can fold constants.
    """

    def __init__(self) -> None:
        self._num_wires = 2  # wires 0 and 1 are the constants
        self.gates: List[Gate] = []
        self.input_buses: Dict[str, List[int]] = {}
        self.output_buses: Dict[str, List[int]] = {}

    # -- construction ------------------------------------------------------

    @property
    def zero(self) -> int:
        """The constant-0 wire."""
        return 0

    @property
    def one(self) -> int:
        """The constant-1 wire."""
        return 1

    @property
    def num_wires(self) -> int:
        return self._num_wires

    def new_wire(self) -> int:
        wire = self._num_wires
        self._num_wires += 1
        return wire

    def add_input_bus(self, name: str, width: int) -> List[int]:
        """Declare a named ``width``-bit input bus; returns its wires."""
        if name in self.input_buses:
            raise CircuitError(f"duplicate input bus {name!r}")
        if width < 1:
            raise CircuitError("bus width must be positive")
        wires = [self.new_wire() for _ in range(width)]
        self.input_buses[name] = wires
        return wires

    def mark_output_bus(self, name: str, wires: Sequence[int]) -> None:
        """Expose existing wires as a named output bus."""
        if name in self.output_buses:
            raise CircuitError(f"duplicate output bus {name!r}")
        for wire in wires:
            self._check_wire(wire)
        self.output_buses[name] = list(wires)

    def _check_wire(self, wire: int) -> None:
        if not (0 <= wire < self._num_wires):
            raise CircuitError(f"wire {wire} out of range")

    def add_gate(self, op: GateOp, a: int, b: int = 0) -> int:
        """Append a gate and return its output wire."""
        self._check_wire(a)
        if op is not GateOp.NOT:
            self._check_wire(b)
        out = self.new_wire()
        self.gates.append(Gate(op=op, a=a, b=b, out=out))
        return out

    def xor(self, a: int, b: int) -> int:
        """XOR with constant folding (free gate in GMW)."""
        if a == self.zero:
            return b
        if b == self.zero:
            return a
        if a == b:
            return self.zero
        if a == self.one:
            return self.inv(b)
        if b == self.one:
            return self.inv(a)
        return self.add_gate(GateOp.XOR, a, b)

    def and_(self, a: int, b: int) -> int:
        """AND with constant folding (the costly gate in GMW)."""
        if a == self.zero or b == self.zero:
            return self.zero
        if a == self.one:
            return b
        if b == self.one:
            return a
        if a == b:
            return a
        return self.add_gate(GateOp.AND, a, b)

    def inv(self, a: int) -> int:
        """NOT with constant folding (free gate in GMW)."""
        if a == self.zero:
            return self.one
        if a == self.one:
            return self.zero
        return self.add_gate(GateOp.NOT, a)

    def or_(self, a: int, b: int) -> int:
        """OR built from one AND: ``a | b = ~(~a & ~b)``."""
        return self.inv(self.and_(self.inv(a), self.inv(b)))

    # -- analysis ----------------------------------------------------------

    def stats(self) -> CircuitStats:
        """Gate counts and multiplicative (AND) depth."""
        depth = [0] * self._num_wires
        stats = CircuitStats(num_wires=self._num_wires)
        for gate in self.gates:
            if gate.op is GateOp.AND:
                stats.and_gates += 1
                depth[gate.out] = max(depth[gate.a], depth[gate.b]) + 1
            elif gate.op is GateOp.XOR:
                stats.xor_gates += 1
                depth[gate.out] = max(depth[gate.a], depth[gate.b])
            else:
                stats.not_gates += 1
                depth[gate.out] = depth[gate.a]
        stats.and_depth = max(depth) if self._num_wires else 0
        return stats

    # -- plaintext evaluation (the oracle used in tests) --------------------

    def evaluate(self, inputs: Dict[str, int]) -> Dict[str, int]:
        """Evaluate in the clear. ``inputs`` maps bus name to integer value
        (interpreted modulo ``2**width``); returns output bus values."""
        values = [0] * self._num_wires
        values[self.one] = 1
        for name, wires in self.input_buses.items():
            if name not in inputs:
                raise CircuitError(f"missing input bus {name!r}")
            value = inputs[name] & ((1 << len(wires)) - 1)
            for position, wire in enumerate(wires):
                values[wire] = (value >> position) & 1
        for gate in self.gates:
            if gate.op is GateOp.XOR:
                values[gate.out] = values[gate.a] ^ values[gate.b]
            elif gate.op is GateOp.AND:
                values[gate.out] = values[gate.a] & values[gate.b]
            else:
                values[gate.out] = values[gate.a] ^ 1
        outputs = {}
        for name, wires in self.output_buses.items():
            value = 0
            for position, wire in enumerate(wires):
                value |= values[wire] << position
            outputs[name] = value
        return outputs
