"""Closed-form cost accounting for GMW executions.

The scalability projections of Figure 6 are computed (in the paper and
here) from microbenchmark-calibrated per-operation costs multiplied by
operation *counts*. This module provides the counts; the calibrated time
constants live in :mod:`repro.simulation.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpc.circuit import Circuit

__all__ = ["GMWCost", "gmw_cost"]


@dataclass(frozen=True)
class GMWCost:
    """Operation counts for one GMW evaluation of one circuit."""

    parties: int
    and_gates: int
    xor_gates: int
    rounds: int
    total_ots: int
    ots_per_party: int
    #: bits each party puts on the wire (OT masks, or d/e openings in
    #: ``beaver`` mode)
    sent_bits_per_party: int
    #: trusted-dealer triples consumed (0 in ``ot`` mode) — what the
    #: bit-sliced offline phase provisions per circuit instance
    beaver_triples: int = 0

    @property
    def sent_bytes_per_party(self) -> float:
        return self.sent_bits_per_party / 8.0

    @property
    def total_bytes(self) -> float:
        return self.parties * self.sent_bytes_per_party


def gmw_cost(
    circuit: Circuit,
    parties: int,
    ot_sender_bytes: int,
    ot_receiver_bytes: int,
    mode: str = "ot",
) -> GMWCost:
    """Predict the cost of evaluating ``circuit`` with ``parties`` parties.

    In ``"ot"`` mode every AND gate runs one OT per ordered party pair, so
    each party acts ``(parties - 1)`` times as sender and ``(parties - 1)``
    times as receiver per AND gate: per-party traffic is linear in the
    block size while the total is quadratic — the two sides of Figures 3
    and 4. In ``"beaver"`` mode an AND gate instead consumes one dealer
    triple and each party broadcasts its two mask bits (``d``/``e``) to
    the other ``parties - 1``.

    These counts are cross-checked gate-for-gate against the
    :class:`~repro.mpc.gmw.GMWEngine` transcript in
    ``tests/test_mpc_gmw.py`` — the bit-sliced offline phase sizes its
    randomness pools from them, so drift would surface as a hard
    :class:`~repro.exceptions.OfflinePoolExhaustedError`.
    """
    if mode not in ("ot", "beaver"):
        raise ValueError(f"unknown GMW mode {mode!r}")
    stats = circuit.stats()
    pairs = parties * (parties - 1)
    if mode == "ot":
        per_party_bits = stats.and_gates * (parties - 1) * 8 * (ot_sender_bytes + ot_receiver_bytes)
        total_ots = stats.and_gates * pairs
        ots_per_party = stats.and_gates * 2 * (parties - 1)
        triples = 0
    else:
        per_party_bits = stats.and_gates * 2 * (parties - 1)
        total_ots = 0
        ots_per_party = 0
        triples = stats.and_gates
    return GMWCost(
        parties=parties,
        and_gates=stats.and_gates,
        xor_gates=stats.xor_gates,
        rounds=stats.and_depth,
        total_ots=total_ots,
        ots_per_party=ots_per_party,
        sent_bits_per_party=per_party_bits,
        beaver_triples=triples,
    )
