"""Fixed-point arithmetic: the numeric representation inside MPC.

The paper's prototype used 12-bit shares (§5.1); model values (cash, debts,
valuations) are real numbers, so the vertex programs encode them in L-bit
two's-complement fixed point with F fractional bits. This module defines the
encoding, a plaintext mirror of every circuit operation (used as the
bit-exact oracle in tests), and the fixed-point extensions to
:class:`~repro.mpc.builder.CircuitBuilder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import CircuitError
from repro.mpc.builder import Bus, CircuitBuilder

__all__ = ["FixedPointFormat", "FixedPointBuilder"]


@dataclass(frozen=True)
class FixedPointFormat:
    """An L-bit two's-complement fixed-point format with F fraction bits.

    A real value ``v`` is stored as ``round(v * 2**fraction_bits)``, clamped
    to the representable range. ``total_bits`` includes the sign bit.
    """

    total_bits: int = 16
    fraction_bits: int = 8

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise CircuitError("need at least 2 bits (sign + magnitude)")
        if not (0 <= self.fraction_bits < self.total_bits):
            raise CircuitError("fraction bits must fit inside the word")

    @property
    def scale(self) -> int:
        """Integer scale factor ``2**fraction_bits``."""
        return 1 << self.fraction_bits

    @property
    def max_raw(self) -> int:
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_raw(self) -> int:
        return -(1 << (self.total_bits - 1))

    @property
    def max_value(self) -> float:
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        return self.min_raw / self.scale

    @property
    def resolution(self) -> float:
        """Smallest representable increment (one LSB) in real units."""
        return 1.0 / self.scale

    # -- encoding -----------------------------------------------------------

    def encode(self, value: float) -> int:
        """Real value -> raw signed integer (clamped to the range)."""
        raw = round(value * self.scale)
        return max(self.min_raw, min(self.max_raw, raw))

    def decode(self, raw: int) -> float:
        """Raw signed integer -> real value."""
        return raw / self.scale

    def to_unsigned(self, raw: int) -> int:
        """Signed raw -> two's-complement bit pattern in [0, 2**L)."""
        return raw & ((1 << self.total_bits) - 1)

    def from_unsigned(self, pattern: int) -> int:
        """Two's-complement bit pattern -> signed raw."""
        pattern &= (1 << self.total_bits) - 1
        if pattern >> (self.total_bits - 1):
            pattern -= 1 << self.total_bits
        return pattern

    def wrap(self, raw: int) -> int:
        """Reduce an out-of-range raw value modulo 2**L (hardware wraparound)."""
        return self.from_unsigned(self.to_unsigned(raw))

    def saturate(self, raw: int) -> int:
        """Clamp a raw value into the representable range."""
        return max(self.min_raw, min(self.max_raw, raw))

    # -- plaintext mirrors of the circuit operations -------------------------

    def fx_mul(self, a: int, b: int) -> int:
        """Bit-exact mirror of the circuit's fixed-point multiply."""
        product = a * b
        return self.wrap(product >> self.fraction_bits)

    def fx_div(self, a: int, b: int) -> int:
        """Bit-exact mirror of the circuit's fixed-point divide.

        Matches restoring division on ``|a| << F`` by ``|b|`` followed by
        sign fixup; division by zero yields the all-ones quotient pattern,
        like the circuit.
        """
        if b == 0:
            # The restoring divider never restores against a zero divisor,
            # so the quotient pattern is all ones; the sign mux still fires
            # on the dividend's sign (b's sign bit is 0).
            all_ones = (1 << self.total_bits) - 1
            return self.wrap(-all_ones if a < 0 else all_ones)
        sign = (a < 0) != (b < 0)
        quotient = (abs(a) << self.fraction_bits) // abs(b)
        return self.wrap(-quotient if sign else quotient)


class FixedPointBuilder(CircuitBuilder):
    """Circuit builder with fixed-point multiply/divide in a fixed format."""

    def __init__(self, fmt: FixedPointFormat, circuit=None) -> None:
        super().__init__(circuit)
        self.fmt = fmt

    def fx_input(self, name: str) -> Bus:
        """Input bus in the fixed-point format."""
        return self.input_bus(name, self.fmt.total_bits)

    def fx_const(self, value: float) -> Bus:
        """Constant bus holding an encoded real value."""
        return self.const_bus(self.fmt.to_unsigned(self.fmt.encode(value)), self.fmt.total_bits)

    def fx_mul(self, a: Bus, b: Bus) -> Bus:
        """Signed fixed-point multiply: full product, then drop F bits."""
        if len(a) != self.fmt.total_bits or len(b) != self.fmt.total_bits:
            raise CircuitError("fx_mul operands must be in the fixed format")
        product = self.mul_full_signed(a, b)
        shifted = self.shift_right_const(product, self.fmt.fraction_bits, signed=True)
        return self.truncate(shifted, self.fmt.total_bits)

    def fx_div(self, a: Bus, b: Bus) -> Bus:
        """Signed fixed-point divide: ``(|a| << F) / |b|`` with sign fixup."""
        if len(a) != self.fmt.total_bits or len(b) != self.fmt.total_bits:
            raise CircuitError("fx_div operands must be in the fixed format")
        sign = self.circuit.xor(a[-1], b[-1])
        dividend = self.shift_left_const(self.abs_signed(a), self.fmt.fraction_bits)
        divisor = self.abs_signed(b)
        quotient, _ = self.div_unsigned(dividend, divisor)
        quotient = self.truncate(quotient, self.fmt.total_bits)
        return self.mux(sign, self.negate(quotient), quotient)

    def fx_add(self, a: Bus, b: Bus) -> Bus:
        return self.add(a, b, width=self.fmt.total_bits)

    def fx_sub(self, a: Bus, b: Bus) -> Bus:
        return self.sub(a, b, width=self.fmt.total_bits)


def _self_test() -> None:  # pragma: no cover - quick manual check
    fmt = FixedPointFormat(16, 8)
    assert fmt.decode(fmt.encode(1.5)) == 1.5
    assert fmt.fx_mul(fmt.encode(1.5), fmt.encode(2.0)) == fmt.encode(3.0)


if __name__ == "__main__":  # pragma: no cover
    _self_test()
