"""The GMW protocol: n-party evaluation of Boolean circuits on XOR shares.

This is the MPC engine DStress invokes for every computation step (§3.3,
§3.6). Wire values are XOR-shared among the parties of a block:

* XOR and NOT gates are local (XOR of shares / flip by party 0);
* each AND gate needs one 1-out-of-2 OT per *ordered* pair of parties to
  compute the cross terms of ``(XOR_i x_i)(XOR_j y_j)`` — this is where the
  quadratic total cost and linear per-party cost of Figures 3–5 come from;
* alternatively, AND gates can burn a Beaver triple from a trusted dealer
  (the ``beaver`` mode, used for the backend ablation).

Inputs arrive already shared and outputs stay shared: DStress never opens
intermediate values (§3.3). The engine tracks per-party traffic in bits and
interaction rounds (= AND depth), which feed the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.ot import ObliviousTransfer, SimulatedObliviousTransfer
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CircuitError, ProtocolError
from repro.mpc.circuit import Circuit, GateOp
from repro.sharing.xor import reconstruct_value, share_value

__all__ = ["GMWEngine", "GMWResult", "GMWTraffic"]


@dataclass
class GMWTraffic:
    """Per-party and aggregate traffic/interaction statistics for one run.

    Beyond the historical per-party totals, every bit on the wire is also
    attributed to its ordered *pair* ``(sender party, receiver party)`` —
    the granularity a block's OT-extension batch actually travels at. The
    pair view is what the secure-async scheduler dispatches over the
    transport bus, and what the :class:`~repro.simulation.netsim.TrafficMeter`
    records as per-link bytes; by construction
    ``sum_j pair_bits[(i, j)] == sent_bits[i]`` for every party ``i``.
    """

    num_parties: int
    sent_bits: List[int] = field(default_factory=list)
    received_bits: List[int] = field(default_factory=list)
    ot_count: int = 0
    rounds: int = 0
    #: Wire bits per ordered party pair: ``pair_bits[(i, j)]`` is what
    #: party ``i`` put on the wire addressed to party ``j``.
    pair_bits: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.sent_bits:
            self.sent_bits = [0] * self.num_parties
        if not self.received_bits:
            self.received_bits = [0] * self.num_parties

    def add_pair(self, sender: int, receiver: int, bits: int) -> None:
        """Account ``bits`` travelling from ``sender`` to ``receiver``
        (updates the pair map and both per-party totals consistently)."""
        self.sent_bits[sender] += bits
        self.received_bits[receiver] += bits
        key = (sender, receiver)
        self.pair_bits[key] = self.pair_bits.get(key, 0) + bits

    def pair_bytes(self) -> Dict[Tuple[int, int], float]:
        """Bytes per ordered party pair — the block's OT batch, link by link."""
        return {pair: bits / 8.0 for pair, bits in self.pair_bits.items()}

    @property
    def total_bytes(self) -> float:
        return sum(self.sent_bits) / 8.0

    @property
    def per_party_bytes(self) -> List[float]:
        return [bits / 8.0 for bits in self.sent_bits]

    @property
    def max_party_bytes(self) -> float:
        return max(self.per_party_bytes)


@dataclass
class GMWResult:
    """Shares of the output buses after a GMW evaluation.

    ``output_shares[name][p]`` is party ``p``'s share of output bus
    ``name``, as an integer with one bit per bus wire.
    """

    num_parties: int
    bus_widths: Dict[str, int]
    output_shares: Dict[str, List[int]]
    traffic: GMWTraffic

    def reveal(self, name: str, signed: bool = False) -> int:
        """Recombine the shares of one output bus (breaks secrecy; used by
        tests and by the final aggregation reveal)."""
        return reconstruct_value(self.output_shares[name], self.bus_widths[name], signed=signed)


class GMWEngine:
    """Evaluates circuits under the GMW protocol.

    Parameters
    ----------
    num_parties:
        Block size ``k + 1``.
    ot:
        OT backend for AND gates (ignored in ``beaver`` mode). Defaults to
        the fast simulated backend with real-protocol byte accounting.
    mode:
        ``"ot"`` for OT-based AND gates (the GMW of the paper), ``"beaver"``
        for trusted-dealer Beaver triples (ablation baseline).
    """

    def __init__(
        self,
        num_parties: int,
        ot: Optional[ObliviousTransfer] = None,
        mode: str = "ot",
    ) -> None:
        if num_parties < 2:
            raise ProtocolError("GMW needs at least two parties")
        if mode not in ("ot", "beaver"):
            raise ProtocolError(f"unknown GMW mode {mode!r}")
        self.num_parties = num_parties
        self.ot = ot if ot is not None else SimulatedObliviousTransfer()
        self.mode = mode

    # -- share plumbing ------------------------------------------------------

    def share_input(self, value: int, width: int, rng: DeterministicRNG) -> List[int]:
        """Split a plaintext bus value into one share per party (used by the
        initialization step, §3.6)."""
        return share_value(value, width, self.num_parties, rng)

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        circuit: Circuit,
        shared_inputs: Dict[str, Sequence[int]],
        rng: DeterministicRNG,
    ) -> GMWResult:
        """Run the protocol on pre-shared inputs.

        ``shared_inputs[name]`` holds one integer share per party for the
        named input bus; XOR of the shares is the plaintext value.
        """
        n = self.num_parties
        self._check_shared_inputs(circuit, shared_inputs)

        traffic = GMWTraffic(num_parties=n)
        party_rngs = [rng.fork(f"gmw-party-{p}") for p in range(n)]

        # wire_shares[w] is the list of n share bits of wire w.
        wire_shares: List[List[int]] = [[0] * n for _ in range(circuit.num_wires)]
        # Constant one: party 0 holds 1 (a public constant needs no hiding).
        wire_shares[circuit.one][0] = 1

        for name, wires in circuit.input_buses.items():
            shares = shared_inputs[name]
            for position, wire in enumerate(wires):
                for p in range(n):
                    wire_shares[wire][p] = (shares[p] >> position) & 1

        sender_bits = 8 * self.ot.sender_bytes_per_transfer(1)
        receiver_bits = 8 * self.ot.receiver_bytes_per_transfer(1)

        # Round counting: AND gates whose inputs are ready can share one
        # round of interaction, so rounds == multiplicative depth.
        and_depth = [0] * circuit.num_wires

        for gate in circuit.gates:
            out = gate.out
            a_shares = wire_shares[gate.a]
            if gate.op is GateOp.XOR:
                b_shares = wire_shares[gate.b]
                wire_shares[out] = [x ^ y for x, y in zip(a_shares, b_shares)]
                and_depth[out] = max(and_depth[gate.a], and_depth[gate.b])
            elif gate.op is GateOp.NOT:
                flipped = list(a_shares)
                flipped[0] ^= 1
                wire_shares[out] = flipped
                and_depth[out] = and_depth[gate.a]
            else:  # AND
                b_shares = wire_shares[gate.b]
                if self.mode == "ot":
                    z = self._and_via_ot(a_shares, b_shares, party_rngs, traffic,
                                         sender_bits, receiver_bits)
                else:
                    z = self._and_via_beaver(a_shares, b_shares, rng, traffic)
                wire_shares[out] = z
                and_depth[out] = max(and_depth[gate.a], and_depth[gate.b]) + 1

        traffic.rounds = max(and_depth) if and_depth else 0

        output_shares: Dict[str, List[int]] = {}
        bus_widths: Dict[str, int] = {}
        for name, wires in circuit.output_buses.items():
            shares = [0] * n
            for position, wire in enumerate(wires):
                for p in range(n):
                    shares[p] |= wire_shares[wire][p] << position
            output_shares[name] = shares
            bus_widths[name] = len(wires)

        return GMWResult(
            num_parties=n,
            bus_widths=bus_widths,
            output_shares=output_shares,
            traffic=traffic,
        )

    def _check_shared_inputs(
        self, circuit: Circuit, shared_inputs: Dict[str, Sequence[int]]
    ) -> None:
        """Validate one instance's share map (shared with the bit-sliced
        engine so both backends reject malformed inputs identically)."""
        n = self.num_parties
        for name in circuit.input_buses:
            if name not in shared_inputs:
                raise CircuitError(f"missing shares for input bus {name!r}")
            if len(shared_inputs[name]) != n:
                raise ProtocolError(
                    f"input bus {name!r} has {len(shared_inputs[name])} shares, expected {n}"
                )

    def _and_via_ot(
        self,
        x: List[int],
        y: List[int],
        party_rngs: List[DeterministicRNG],
        traffic: GMWTraffic,
        sender_bits: int,
        receiver_bits: int,
    ) -> List[int]:
        """GMW AND: local terms plus one OT per ordered party pair.

        ``z = XOR_i x_i y_i  XOR  XOR_{i != j} x_i y_j``; the cross term
        ``x_i y_j`` is shared between sender ``i`` (holding ``x_i``) and
        receiver ``j`` (holding ``y_j``): the sender masks with a random bit
        ``r`` and offers ``(r, r XOR x_i)``.
        """
        n = self.num_parties
        z = [x[p] & y[p] for p in range(n)]
        for i in range(n):
            x_i = x[i]
            rng_i = party_rngs[i]
            for j in range(n):
                if i == j:
                    continue
                r = rng_i.randbit()
                received = self.ot.transfer_bit(r, r ^ x_i, y[j], rng_i)
                z[i] ^= r
                z[j] ^= received
                traffic.ot_count += 1
                traffic.add_pair(i, j, sender_bits)
                traffic.add_pair(j, i, receiver_bits)
        return z

    def _and_via_beaver(
        self,
        x: List[int],
        y: List[int],
        rng: DeterministicRNG,
        traffic: GMWTraffic,
    ) -> List[int]:
        """AND via a trusted-dealer Beaver triple (ablation backend).

        The dealer shares a random triple ``c = a AND b``; the parties open
        ``d = x XOR a`` and ``e = y XOR b`` (two bits broadcast per party)
        and set ``z_p = c_p XOR d.b_p XOR e.a_p`` (+ ``d.e`` at party 0).
        """
        n = self.num_parties
        a_plain = rng.randbit()
        b_plain = rng.randbit()
        a = share_value(a_plain, 1, n, rng)
        b = share_value(b_plain, 1, n, rng)
        c = share_value(a_plain & b_plain, 1, n, rng)
        d = 0
        e = 0
        for p in range(n):
            d ^= x[p] ^ a[p]
            e ^= y[p] ^ b[p]
            # Each party broadcasts its two mask bits to the other n-1.
            for q in range(n):
                if q != p:
                    traffic.add_pair(p, q, 2)
        z = [c[p] ^ (d & b[p]) ^ (e & a[p]) for p in range(n)]
        z[0] ^= d & e
        return z
