"""In-MPC noise sampling (Dwork et al. [23] style).

The aggregation block must add Laplace noise to the final output *inside*
MPC (§3.6): the members combine random shares into a seed, expand the seed
into uniform bits, and run those bits through a circuit that outputs one
sample of the discretized Laplace (two-sided geometric) distribution. No
single member ever sees the noise value, so nobody can subtract it.

The circuit is an inverse-CDF sampler: the uniform bits form a B-bit number
``u`` that is compared against the 2M precomputed CDF thresholds of the
target distribution over the window ``[-M, M]``; the sample is
``-M + #{thresholds <= u}``. Comparators against constants are cheap, which
still leaves this the largest MPC circuit in the system — matching the
paper's observation that the noising step is the most expensive
microbenchmark (Figure 3).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.exceptions import CircuitError
from repro.mpc.builder import Bus, CircuitBuilder
from repro.mpc.circuit import Circuit

__all__ = [
    "two_sided_geometric_cdf",
    "cdf_thresholds",
    "build_noise_sampler",
    "build_noised_sum_circuit",
    "sample_noise_plaintext",
    "geometric_bit_probabilities",
    "build_geometric_bits_sampler",
    "sample_geometric_bits_plaintext",
    "geometric_bits_seed_width",
]


def two_sided_geometric_cdf(alpha: float, d: int) -> float:
    """CDF of the two-sided geometric distribution with parameter ``alpha``.

    ``P(Y = d) = (1 - alpha)/(1 + alpha) * alpha^|d|`` (Ghosh et al. [33]);
    this is the discretized Laplace used throughout the paper.
    """
    if not 0.0 < alpha < 1.0:
        raise CircuitError("alpha must lie in (0, 1)")
    if d < 0:
        return alpha ** (-d) / (1.0 + alpha)
    return 1.0 - alpha ** (d + 1) / (1.0 + alpha)


def cdf_thresholds(alpha: float, bound: int, uniform_bits: int) -> List[int]:
    """Integer CDF thresholds over the window ``[-bound, bound]``.

    Threshold ``i`` (for ``i = 0 .. 2*bound - 1``) is
    ``round(P(Y <= -bound + i) * 2**uniform_bits)``; the sampled value is
    ``-bound + #{i : u >= T_i}``. Tail mass outside the window collapses
    onto the window edges (a truncated sampler, as any finite circuit
    must be).
    """
    if bound < 1:
        raise CircuitError("noise bound must be at least 1")
    grid = 1 << uniform_bits
    thresholds = []
    for i in range(2 * bound):
        cumulative = two_sided_geometric_cdf(alpha, -bound + i)
        thresholds.append(min(grid - 1, max(1, round(cumulative * grid))))
    return thresholds


def build_noise_sampler(
    builder: CircuitBuilder,
    uniform: Bus,
    alpha: float,
    bound: int,
    output_width: int,
) -> Bus:
    """Append an inverse-CDF noise sampler to ``builder``.

    ``uniform`` is a bus of shared uniform random bits; the returned bus
    holds a two's-complement sample of the two-sided geometric distribution
    truncated to ``[-bound, bound]``.
    """
    thresholds = cdf_thresholds(alpha, bound, len(uniform))
    indicator_bits = []
    for threshold in thresholds:
        below = builder.lt_unsigned(uniform, builder.const_bus(threshold, len(uniform)))
        indicator_bits.append(builder.circuit.inv(below))
    count = popcount(builder, indicator_bits)
    count = builder.zero_extend(count, output_width)
    return builder.sub(count, builder.const_bus(bound, output_width), width=output_width)


def popcount(builder: CircuitBuilder, bits: List[int]) -> Bus:
    """Balanced adder tree summing single-bit wires into a count bus."""
    if not bits:
        return [builder.circuit.zero]
    buses: List[Bus] = [[bit] for bit in bits]
    while len(buses) > 1:
        merged = []
        for i in range(0, len(buses) - 1, 2):
            width = max(len(buses[i]), len(buses[i + 1])) + 1
            merged.append(builder.add(buses[i], buses[i + 1], width=width))
        if len(buses) % 2:
            merged.append(buses[-1])
        buses = merged
    return buses[0]


def geometric_bit_probabilities(alpha: float, magnitude_bits: int) -> List[float]:
    """Bernoulli parameters of a geometric's binary digits.

    For ``G`` geometric on {0, 1, ...} with ``P(G = g) ~ alpha^g``, the
    binary digits of ``G`` are *independent*, with
    ``P(bit_i = 1) = alpha^(2^i) / (1 + alpha^(2^i))`` — the observation
    Dwork et al. [23] exploit to sample noise inside MPC with a handful of
    biased coin flips instead of a giant inverse-CDF table. Truncating to
    ``magnitude_bits`` digits samples exactly ``G | G < 2^magnitude_bits``.
    """
    if not 0.0 < alpha < 1.0:
        raise CircuitError("alpha must lie in (0, 1)")
    probabilities = []
    for i in range(magnitude_bits):
        a_pow = alpha ** (1 << i)
        probabilities.append(a_pow / (1.0 + a_pow))
    return probabilities


def geometric_bits_seed_width(magnitude_bits: int, precision_bits: int) -> int:
    """Uniform bits consumed by one two-sided geometric sample."""
    return 2 * magnitude_bits * precision_bits


def build_geometric_bits_sampler(
    builder: CircuitBuilder,
    uniform: Bus,
    alpha: float,
    magnitude_bits: int,
    precision_bits: int,
    output_width: int,
) -> Bus:
    """Append a Dwork-style two-sided geometric sampler to ``builder``.

    The sample is ``G1 - G2`` for two independent (truncated) geometrics;
    each geometric is assembled from ``magnitude_bits`` independent biased
    coins, and each coin is one comparator of ``precision_bits`` uniform
    bits against a public threshold. Cost is
    ``2 * magnitude_bits`` comparators — orders of magnitude smaller than
    the inverse-CDF sampler at realistic noise scales.
    """
    needed = geometric_bits_seed_width(magnitude_bits, precision_bits)
    if len(uniform) != needed:
        raise CircuitError(f"sampler needs exactly {needed} uniform bits, got {len(uniform)}")
    if output_width <= magnitude_bits:
        raise CircuitError("output width must exceed the magnitude width")
    probabilities = geometric_bit_probabilities(alpha, magnitude_bits)
    grid = 1 << precision_bits

    def one_geometric(offset: int) -> Bus:
        bits = []
        for i, probability in enumerate(probabilities):
            start = offset + i * precision_bits
            chunk = uniform[start : start + precision_bits]
            threshold = min(grid - 1, max(0, round(probability * grid)))
            bits.append(builder.lt_unsigned(chunk, builder.const_bus(threshold, precision_bits)))
        return bits  # LSB-first magnitude: plain wiring, no gates

    g1 = builder.zero_extend(one_geometric(0), output_width)
    g2 = builder.zero_extend(one_geometric(magnitude_bits * precision_bits), output_width)
    return builder.sub(g1, g2, width=output_width)


def sample_geometric_bits_plaintext(
    alpha: float, magnitude_bits: int, precision_bits: int, seed: int
) -> int:
    """Bit-exact plaintext mirror of :func:`build_geometric_bits_sampler`.

    ``seed`` packs the uniform bus LSB-first, exactly as the circuit input.
    """
    probabilities = geometric_bit_probabilities(alpha, magnitude_bits)
    grid = 1 << precision_bits
    mask = grid - 1

    def one_geometric(offset: int) -> int:
        value = 0
        for i, probability in enumerate(probabilities):
            chunk = (seed >> (offset + i * precision_bits)) & mask
            threshold = min(grid - 1, max(0, round(probability * grid)))
            if chunk < threshold:
                value |= 1 << i
        return value

    return one_geometric(0) - one_geometric(magnitude_bits * precision_bits)


def build_noised_sum_circuit(
    num_inputs: int,
    value_bits: int,
    alpha: float,
    bound: int,
    uniform_bits: int = 32,
) -> Circuit:
    """The aggregation+noising circuit of §3.6.

    Inputs: ``state_0 .. state_{num_inputs-1}`` (signed, ``value_bits``
    wide) and ``seed`` (``uniform_bits`` of shared randomness). Output
    ``noised_sum = sum_i state_i + Y`` where ``Y`` is two-sided geometric.
    The sum is carried at full width to avoid overflow.
    """
    builder = CircuitBuilder()
    extra = max(1, (num_inputs).bit_length())
    total_width = value_bits + extra
    acc = builder.const_bus(0, total_width)
    for index in range(num_inputs):
        bus = builder.input_bus(f"state_{index}", value_bits)
        acc = builder.add(acc, builder.sign_extend(bus, total_width), width=total_width)
    seed = builder.input_bus("seed", uniform_bits)
    noise = build_noise_sampler(builder, seed, alpha, bound, total_width)
    noised = builder.add(acc, noise, width=total_width)
    builder.output_bus("noised_sum", noised)
    return builder.circuit


def sample_noise_plaintext(alpha: float, bound: int, uniform_bits: int, u: int) -> int:
    """Bit-exact plaintext mirror of :func:`build_noise_sampler`."""
    thresholds = cdf_thresholds(alpha, bound, uniform_bits)
    return -bound + sum(1 for t in thresholds if u >= t)


def build_noised_sum_bits_circuit(
    num_inputs: int,
    value_bits: int,
    alpha: float,
    magnitude_bits: int,
    precision_bits: int = 16,
) -> Circuit:
    """Aggregation+noising circuit using the Dwork-style bit sampler.

    This is the variant the secure engine uses: at realistic noise scales
    (Laplace scale of thousands of fixed-point LSBs) the inverse-CDF table
    would dwarf the rest of the system, while this circuit stays at
    ``2 * magnitude_bits`` comparators. Input/output buses match
    :func:`build_noised_sum_circuit`, except the ``seed`` bus width is
    ``geometric_bits_seed_width(magnitude_bits, precision_bits)``.
    """
    builder = CircuitBuilder()
    extra = max(1, num_inputs.bit_length())
    total_width = max(value_bits + extra, magnitude_bits + 2)
    acc = builder.const_bus(0, total_width)
    for index in range(num_inputs):
        bus = builder.input_bus(f"state_{index}", value_bits)
        acc = builder.add(acc, builder.sign_extend(bus, total_width), width=total_width)
    seed = builder.input_bus("seed", geometric_bits_seed_width(magnitude_bits, precision_bits))
    noise = build_geometric_bits_sampler(
        builder, seed, alpha, magnitude_bits, precision_bits, total_width
    )
    noised = builder.add(acc, noise, width=total_width)
    builder.output_bus("noised_sum", noised)
    return builder.circuit


def build_partial_sum_circuit(num_inputs: int, value_bits: int, output_bits: int) -> Circuit:
    """Un-noised partial-sum circuit for the inner nodes of a hierarchical
    aggregation tree (§3.6): noise is only added once, at the root."""
    builder = CircuitBuilder()
    acc = builder.const_bus(0, output_bits)
    for index in range(num_inputs):
        bus = builder.input_bus(f"state_{index}", value_bits)
        acc = builder.add(acc, builder.sign_extend(bus, output_bits), width=output_bits)
    builder.output_bus("partial_sum", acc)
    return builder.circuit
