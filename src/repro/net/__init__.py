"""Real-socket networking for DStress: framed TCP between genuine peers.

The rest of the repository models the paper's WAN deployment — the
transport bus meters and *simulates* wire time, but every byte stays in
one process. This package is the real thing: a length-prefixed, typed
wire protocol (:mod:`repro.net.wire`), a peer/connection manager that
dials the full mesh with retry and maps every socket failure onto the
named :class:`~repro.exceptions.TransportError` taxonomy
(:mod:`repro.net.peer`), a :class:`~repro.net.transport.TcpTransport`
implementing the full :class:`~repro.core.transport.Transport` protocol
over asyncio TCP streams, and a process launcher
(:mod:`repro.net.cluster`) that spawns one OS process per party on
localhost so ``engine="async"`` and ``engine="secure-async"`` run
genuinely multi-process — bit-identical to the in-memory bus.
"""

from repro.net.cluster import ClusterOutcome, ClusterRun, run_scenario_cluster
from repro.net.peer import PeerAddress
from repro.net.transport import TcpTransport
from repro.net.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Frame,
    MessageKind,
    decode_frame,
    encode_frame,
)

__all__ = [
    "ClusterOutcome",
    "ClusterRun",
    "DEFAULT_MAX_FRAME_BYTES",
    "Frame",
    "MessageKind",
    "PROTOCOL_VERSION",
    "PeerAddress",
    "TcpTransport",
    "decode_frame",
    "encode_frame",
    "run_scenario_cluster",
]
