"""The process launcher: one OS process per party, a real mesh per run.

This is the harness behind the acceptance claim "``secure-async`` runs
genuinely multi-process": :func:`run_scenario_cluster` forks one child
per party (the repo-wide fork policy, see :mod:`repro.api.pool`), each
child binds a :class:`~repro.net.transport.TcpTransport` listener on
port 0 and reports the bound port up a pipe, the parent broadcasts the
assembled peer table, and each child dials the full mesh and runs the
same scenario over its transport instance. Children pass connected
transport *instances* to ``.engine(name, transport=...)`` — the
environment-variable string spec (``transport="tcp"``) exists for
externally-orchestrated deployments; inside one launcher, exchanging
live ports over pipes avoids every port-preassignment race.

Shutdown is a barrier on purpose: a child that finishes reports its
result and then *waits for the parent's shutdown word* before closing
its mesh. Replicated execution means fast parties can finish while slow
ones are still conveying to them, and closing a socket under a peer
still writing manifests as a connection reset at the healthy peer; the
barrier confines clean BYEs to after every run is done. A child that
*fails* closes immediately with ``CTRL_ABORT`` so survivors learn the
real cause — and a child that is killed outright says nothing, which is
exactly the EOF-without-goodbye case the survivors' read loops convert
into :class:`~repro.exceptions.PeerDisconnectedError`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.pool import scrub_repro_env
from repro.exceptions import ConfigurationError
from repro.net.peer import PeerAddress
from repro.net.transport import TcpTransport

__all__ = ["ClusterOutcome", "ClusterRun", "run_scenario_cluster"]

#: Builds one party's scenario: receives the party id, returns a
#: ``StressTest`` ready for ``.engine(...)`` (program/preset/network set,
#: engine deliberately unset — the harness attaches it with the party's
#: connected transport).
ScenarioBuilder = Callable[[int], Any]


@dataclass
class ClusterOutcome:
    """What one party's process reported back.

    ``status`` is ``"ok"`` (summary holds the released result),
    ``"error"`` (the child raised — ``error_type`` names the exception
    class, so tests can assert a *named* ``TransportError`` surfaced),
    ``"died"`` (the process exited without reporting; ``exit_code`` from
    the OS), or ``"timeout"`` (no report within the harness deadline).
    """

    party_id: int
    status: str
    summary: Optional[Dict[str, Any]] = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    exit_code: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ClusterRun:
    """Everything that parameterizes one multi-process cluster run."""

    build: ScenarioBuilder
    num_parties: int = 3
    engine: str = "secure-async"
    engine_options: Dict[str, Any] = field(default_factory=dict)
    iterations: Union[int, str] = "auto"
    host: str = "127.0.0.1"
    session: Optional[str] = None
    connect_timeout: float = 10.0
    io_timeout: float = 30.0
    #: Harness deadline for each child's report, seconds.
    timeout: float = 120.0
    #: Chaos: ``{party_id: round_index}`` — those parties hard-exit
    #: (``os._exit(17)``) the first time a send/convey reaches that round.
    die_at_round: Dict[int, int] = field(default_factory=dict)
    #: When set, each child runs under a :class:`~repro.obs.trace.TraceRecorder`
    #: and writes ``party-<id>.jsonl`` here after its run; the parent merges
    #: the shards into ``timeline.json`` (see :mod:`repro.obs.merge`).
    trace_dir: Optional[str] = None
    #: ``REPRO_*`` environment variables the children may keep. Everything
    #: else with that prefix is scrubbed at child startup: a forked party
    #: must take its configuration from this :class:`ClusterRun` (the
    #: mesh arrives over the pipe, not via ``REPRO_TCP_*``), never from
    #: whatever harness/server environment the parent happened to run in.
    env_allowlist: Tuple[str, ...] = ()


def _result_summary(result) -> Dict[str, Any]:
    """The picklable, bit-comparable essence of a released run result."""
    return {
        "engine": result.engine,
        "aggregate": result.aggregate,
        "pre_noise_aggregate": result.pre_noise_aggregate,
        "noise_raw": result.noise_raw,
        "trajectory": list(result.trajectory),
        "extras": dict(result.extras),
    }


def _child_main(run: ClusterRun, party_id: int, conn) -> None:
    """One party: listen, report port, connect the mesh, run, report."""
    scrub_repro_env(run.env_allowlist)
    transport: Optional[TcpTransport] = None
    try:
        transport = TcpTransport(
            party_id,
            run.num_parties,
            session=run.session or "dstress-cluster",
            host=run.host,
            connect_timeout=run.connect_timeout,
            io_timeout=run.io_timeout,
        )
        port = transport.listen()
        conn.send(("port", port))
        peer_table = conn.recv()
        transport.connect(
            PeerAddress(pid, host, port) for pid, host, port in peer_table
        )
        if party_id in run.die_at_round:
            transport.die_at_round = run.die_at_round[party_id]
        test = run.build(party_id)
        options = dict(run.engine_options)
        options["transport"] = transport
        summary: Dict[str, Any]
        if run.trace_dir is not None:
            from repro.obs.merge import write_trace_shard
            from repro.obs.trace import TraceRecorder, recording

            recorder = TraceRecorder(party=party_id)
            with recording(recorder):
                result = test.engine(run.engine, **options).run(
                    iterations=run.iterations
                )
            # the shard is written after the run completes: tracing must
            # never add I/O inside the protocol's round schedule
            shard_path = os.path.join(run.trace_dir, f"party-{party_id}.jsonl")
            write_trace_shard(
                shard_path,
                recorder,
                traffic=result.traffic,
                meta={"engine": result.engine, "iterations": result.iterations},
            )
            summary = _result_summary(result)
            summary["trace_shard"] = shard_path
        else:
            result = test.engine(run.engine, **options).run(
                iterations=run.iterations
            )
            summary = _result_summary(result)
        conn.send(("ok", summary))
        # shutdown barrier: hold the mesh open until every party reported,
        # so our clean close cannot reset a slower peer mid-run
        if conn.poll(run.timeout):
            conn.recv()
        transport.close()
        os._exit(0)
    except BaseException as exc:  # noqa: BLE001 - the pipe is the report
        if transport is not None:
            transport.close(error=exc)
        try:
            conn.send(("error", (type(exc).__name__, str(exc))))
        except Exception:
            pass
        os._exit(1)


def run_scenario_cluster(
    build: ScenarioBuilder,
    *,
    num_parties: int = 3,
    engine: str = "secure-async",
    engine_options: Optional[Dict[str, Any]] = None,
    iterations: Union[int, str] = "auto",
    host: str = "127.0.0.1",
    session: Optional[str] = None,
    connect_timeout: float = 10.0,
    io_timeout: float = 30.0,
    timeout: float = 120.0,
    die_at_round: Optional[Dict[int, int]] = None,
    trace_dir: Optional[str] = None,
    env_allowlist: Sequence[str] = (),
) -> List[ClusterOutcome]:
    """Run one scenario across ``num_parties`` real OS processes.

    Returns one :class:`ClusterOutcome` per party, in party order. The
    caller asserts what it cares about — the cluster tests check that
    every ``"ok"`` summary is bit-identical to an in-memory run of the
    same scenario, and that chaos runs surface *named* transport errors
    instead of timing out the harness.

    ``trace_dir`` turns on per-party tracing: each child records spans and
    metrics under a :class:`~repro.obs.trace.TraceRecorder` and writes a
    JSONL shard into the directory; after all reports are in, the parent
    merges the shards into ``<trace_dir>/timeline.json`` (best effort —
    a partial cluster still merges whatever shards landed).

    Children are scrubbed of ``REPRO_*`` environment variables at startup
    (fork inheritance would otherwise hand every child whatever harness
    or server knobs the parent ran under); pass ``env_allowlist`` to let
    named variables through deliberately.
    """
    if num_parties < 2:
        raise ConfigurationError("a cluster needs at least two parties")
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    run = ClusterRun(
        build=build,
        num_parties=num_parties,
        engine=engine,
        engine_options=dict(engine_options or {}),
        iterations=iterations,
        host=host,
        session=session or f"dstress-cluster-{os.getpid()}-{os.urandom(4).hex()}",
        connect_timeout=connect_timeout,
        io_timeout=io_timeout,
        timeout=timeout,
        die_at_round=dict(die_at_round or {}),
        trace_dir=trace_dir,
        env_allowlist=tuple(env_allowlist),
    )
    ctx = get_context("fork")
    pipes = []
    procs = []
    for party_id in range(num_parties):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_child_main,
            args=(run, party_id, child_conn),
            name=f"dstress-party-{party_id}",
        )
        proc.start()
        child_conn.close()
        pipes.append(parent_conn)
        procs.append(proc)

    outcomes: List[Optional[ClusterOutcome]] = [None] * num_parties
    try:
        # phase 1: collect bound ports
        ports: List[Optional[int]] = [None] * num_parties
        for party_id, conn in enumerate(pipes):
            message = _recv(conn, connect_timeout)
            if message is None or message[0] != "port":
                outcomes[party_id] = _dead_outcome(
                    party_id, procs[party_id], message
                )
            else:
                ports[party_id] = message[1]
        if any(port is None for port in ports):
            # a party died before binding: nobody can form the mesh
            for party_id in range(num_parties):
                if outcomes[party_id] is None:
                    outcomes[party_id] = ClusterOutcome(
                        party_id,
                        "error",
                        error_type="PeerConnectError",
                        error_message="mesh never formed: a party died "
                        "before binding its listener",
                    )
            return [outcome for outcome in outcomes if outcome is not None]
        # phase 2: broadcast the peer table
        peer_table = [
            (party_id, host, port) for party_id, port in enumerate(ports)
        ]
        for conn in pipes:
            try:
                conn.send(peer_table)
            except (BrokenPipeError, OSError):
                continue
        # phase 3: collect run reports
        for party_id, conn in enumerate(pipes):
            if outcomes[party_id] is not None:
                continue
            message = _recv(conn, timeout)
            if message is None:
                outcomes[party_id] = _dead_outcome(
                    party_id, procs[party_id], None
                )
            elif message[0] == "ok":
                outcomes[party_id] = ClusterOutcome(
                    party_id, "ok", summary=message[1]
                )
            else:
                error_type, error_message = message[1]
                outcomes[party_id] = ClusterOutcome(
                    party_id,
                    "error",
                    error_type=error_type,
                    error_message=error_message,
                )
        # phase 4: release the shutdown barrier
        for conn in pipes:
            try:
                conn.send("shutdown")
            except (BrokenPipeError, OSError):
                continue
    finally:
        for proc in procs:
            proc.join(timeout=connect_timeout)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=connect_timeout)
        for conn in pipes:
            conn.close()
    if trace_dir is not None:
        from repro.obs.merge import merge_cluster_trace

        try:
            merge_cluster_trace(trace_dir)
        except OSError:
            # a chaos run can leave no shards at all; the outcomes still
            # tell the caller what happened
            pass
    return [outcome for outcome in outcomes if outcome is not None]


def _recv(conn, timeout: float):
    """One message off a child pipe, or ``None`` if it died / went quiet."""
    try:
        if not conn.poll(timeout):
            return None
        return conn.recv()
    except (EOFError, OSError):
        return None


def _dead_outcome(party_id: int, proc, message) -> ClusterOutcome:
    if message is not None and message[0] == "error":
        error_type, error_message = message[1]
        return ClusterOutcome(
            party_id,
            "error",
            error_type=error_type,
            error_message=error_message,
        )
    proc.join(timeout=0.1)
    if proc.exitcode is not None:
        return ClusterOutcome(party_id, "died", exit_code=proc.exitcode)
    return ClusterOutcome(party_id, "timeout")
