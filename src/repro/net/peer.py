"""Peer connections: dialing the mesh, handshakes, failure mapping.

This layer owns everything between "a list of (party, host, port)
addresses" and "an established, version-checked stream": dialing with
retry and exponential backoff under a connect deadline, the HELLO
handshake in both directions, and — crucially — the mapping of every
socket failure mode onto the named
:class:`~repro.exceptions.TransportError` taxonomy, so the transport
above never sees a raw ``OSError`` and never hangs on a dead peer:

* connect refused / unreachable / timed out after retries →
  :class:`~repro.exceptions.PeerConnectError`
* connection reset, broken pipe, EOF mid-frame →
  :class:`~repro.exceptions.PeerDisconnectedError`
* read deadline exceeded on a live connection →
  :class:`~repro.exceptions.TransportTimeoutError`
* frame-level garbage → :class:`~repro.exceptions.WireFormatError`
  (raised by the codec, passed through here)
* HELLO version/session/party mismatch →
  :class:`~repro.exceptions.HandshakeError`
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import (
    HandshakeError,
    PeerConnectError,
    PeerDisconnectedError,
    TransportTimeoutError,
)
from repro.net.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_BYTES,
    Frame,
    MessageKind,
    decode_frame,
    encode_frame,
)

__all__ = ["PeerAddress", "read_frame", "write_frame", "dial_peer", "expect_hello"]


@dataclass(frozen=True)
class PeerAddress:
    """One party's listening endpoint in the mesh."""

    party_id: int
    host: str
    port: int

    def __str__(self) -> str:
        return f"party {self.party_id} ({self.host}:{self.port})"


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    timeout: Optional[float] = None,
    where: str = "peer",
) -> Frame:
    """Read exactly one frame, mapping every failure to the taxonomy.

    Reads the fixed header first (so the payload length is known before
    any payload byte is read — never over-reads into the next frame),
    refuses oversized declarations via the codec, and distinguishes a
    clean EOF *between* frames (``PeerDisconnectedError`` naming a closed
    connection) from an EOF *mid-frame* (a partial read — the connection
    died while a frame was in flight).
    """

    async def _read() -> Frame:
        header = await reader.readexactly(HEADER_BYTES)
        # Decode the header alone (declared-length + cap check) before
        # reading the payload, so a hostile length never allocates.
        _, _, _, length = _header_fields(header)
        payload = await reader.readexactly(length) if length else b""
        frame, _ = decode_frame(header + payload, max_frame_bytes=max_frame_bytes)
        return frame

    try:
        if timeout is not None:
            return await asyncio.wait_for(_read(), timeout)
        return await _read()
    except asyncio.TimeoutError:
        raise TransportTimeoutError(
            f"{where}: no frame within the {timeout:g}s read timeout"
        ) from None
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise PeerDisconnectedError(
                f"{where}: connection closed mid-frame (EOF after "
                f"{len(exc.partial)} of {exc.expected} bytes)"
            ) from None
        raise PeerDisconnectedError(f"{where}: connection closed (EOF)") from None
    except (ConnectionResetError, BrokenPipeError) as exc:
        raise PeerDisconnectedError(f"{where}: connection reset: {exc}") from exc


def _header_fields(header: bytes) -> Tuple[bytes, int, int, int]:
    """Split a raw header without validating kind/magic — full validation
    happens in :func:`~repro.net.wire.decode_frame` once the payload is
    in hand; here we only need the length to size the payload read. The
    cap check still runs first so a hostile length is refused unread."""
    import struct

    return struct.unpack("!2sBBI", header)


def write_frame(
    writer: asyncio.StreamWriter,
    frame: Frame,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    where: str = "peer",
) -> int:
    """Serialize and buffer one frame; returns the bytes written.

    Buffering never blocks; callers that need pacing await
    ``writer.drain()`` themselves (mapped by the transport). A closed
    writer raises :class:`PeerDisconnectedError` immediately.
    """
    if writer.is_closing():
        raise PeerDisconnectedError(f"{where}: connection already closed")
    data = encode_frame(frame, max_frame_bytes=max_frame_bytes)
    try:
        writer.write(data)
    except (ConnectionResetError, BrokenPipeError, OSError) as exc:
        raise PeerDisconnectedError(f"{where}: write failed: {exc}") from exc
    return len(data)


def check_hello(
    frame: Frame,
    *,
    session: bytes,
    num_parties: int,
    where: str,
) -> int:
    """Validate a received HELLO against this mesh; returns the party id."""
    if frame.kind is not MessageKind.HELLO:
        raise HandshakeError(
            f"{where}: expected HELLO, got {MessageKind(frame.kind).name}"
        )
    if frame.session != session:
        raise HandshakeError(
            f"{where}: session mismatch (two clusters crossing wires?)"
        )
    if frame.num_parties != num_parties:
        raise HandshakeError(
            f"{where}: peer announces a {frame.num_parties}-party mesh, "
            f"this side expects {num_parties}"
        )
    if not 0 <= frame.party_id < num_parties:
        raise HandshakeError(
            f"{where}: party id {frame.party_id} outside the "
            f"{num_parties}-party mesh"
        )
    return frame.party_id


async def expect_hello(
    reader: asyncio.StreamReader,
    *,
    session: bytes,
    num_parties: int,
    timeout: float,
    max_frame_bytes: int,
    where: str,
) -> int:
    """Read and validate the first frame of a connection (the HELLO)."""
    frame = await read_frame(
        reader, max_frame_bytes=max_frame_bytes, timeout=timeout, where=where
    )
    return check_hello(
        frame, session=session, num_parties=num_parties, where=where
    )


async def dial_peer(
    address: PeerAddress,
    *,
    my_party: int,
    session: bytes,
    num_parties: int,
    connect_timeout: float,
    retry_backoff: float,
    max_frame_bytes: int,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial one peer with retry+backoff, then handshake both ways.

    The retry loop exists because mesh startup is racy by construction:
    every party dials every other while they are all still binding their
    listeners, so the first attempts routinely hit connection-refused.
    Attempts back off exponentially (``retry_backoff * 2^n``, capped)
    until ``connect_timeout`` is spent, then raise
    :class:`PeerConnectError` naming the peer and the attempt count.
    """
    loop = asyncio.get_running_loop()
    deadline = loop.time() + connect_timeout
    attempt = 0
    last_error: Optional[BaseException] = None
    while True:
        remaining = deadline - loop.time()
        if remaining <= 0:
            raise PeerConnectError(
                f"could not connect to {address} within {connect_timeout:g}s "
                f"({attempt} attempts; last error: {last_error})"
            )
        attempt += 1
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(address.host, address.port),
                timeout=remaining,
            )
            break
        except asyncio.TimeoutError:
            last_error = TimeoutError("connect timed out")
        except OSError as exc:  # refused, unreachable, reset during accept
            last_error = exc
        await asyncio.sleep(min(retry_backoff * (2 ** min(attempt, 8)), 1.0))
    try:
        write_frame(
            writer,
            Frame(
                kind=MessageKind.HELLO,
                session=session,
                party_id=my_party,
                num_parties=num_parties,
            ),
            max_frame_bytes=max_frame_bytes,
            where=str(address),
        )
        await writer.drain()
        peer_id = await expect_hello(
            reader,
            session=session,
            num_parties=num_parties,
            timeout=max(deadline - loop.time(), 0.1),
            max_frame_bytes=max_frame_bytes,
            where=str(address),
        )
        if peer_id != address.party_id:
            raise HandshakeError(
                f"{address}: answered as party {peer_id}, expected "
                f"{address.party_id} — peer table and mesh disagree"
            )
    except BaseException:
        writer.close()
        raise
    return reader, writer
