""":class:`TcpTransport` — the full Transport protocol over real sockets.

Execution model: **deterministic replication**. Every party process runs
the complete engine with identical seeds, so every replica computes every
payload; what distinguishes the parties is *ownership*. Each vertex is
owned by one party (``sorted_rank(vertex_id) % num_parties``), and the
wire carries exactly one frame per cross-owner edge per round: the owner
of the source vertex sends, the owner of the destination vertex fills
that in-slot **only** from the received frame (its local replica of the
send is suppressed), and every other replica delivers locally. The
secure engine's transcript is globally sequential (every
:class:`~repro.crypto.rng.DeterministicRNG` fork consumes parent
stream), so partitioning the *computation* would break bit-identity with
the in-memory engines; replicating it keeps the transcript intact while
the owners' payloads genuinely travel TCP — and since replicas are
deterministic, the wire value always equals the local one, which is
precisely the bit-identity claim the cluster tests assert.

Crypto conveys follow the same rule: only ``owner(src)`` puts the padded
byte volume on the wire (chunked under the frame cap, sender awaiting
``drain()`` so egress pays real kernel backpressure); the receiving read
loop counts the bytes, and no replica blocks on them — the *values* were
already computed everywhere.

Threading model: the transport owns one background asyncio loop in a
daemon thread. Every public entry point bridges onto it —
``run_coroutine_threadsafe`` wrapped back into the caller's loop for the
async methods, ``.result()`` for the sync ones — so all mailbox and
connection state is mutated on exactly one thread, and the engine's own
event loop (created per ``asyncio.run``) never touches a socket.

Failure model: a read loop that hits EOF/ECONNRESET without a prior BYE
marks the peer failed and sets a transport-wide failure event; every
round gather races its mailbox barrier against that event *and* the
configured ``io_timeout``, so a killed peer surfaces as a named
:class:`~repro.exceptions.PeerDisconnectedError` (or
:class:`~repro.exceptions.TransportTimeoutError`) within the timeout —
never a hang. A clean BYE instead marks the peer *departed*: its run is
complete (it could not have finished while still owing us frames), so
later sends to it are suppressed rather than failed.
"""

from __future__ import annotations

import asyncio
import hashlib
import math
import os
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.transport import Transport
from repro.exceptions import (
    ConfigurationError,
    HandshakeError,
    PeerConnectError,
    PeerDisconnectedError,
    TransportError,
    TransportTimeoutError,
)
from repro.net.peer import PeerAddress, dial_peer, expect_hello, read_frame, write_frame
from repro.net.wire import (
    CONVEY_HEADER_BYTES,
    CTRL_ABORT,
    CTRL_BYE,
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_BYTES,
    Frame,
    MessageKind,
    convey_kind,
    encode_frame,
)
from repro.simulation.netsim import TrafficMeter

__all__ = ["TcpTransport", "session_id"]

#: Environment variables the ``transport="tcp"`` string spec reads.
ENV_PARTY = "REPRO_TCP_PARTY"
ENV_PEERS = "REPRO_TCP_PEERS"
ENV_SESSION = "REPRO_TCP_SESSION"


def session_id(token: Union[str, bytes]) -> bytes:
    """Derive the 16-byte wire session id from a human-readable token.

    Already-sized byte strings pass through, so callers can also supply
    raw ``os.urandom(16)`` material directly.
    """
    if isinstance(token, bytes):
        if len(token) == 16:
            return token
        return hashlib.sha256(token).digest()[:16]
    return hashlib.sha256(token.encode("utf-8")).digest()[:16]


class TcpTransport(Transport):
    """Real-socket bus: framed TCP streams between genuine peer processes.

    One instance is one party's endpoint in an ``num_parties``-way mesh
    and serves **one execution**: :meth:`listen` → :meth:`connect` (or
    :meth:`start` / :meth:`from_env` for the preassigned-port path), one
    engine run, :meth:`close`. Build a fresh mesh per run — frames carry
    no run id, so reusing a connected mesh across runs could leak one
    run's round-0 frames into the previous run's mailboxes.
    """

    name = "tcp"

    def __init__(
        self,
        party_id: int,
        num_parties: int,
        *,
        session: Union[str, bytes] = "dstress",
        host: str = "127.0.0.1",
        port: int = 0,
        connect_timeout: float = 10.0,
        io_timeout: float = 30.0,
        retry_backoff: float = 0.05,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        chunk_bytes: int = 1 << 20,
        meter: Optional[TrafficMeter] = None,
    ) -> None:
        if num_parties < 1:
            raise ConfigurationError("a TCP mesh needs at least one party")
        if not 0 <= party_id < num_parties:
            raise ConfigurationError(
                f"party id {party_id} outside the {num_parties}-party mesh"
            )
        if connect_timeout <= 0 or io_timeout <= 0:
            raise ConfigurationError("transport timeouts must be positive")
        if chunk_bytes < 1:
            raise ConfigurationError("convey chunk size must be positive")
        if max_frame_bytes <= HEADER_BYTES + CONVEY_HEADER_BYTES:
            raise ConfigurationError("frame cap too small to carry any payload")
        self.party_id = party_id
        self.num_parties = num_parties
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.retry_backoff = retry_backoff
        self.max_frame_bytes = max_frame_bytes
        self.chunk_bytes = min(
            chunk_bytes, max_frame_bytes - CONVEY_HEADER_BYTES
        )
        self.meter = meter if meter is not None else TrafficMeter()
        #: Chaos hook: ``os._exit(17)`` the whole process the first time a
        #: send/convey reaches this round — how the kill-a-peer tests die
        #: mid-round without cooperation from the engine above.
        self.die_at_round: Optional[int] = None

        self._session = session_id(session)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._all_writers: List[asyncio.StreamWriter] = []
        self._tasks: Set[asyncio.Task] = set()
        self._inbound_ids: Set[int] = set()
        self._inbound_ready: Optional[asyncio.Event] = None
        self._run_started: Optional[asyncio.Event] = None
        self._failure: Optional[asyncio.Event] = None
        self._failure_error: Optional[TransportError] = None
        self._peer_failure: Dict[int, TransportError] = {}
        self._departed: Set[int] = set()
        self._handshake_errors: List[TransportError] = []
        self._owner: Dict[int, int] = {}
        self._sync_round = 0
        self._opened = False
        self._closed = False
        self._stats: Dict[str, float] = {
            "frames_sent": 0.0,
            "frames_received": 0.0,
            "bytes_sent": 0.0,
            "bytes_received": 0.0,
            "sends_suppressed": 0.0,
        }

    # ------------------------------------------------------------ lifecycle --

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._closed:
            raise ConfigurationError("this TcpTransport has been closed")
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
            # the mesh-wide coordination events must belong to the io loop
            self._inbound_ready = asyncio.Event()
            self._run_started = asyncio.Event()
            self._failure = asyncio.Event()
            if self.num_parties <= 1:
                self._inbound_ready.set()
            self._thread = threading.Thread(
                target=self._loop.run_forever,
                name=f"tcp-transport-party{self.party_id}",
                daemon=True,
            )
            self._thread.start()
        return self._loop

    def _call_io(self, coro, timeout: Optional[float] = None):
        """Run ``coro`` on the io loop from synchronous code."""
        future = asyncio.run_coroutine_threadsafe(coro, self._ensure_loop())
        return future.result(timeout)

    async def _on_io(self, coro):
        """Run ``coro`` on the io loop from the engine's event loop."""
        return await asyncio.wrap_future(
            asyncio.run_coroutine_threadsafe(coro, self._ensure_loop())
        )

    def listen(self) -> int:
        """Bind the listener (port 0 picks a free one); returns the port."""
        self.port = self._call_io(self._inner_listen(), timeout=self.connect_timeout)
        return self.port

    async def _inner_listen(self) -> int:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        return self._server.sockets[0].getsockname()[1]

    def connect(self, peers: Iterable[PeerAddress]) -> None:
        """Dial every other party and wait for the full inbound mesh.

        ``peers`` may include this party's own address (ignored); it must
        cover every other party exactly once.
        """
        others = sorted(
            (p for p in peers if p.party_id != self.party_id),
            key=lambda p: p.party_id,
        )
        expected = set(range(self.num_parties)) - {self.party_id}
        if {p.party_id for p in others} != expected:
            raise ConfigurationError(
                f"peer table {sorted(p.party_id for p in others)} does not "
                f"cover parties {sorted(expected)}"
            )
        self._call_io(self._inner_connect(others))

    async def _inner_connect(self, others: Sequence[PeerAddress]) -> None:
        outcomes = await asyncio.gather(
            *(
                dial_peer(
                    address,
                    my_party=self.party_id,
                    session=self._session,
                    num_parties=self.num_parties,
                    connect_timeout=self.connect_timeout,
                    retry_backoff=self.retry_backoff,
                    max_frame_bytes=self.max_frame_bytes,
                )
                for address in others
            ),
            return_exceptions=True,
        )
        failure = next(
            (o for o in outcomes if isinstance(o, BaseException)), None
        )
        if failure is not None:
            for outcome in outcomes:
                if not isinstance(outcome, BaseException):
                    outcome[1].close()
            raise failure
        for address, outcome in zip(others, outcomes):
            reader, writer = outcome
            self._writers[address.party_id] = writer
            self._all_writers.append(writer)
            # the peer sends its data frames on the connection *it*
            # dialed; this reader exists to notice its death promptly
            self._spawn_read_loop(
                reader,
                address.party_id,
                f"party {self.party_id} -> {address}",
            )
        try:
            await asyncio.wait_for(
                self._inbound_ready.wait(), self.connect_timeout
            )
        except asyncio.TimeoutError:
            if self._handshake_errors:
                raise self._handshake_errors[0] from None
            missing = sorted(
                set(range(self.num_parties))
                - {self.party_id}
                - self._inbound_ids
            )
            raise PeerConnectError(
                f"parties {missing} never completed the inbound handshake "
                f"within {self.connect_timeout:g}s"
            ) from None

    def start(self, peers: Iterable[PeerAddress]) -> None:
        """Listen on this party's preassigned port, then dial the mesh."""
        self.listen()
        self.connect(peers)

    @classmethod
    def from_env(
        cls,
        config=None,
        meter: Optional[TrafficMeter] = None,
        env: Optional[Dict[str, str]] = None,
    ) -> "TcpTransport":
        """Build and fully connect a transport from the environment.

        This is the ``transport="tcp"`` string spec: each party process
        sets ``REPRO_TCP_PARTY`` (its index), ``REPRO_TCP_PEERS``
        (comma-separated ``host:port`` list, index = party id) and
        optionally ``REPRO_TCP_SESSION`` (shared token), and the engine's
        resolve step blocks here until the mesh is up. ``config`` is
        accepted for registry-signature compatibility; the mesh shape
        comes from the environment, not the run config.
        """
        environ = os.environ if env is None else env
        party_raw = environ.get(ENV_PARTY)
        peers_raw = environ.get(ENV_PEERS)
        if party_raw is None or peers_raw is None:
            raise ConfigurationError(
                'transport="tcp" needs the mesh described in the '
                f"environment: {ENV_PARTY}=<this party's index> and "
                f"{ENV_PEERS}=<host:port,host:port,...> (index = party id); "
                f"optionally {ENV_SESSION}=<shared session token>. For "
                "programmatic meshes pass a connected TcpTransport instance "
                "instead (see repro.net.cluster)."
            )
        addresses: List[PeerAddress] = []
        for index, entry in enumerate(peers_raw.split(",")):
            host, _, port_text = entry.strip().rpartition(":")
            if not host or not port_text.isdigit():
                raise ConfigurationError(
                    f"{ENV_PEERS} entry {entry!r} is not host:port"
                )
            addresses.append(PeerAddress(index, host, int(port_text)))
        try:
            party = int(party_raw)
        except ValueError:
            raise ConfigurationError(
                f"{ENV_PARTY} must be an integer, got {party_raw!r}"
            ) from None
        if not 0 <= party < len(addresses):
            raise ConfigurationError(
                f"{ENV_PARTY}={party} outside the {len(addresses)}-party "
                f"mesh described by {ENV_PEERS}"
            )
        mine = addresses[party]
        transport = cls(
            party,
            len(addresses),
            session=environ.get(ENV_SESSION, "dstress"),
            host=mine.host,
            port=mine.port,
            meter=meter,
        )
        transport.start(addresses)
        return transport

    def close(self, error: Optional[BaseException] = None) -> None:
        """Tear the mesh down (idempotent).

        A clean close says goodbye (``CTRL_BYE``) so peers mark this party
        departed; ``error`` switches that to ``CTRL_ABORT`` carrying the
        error text, so survivors fail fast with the real cause instead of
        waiting out their timeouts.
        """
        if self._closed:
            return
        self._closed = True
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self._inner_close(error), loop
            ).result(timeout=self.connect_timeout)
        except Exception:
            pass  # best-effort goodbye; the loop is coming down regardless
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=self.connect_timeout)
        if not thread.is_alive():
            loop.close()

    async def _inner_close(self, error: Optional[BaseException]) -> None:
        goodbye = Frame(
            kind=MessageKind.CONTROL,
            code=CTRL_ABORT if error is not None else CTRL_BYE,
            detail="" if error is None else f"{type(error).__name__}: {error}",
        )
        for pid, writer in list(self._writers.items()):
            if pid in self._departed or pid in self._peer_failure:
                continue
            try:
                write_frame(writer, goodbye, max_frame_bytes=self.max_frame_bytes)
                await asyncio.wait_for(writer.drain(), timeout=1.0)
            except Exception:
                continue
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        for writer in self._all_writers:
            try:
                writer.close()
            except Exception:
                continue

    # --------------------------------------------------------- read loops --

    def _spawn_read_loop(
        self, reader: asyncio.StreamReader, pid: int, label: str
    ) -> None:
        task = self._loop.create_task(self._read_loop(reader, pid, label))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Accept one inbound connection: HELLO both ways, then read."""
        label = f"party {self.party_id} (inbound)"
        self._all_writers.append(writer)
        try:
            write_frame(
                writer,
                Frame(
                    kind=MessageKind.HELLO,
                    session=self._session,
                    party_id=self.party_id,
                    num_parties=self.num_parties,
                ),
                max_frame_bytes=self.max_frame_bytes,
                where=label,
            )
            await asyncio.wait_for(writer.drain(), self.connect_timeout)
            pid = await expect_hello(
                reader,
                session=self._session,
                num_parties=self.num_parties,
                timeout=self.connect_timeout,
                max_frame_bytes=self.max_frame_bytes,
                where=label,
            )
            if pid == self.party_id:
                raise HandshakeError(
                    f"{label}: a connection claims to be this party"
                )
            if pid in self._inbound_ids:
                raise HandshakeError(
                    f"{label}: duplicate inbound connection from party {pid}"
                )
        except asyncio.TimeoutError:
            writer.close()
            return
        except TransportError as exc:
            self._handshake_errors.append(
                exc
                if isinstance(exc, HandshakeError)
                else HandshakeError(f"{label}: handshake failed: {exc}")
            )
            writer.close()
            return
        self._inbound_ids.add(pid)
        if len(self._inbound_ids) >= self.num_parties - 1:
            self._inbound_ready.set()
        await self._read_loop(
            reader, pid, f"party {self.party_id} <- party {pid}"
        )

    async def _read_loop(
        self, reader: asyncio.StreamReader, pid: int, label: str
    ) -> None:
        try:
            while True:
                frame = await read_frame(
                    reader, max_frame_bytes=self.max_frame_bytes, where=label
                )
                await self._handle_frame(frame, pid)
        except asyncio.CancelledError:
            raise
        except PeerDisconnectedError as exc:
            if self._closed or pid in self._departed:
                return  # their goodbye (or our shutdown) already explained it
            self._mark_peer_failed(pid, exc)
        except TransportError as exc:  # wire garbage, oversized frame, ...
            self._mark_peer_failed(pid, exc)

    async def _handle_frame(self, frame: Frame, pid: int) -> None:
        self._stats["frames_received"] += 1
        # the codec is canonical, so re-encoding gives the exact wire size
        self._stats["bytes_received"] += len(
            encode_frame(frame, max_frame_bytes=self.max_frame_bytes)
        )
        if frame.kind is MessageKind.ROUND_VALUE:
            if not self._run_started.is_set():
                # mesh startup skew: a fast peer's round-0 frames can land
                # before this party's engine has open()ed its mailboxes —
                # hold the connection (TCP buffers behind it) until then
                await self._run_started.wait()
            try:
                self._deliver(
                    frame.src,
                    frame.dst,
                    frame.in_slot,
                    frame.value,
                    frame.round_index,
                )
            except TransportError as exc:  # duplicate delivery off the wire
                self._mark_peer_failed(pid, exc)
        elif frame.kind is MessageKind.CONTROL:
            if frame.code == CTRL_BYE:
                self._departed.add(pid)
            elif frame.code == CTRL_ABORT:
                self._mark_peer_failed(
                    pid,
                    PeerDisconnectedError(
                        f"party {pid} aborted its run: {frame.detail}"
                    ),
                )
        # convey kinds carry only padding: counted above, nothing to route

    def _mark_peer_failed(self, pid: int, error: TransportError) -> None:
        self._peer_failure.setdefault(pid, error)
        if self._failure_error is None:
            self._failure_error = error
        self._failure.set()

    # ----------------------------------------------------- Transport: sync --

    def open(self, graph, fill) -> None:
        self._call_io(self._inner_open(graph, fill), timeout=self.io_timeout)

    async def _inner_open(self, graph, fill) -> None:
        if self._opened:
            raise ConfigurationError(
                "a TcpTransport serves one execution; build a fresh mesh "
                "per run (frames carry no run id)"
            )
        Transport.open(self, graph, fill)
        self._owner = {
            vid: rank % self.num_parties
            for rank, vid in enumerate(graph.vertex_ids)
        }
        self._sync_round = 0
        self._opened = True
        self._run_started.set()

    def deliver_outboxes(self, graph, outboxes, fill):
        """The synchronous full-round path, over the same wire machinery.

        One call is one round (engines open the bus per run, so the round
        counter starts at this run's zero): every edge goes through the
        async send path — cross-owner edges genuinely travel TCP — and
        every vertex's inbox is gathered with the same failure/timeout
        protection the async engines get.
        """
        return self._call_io(self._inner_round(graph, outboxes, fill))

    async def _inner_round(self, graph, outboxes, fill):
        if not self._opened:
            raise ConfigurationError(
                "TcpTransport.deliver_outboxes needs open() first — every "
                "engine opens its bus at the start of the run"
            )
        round_index = self._sync_round
        self._sync_round += 1
        for view in graph.vertices():
            for out_slot, neighbor in enumerate(view.out_neighbors):
                in_slot = graph.vertex(neighbor).in_slot(view.vertex_id)
                await self._inner_send(
                    view.vertex_id,
                    neighbor,
                    in_slot,
                    outboxes[view.vertex_id][out_slot],
                    round_index,
                )
        inboxes = {}
        for vid in graph.vertex_ids:
            inboxes[vid] = await Transport.gather_round(self, vid, round_index)
        return inboxes

    # ---------------------------------------------------- Transport: async --

    async def send(self, src, dst, in_slot, payload, round_index):
        await self._on_io(
            self._inner_send(src, dst, in_slot, payload, round_index)
        )

    async def gather_round(self, vertex_id, round_index):
        return await self._on_io(
            Transport.gather_round(self, vertex_id, round_index)
        )

    async def convey(self, src, dst, num_bytes, round_index, kind="crypto"):
        await self._on_io(
            self._inner_convey(src, dst, num_bytes, round_index, kind)
        )

    async def fault_delivery(self, src, dst, in_slot, round_index, description):
        await self._on_io(
            self._inner_fault(src, dst, in_slot, round_index, description)
        )

    async def _inner_fault(self, src, dst, in_slot, round_index, description):
        # chaos is replicated like everything else: every party's wrapper
        # drops the same delivery, so each replica accounts it locally and
        # no wire frame is sent (the wrapper never called send)
        self._fault((dst, round_index), description)

    def _maybe_die(self, round_index: int) -> None:
        if self.die_at_round is not None and round_index >= self.die_at_round:
            os._exit(17)

    async def _inner_send(self, src, dst, in_slot, payload, round_index):
        self._maybe_die(round_index)
        me = self.party_id
        src_owner = self._owner[src]
        dst_owner = self._owner[dst]
        if src_owner == me and dst_owner != me:
            await self._write_to(
                dst_owner,
                Frame(
                    kind=MessageKind.ROUND_VALUE,
                    src=src,
                    dst=dst,
                    in_slot=in_slot,
                    round_index=round_index,
                    value=payload,
                ),
            )
        if not (dst_owner == me and src_owner != me):
            # everyone delivers their replica locally, EXCEPT the owner of
            # a cross-owner destination: that slot fills only off the wire
            self._deliver(src, dst, in_slot, payload, round_index)

    async def _inner_convey(self, src, dst, num_bytes, round_index, kind):
        self._maybe_die(round_index)
        me = self.party_id
        dst_owner = self._owner[dst]
        if self._owner[src] != me or dst_owner == me:
            return  # only the source owner pays the wire; replicas compute
        remaining = max(0, math.ceil(num_bytes))
        frame_kind = convey_kind(kind)
        while True:
            pad = min(remaining, self.chunk_bytes)
            await self._write_to(
                dst_owner,
                Frame(
                    kind=frame_kind,
                    src=src,
                    dst=dst,
                    round_index=round_index,
                    pad_len=pad,
                ),
            )
            remaining -= pad
            if remaining <= 0:
                break

    async def _write_to(self, pid: int, frame: Frame) -> None:
        """One real frame onto the wire to ``pid``, sender-paced.

        ``write()`` is synchronous (the frame lands in the buffer
        atomically, so concurrent senders interleave whole frames, never
        bytes), then ``drain()`` is awaited under the io timeout — egress
        pays genuine TCP backpressure, which is what makes the measured
        wall-clock comparable to the netsim projection.
        """
        link = f"round {frame.round_index}: delivery {frame.src}->{frame.dst}"
        failed = self._peer_failure.get(pid)
        if failed is not None:
            raise PeerDisconnectedError(
                f"{link} cannot reach party {pid}: {failed}"
            )
        if pid in self._departed:
            # a clean BYE means the peer's run is complete — it cannot
            # have finished while still owing us anything, so late egress
            # to it (end-of-run skew) is suppressed, not failed
            self._stats["sends_suppressed"] += 1
            return
        writer = self._writers.get(pid)
        if writer is None:
            raise PeerDisconnectedError(
                f"{link}: no connection to party {pid} (connect the mesh "
                "before running)"
            )
        num_bytes = write_frame(
            writer,
            frame,
            max_frame_bytes=self.max_frame_bytes,
            where=f"party {self.party_id} -> party {pid}",
        )
        self._stats["frames_sent"] += 1
        self._stats["bytes_sent"] += num_bytes
        self.meter.record_send(frame.src, frame.dst, float(num_bytes))
        try:
            await asyncio.wait_for(writer.drain(), self.io_timeout)
        except asyncio.TimeoutError:
            raise TransportTimeoutError(
                f"{link}: party {pid} did not drain within "
                f"{self.io_timeout:g}s"
            ) from None
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise PeerDisconnectedError(
                f"{link}: connection to party {pid} died mid-write: {exc}"
            ) from exc

    async def _await_round(self, key: Tuple[int, int]) -> None:
        """The round barrier, raced against peer failure and the timeout.

        This is the never-hang guarantee: the wait resolves when the
        mailbox completes, raises the failure cause when a peer died, and
        raises :class:`TransportTimeoutError` when ``io_timeout`` passes
        with neither — a completed round always wins over a concurrent
        failure, because its frames all arrived.
        """
        vertex_id, round_index = key
        event = self._event(key)
        if event.is_set():
            return
        waiters = [
            asyncio.ensure_future(event.wait()),
            asyncio.ensure_future(self._failure.wait()),
        ]
        try:
            done, _pending = await asyncio.wait(
                waiters,
                timeout=self.io_timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for waiter in waiters:
                waiter.cancel()
        if event.is_set():
            return
        if waiters[1] in done:
            cause = self._failure_error
            raise type(cause)(
                f"round {round_index}: vertex {vertex_id} cannot complete "
                f"its gather: {cause}"
            )
        raise TransportTimeoutError(
            f"round {round_index}: vertex {vertex_id} gather still "
            f"incomplete after {self.io_timeout:g}s (no peer failure "
            "detected — mesh stalled?)"
        )

    # ------------------------------------------------------------ metering --

    def wire_stats(self) -> Dict[str, float]:
        """A snapshot of real wire activity (frames/bytes actually moved)."""
        stats = dict(self._stats)
        stats["party_id"] = float(self.party_id)
        stats["num_parties"] = float(self.num_parties)
        stats["peers_connected"] = float(len(self._writers))
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpTransport party={self.party_id}/{self.num_parties} "
            f"{self.host}:{self.port}>"
        )
