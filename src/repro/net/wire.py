"""The framed wire format real DStress peers speak (MOTION-style framing).

Every message on a peer connection is one *frame*: a fixed 8-byte header
— magic, protocol version, typed :class:`MessageKind`, and a big-endian
u32 payload length — followed by exactly that many payload bytes. The
shape follows MOTION's length-prefixed typed-message framing
(``message.fbs``): the receiver always knows how many bytes to read
before it reads them, so a partial read is detectable (EOF mid-frame),
an oversized declaration is refusable before allocation, and garbage is
rejected at the header, never by wandering into the stream.

::

    offset  size  field
    ------  ----  ----------------------------------------------------
    0       2     magic  b"DS"
    2       1     protocol version (PROTOCOL_VERSION)
    3       1     MessageKind
    4       4     payload length (big-endian u32)
    8       n     payload (layout per kind, see the kind table below)

Frame kinds and payload layouts (all integers big-endian):

``HELLO``
    The versioned handshake, first frame in each direction on every
    connection: ``session (16 bytes) | party_id u32 | num_parties u32``.
    Version lives in the header; a mismatch on any field is a
    :class:`~repro.exceptions.HandshakeError` at the peer layer.
``ROUND_VALUE``
    One §3.6 round message: ``src u32 | dst u32 | in_slot u16 |
    round u32 | value`` where ``value`` is the typed scalar encoding
    below — exact (floats travel as IEEE-754 doubles, ints exactly), so
    a wire hop can never break bit-identity with the in-memory bus.
``GMW_BATCH`` / ``TRANSFER_AGG`` / ``CRYPTO``
    A crypto payload conveyed for the secure engine (a block's GMW
    OT-extension batch, a §3.5 transfer's aggregates, other protocol
    bytes): ``src u32 | dst u32 | round u32 | pad_len u32`` followed by
    ``pad_len`` padding bytes. The *values* are computed by the protocol
    simulation at every replica; the frame carries the real byte volume
    so wall-clock pays genuine serialization. Batches larger than one
    frame are chunked by the transport.
``CONTROL``
    Connection control: ``code u8`` + UTF-8 detail. ``CTRL_BYE`` is a
    clean goodbye; ``CTRL_ABORT`` announces the sender is unwinding an
    error (detail = the error text), so the survivors fail fast with a
    named cause instead of waiting out a timeout.

Scalar value encoding (``ROUND_VALUE`` payloads): a 1-byte tag then the
value — ``0`` float64, ``1`` int64, ``2`` arbitrary-size int (sign byte +
u32 length + magnitude bytes), ``3`` ``None``, ``4``/``5`` ``True`` /
``False``, ``6`` pickle fallback for anything else. The pickle tag means
a connection is as trusted as the code on both ends — same trust model as
the on-disk scenario cache; the cluster launcher only ever connects
processes it forked itself.

Decoders never over-read and never block: :func:`decode_frame` consumes
exactly one frame from a buffer and reports how many bytes it used, and
raises a :class:`~repro.exceptions.WireFormatError` (or its
:class:`~repro.exceptions.FrameTooLargeError` subclass) for truncated,
garbage, or oversized input.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Tuple

from repro.exceptions import FrameTooLargeError, WireFormatError

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "HEADER_BYTES",
    "CONVEY_HEADER_BYTES",
    "CTRL_BYE",
    "CTRL_ABORT",
    "MessageKind",
    "Frame",
    "encode_frame",
    "decode_frame",
    "convey_kind",
]

MAGIC = b"DS"
PROTOCOL_VERSION = 1
#: Refuse any frame declaring a larger payload than this (configurable on
#: the transport; this is the default cap and the codec's hard ceiling).
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct("!2sBBI")
HEADER_BYTES = _HEADER.size

_HELLO = struct.Struct("!16sII")
_ROUND_VALUE = struct.Struct("!IIHI")
_CONVEY = struct.Struct("!IIII")
#: Fixed (src, dst, round, pad_len) prefix of a convey payload — what the
#: transport subtracts from the frame cap when chunking padded batches.
CONVEY_HEADER_BYTES = _CONVEY.size
_SESSION_BYTES = 16

CTRL_BYE = 1
CTRL_ABORT = 2


class MessageKind(IntEnum):
    """Every frame type a DStress peer connection can carry."""

    HELLO = 1  #: versioned handshake (first frame, both directions)
    ROUND_VALUE = 2  #: one §3.6 round message into a destination in-slot
    GMW_BATCH = 3  #: a block's GMW OT-extension batch (padded bytes)
    TRANSFER_AGG = 4  #: a §3.5 transfer's subshare aggregates (padded bytes)
    CRYPTO = 5  #: other conveyed protocol bytes (padded)
    CONTROL = 6  #: BYE / ABORT connection control


#: The convey kinds — frames whose payload is real padding standing in
#: for protocol bytes computed at every replica.
_CONVEY_KINDS = frozenset(
    {MessageKind.GMW_BATCH, MessageKind.TRANSFER_AGG, MessageKind.CRYPTO}
)


def convey_kind(kind: str) -> MessageKind:
    """Map a :meth:`~repro.core.transport.Transport.convey` kind string
    onto its typed frame kind (unknown strings travel as ``CRYPTO``)."""
    return {
        "ot": MessageKind.GMW_BATCH,
        "transfer": MessageKind.TRANSFER_AGG,
    }.get(kind, MessageKind.CRYPTO)


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame. Which fields are meaningful depends on
    :attr:`kind` (see the module docstring's layout table); unused fields
    keep their defaults so frames compare structurally."""

    kind: MessageKind
    src: int = 0
    dst: int = 0
    in_slot: int = 0
    round_index: int = 0
    value: Any = None
    pad_len: int = 0
    session: bytes = b""
    party_id: int = 0
    num_parties: int = 0
    code: int = 0
    detail: str = ""


# ------------------------------------------------------------ value codec --

_TAG_FLOAT = 0
_TAG_INT64 = 1
_TAG_BIGINT = 2
_TAG_NONE = 3
_TAG_TRUE = 4
_TAG_FALSE = 5
_TAG_PICKLE = 6

_F64 = struct.Struct("!d")
_I64 = struct.Struct("!q")
_U32 = struct.Struct("!I")
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _encode_value(value: Any) -> bytes:
    if value is None:
        return bytes([_TAG_NONE])
    if value is True:
        return bytes([_TAG_TRUE])
    if value is False:
        return bytes([_TAG_FALSE])
    if type(value) is float:
        return bytes([_TAG_FLOAT]) + _F64.pack(value)
    if type(value) is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            return bytes([_TAG_INT64]) + _I64.pack(value)
        sign = 1 if value < 0 else 0
        magnitude = abs(value).to_bytes((abs(value).bit_length() + 7) // 8, "big")
        return bytes([_TAG_BIGINT, sign]) + _U32.pack(len(magnitude)) + magnitude
    return bytes([_TAG_PICKLE]) + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_value(data: bytes, where: str) -> Any:
    if not data:
        raise WireFormatError(f"{where}: empty value encoding")
    tag, body = data[0], data[1:]
    try:
        if tag == _TAG_NONE:
            _expect_len(body, 0, where)
            return None
        if tag == _TAG_TRUE:
            _expect_len(body, 0, where)
            return True
        if tag == _TAG_FALSE:
            _expect_len(body, 0, where)
            return False
        if tag == _TAG_FLOAT:
            _expect_len(body, _F64.size, where)
            return _F64.unpack(body)[0]
        if tag == _TAG_INT64:
            _expect_len(body, _I64.size, where)
            return _I64.unpack(body)[0]
        if tag == _TAG_BIGINT:
            if len(body) < 1 + _U32.size:
                raise WireFormatError(f"{where}: truncated bigint value")
            sign = body[0]
            (length,) = _U32.unpack(body[1 : 1 + _U32.size])
            magnitude = body[1 + _U32.size :]
            _expect_len(magnitude, length, where)
            value = int.from_bytes(magnitude, "big")
            return -value if sign else value
        if tag == _TAG_PICKLE:
            return pickle.loads(body)
    except WireFormatError:
        raise
    except Exception as exc:  # struct/pickle errors -> one named class
        raise WireFormatError(f"{where}: malformed value payload: {exc}") from exc
    raise WireFormatError(f"{where}: unknown value tag {tag}")


def _expect_len(body: bytes, expected: int, where: str) -> None:
    if len(body) != expected:
        raise WireFormatError(
            f"{where}: value payload holds {len(body)} bytes, expected {expected}"
        )


# ------------------------------------------------------------ frame codec --


def encode_frame(frame: Frame, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Serialize one frame (header + payload), enforcing the size cap."""
    kind = MessageKind(frame.kind)
    if kind is MessageKind.HELLO:
        session = frame.session
        if len(session) != _SESSION_BYTES:
            raise WireFormatError(
                f"HELLO session must be {_SESSION_BYTES} bytes, got {len(session)}"
            )
        payload = _HELLO.pack(session, frame.party_id, frame.num_parties)
    elif kind is MessageKind.ROUND_VALUE:
        payload = _ROUND_VALUE.pack(
            frame.src, frame.dst, frame.in_slot, frame.round_index
        ) + _encode_value(frame.value)
    elif kind in _CONVEY_KINDS:
        if frame.pad_len < 0:
            raise WireFormatError("convey padding length cannot be negative")
        payload = (
            _CONVEY.pack(frame.src, frame.dst, frame.round_index, frame.pad_len)
            + b"\x00" * frame.pad_len
        )
    elif kind is MessageKind.CONTROL:
        payload = bytes([frame.code]) + frame.detail.encode("utf-8")
    else:  # pragma: no cover - MessageKind() above rejects unknown kinds
        raise WireFormatError(f"unencodable frame kind {frame.kind!r}")
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"{kind.name} frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame cap"
        )
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, int(kind), len(payload)) + payload


def decode_frame(
    data: bytes,
    offset: int = 0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Tuple[Frame, int]:
    """Decode exactly one frame from ``data[offset:]``.

    Returns ``(frame, next_offset)`` where ``next_offset`` is the first
    byte *after* the decoded frame — the decoder never reads past the
    declared length, so trailing bytes (the next frame) are untouched.
    Truncated buffers, garbage headers, unknown kinds/versions, and
    oversized declarations all raise a named
    :class:`~repro.exceptions.WireFormatError`; nothing hangs or
    silently consumes garbage.
    """
    view = memoryview(data)[offset:]
    if len(view) < HEADER_BYTES:
        raise WireFormatError(
            f"truncated frame: {len(view)} bytes cannot hold the "
            f"{HEADER_BYTES}-byte header"
        )
    magic, version, kind_byte, length = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {bytes(magic)!r}; this is not a DStress frame")
    if version != PROTOCOL_VERSION:
        raise WireFormatError(
            f"unsupported protocol version {version} (this build speaks "
            f"{PROTOCOL_VERSION})"
        )
    try:
        kind = MessageKind(kind_byte)
    except ValueError:
        raise WireFormatError(f"unknown message kind {kind_byte}") from None
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"{kind.name} frame declares a {length}-byte payload, over the "
            f"{max_frame_bytes}-byte frame cap"
        )
    if len(view) < HEADER_BYTES + length:
        raise WireFormatError(
            f"truncated {kind.name} frame: header declares {length} payload "
            f"bytes but only {len(view) - HEADER_BYTES} follow"
        )
    payload = bytes(view[HEADER_BYTES : HEADER_BYTES + length])
    where = f"{kind.name} frame"
    try:
        if kind is MessageKind.HELLO:
            session, party_id, num_parties = _HELLO.unpack(payload)
            frame = Frame(
                kind=kind, session=session, party_id=party_id, num_parties=num_parties
            )
        elif kind is MessageKind.ROUND_VALUE:
            src, dst, in_slot, round_index = _ROUND_VALUE.unpack(
                payload[: _ROUND_VALUE.size]
            )
            value = _decode_value(payload[_ROUND_VALUE.size :], where)
            frame = Frame(
                kind=kind,
                src=src,
                dst=dst,
                in_slot=in_slot,
                round_index=round_index,
                value=value,
            )
        elif kind in _CONVEY_KINDS:
            src, dst, round_index, pad_len = _CONVEY.unpack(payload[: _CONVEY.size])
            if len(payload) - _CONVEY.size != pad_len:
                raise WireFormatError(
                    f"{where}: declares {pad_len} padding bytes but carries "
                    f"{len(payload) - _CONVEY.size}"
                )
            frame = Frame(
                kind=kind, src=src, dst=dst, round_index=round_index, pad_len=pad_len
            )
        elif kind is MessageKind.CONTROL:
            if not payload:
                raise WireFormatError(f"{where}: missing control code")
            frame = Frame(
                kind=kind, code=payload[0], detail=payload[1:].decode("utf-8")
            )
        else:  # pragma: no cover - all kinds handled above
            raise WireFormatError(f"undecodable frame kind {kind!r}")
    except WireFormatError:
        raise
    except Exception as exc:  # struct.error, UnicodeDecodeError, ...
        raise WireFormatError(f"{where}: malformed payload: {exc}") from exc
    return frame, offset + HEADER_BYTES + length
