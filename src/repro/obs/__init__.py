"""``repro.obs`` — run-scoped telemetry: tracing spans, metrics, clock,
trace merge, and versioned export.

Everything here is deterministic-by-construction: telemetry reads only
the injectable :mod:`repro.obs.clock` and never the seeded RNG, so a
traced run's released outputs are bit-identical to an untraced run (the
parity matrix asserts this). The default recorder is a no-op; enable
tracing by scoping a :class:`TraceRecorder`::

    from repro.obs import TraceRecorder, recording

    rec = TraceRecorder()
    with recording(rec):
        result = test.engine("async").run(iterations=4)
    doc = result.export(recorder=rec)   # dstress.obs.run v1
"""

from repro.obs.clock import Clock, ManualClock, SYSTEM_CLOCK, now, wall_time
from repro.obs.metrics import (
    MetricsRegistry,
    absorb_cache,
    absorb_gmw,
    absorb_phases,
    absorb_result,
    absorb_traffic,
    record_run,
)
from repro.obs.trace import (
    NullRecorder,
    SpanRecord,
    TraceRecorder,
    current_recorder,
    recording,
    set_recorder,
    timed_phase,
)
from repro.obs.export import (
    BATCH_SCHEMA,
    RUN_SCHEMA,
    SCHEMA_VERSION,
    TIMELINE_SCHEMA,
    export_batch,
    export_ledger,
    export_run,
    validate_export,
)
from repro.obs.merge import (
    load_trace_shard,
    merge_cluster_trace,
    merge_shards,
    write_trace_shard,
)

__all__ = [
    "Clock",
    "ManualClock",
    "SYSTEM_CLOCK",
    "now",
    "wall_time",
    "MetricsRegistry",
    "absorb_cache",
    "absorb_gmw",
    "absorb_phases",
    "absorb_result",
    "absorb_traffic",
    "record_run",
    "NullRecorder",
    "SpanRecord",
    "TraceRecorder",
    "current_recorder",
    "recording",
    "set_recorder",
    "timed_phase",
    "BATCH_SCHEMA",
    "RUN_SCHEMA",
    "SCHEMA_VERSION",
    "TIMELINE_SCHEMA",
    "export_batch",
    "export_ledger",
    "export_run",
    "validate_export",
    "load_trace_shard",
    "merge_cluster_trace",
    "merge_shards",
    "write_trace_shard",
]
