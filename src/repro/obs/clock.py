"""The single place in ``src/repro`` allowed to read the system clock.

Every engine, batch worker, and cache tier times itself through the
module-level :func:`now` / :func:`wall_time` helpers (or through an
explicitly injected :class:`Clock`), never through ``time.perf_counter``
directly — a lint test enforces this. Centralising the clock buys two
things:

* **Injectable time.** Tests swap in a :class:`ManualClock` and get
  bit-stable span durations and phase timings, which is what lets the
  trace-determinism suite assert that telemetry output is reproducible.
* **Trace safety.** Reading a clock can never perturb the deterministic
  RNG or the protocol transcript, because the clock is the only ambient
  state telemetry touches and it is explicitly outside the seeded world.
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic + wall clock pair; the system-backed default."""

    def now(self) -> float:
        """Monotonic seconds for measuring durations."""
        return time.perf_counter()

    def wall(self) -> float:
        """Wall-clock epoch seconds for timestamps (cache metadata)."""
        return time.time()


class ManualClock(Clock):
    """A deterministic clock for tests: every :meth:`now` read returns the
    current value and then advances by ``tick``, so span durations are
    exact and reproducible regardless of machine speed."""

    def __init__(self, start: float = 0.0, tick: float = 1.0) -> None:
        self._now = float(start)
        self.tick = float(tick)

    def now(self) -> float:
        value = self._now
        self._now += self.tick
        return value

    def wall(self) -> float:
        return self.now()

    def advance(self, seconds: float) -> None:
        self._now += float(seconds)


SYSTEM_CLOCK = Clock()


def now() -> float:
    """Monotonic seconds from the ambient system clock."""
    return SYSTEM_CLOCK.now()


def wall_time() -> float:
    """Wall-clock epoch seconds from the ambient system clock."""
    return SYSTEM_CLOCK.wall()
