"""Versioned, JSON-safe export of runs, batches, ledgers, and traces.

Three document schemas, each carrying a ``schema`` name and integer
``version``:

* ``dstress.obs.run`` — one :class:`RunResult`, optionally with the
  trace recorder that watched it;
* ``dstress.obs.batch`` — one :class:`BatchResult`, optionally with the
  accountant's audit ledger;
* ``dstress.obs.timeline`` — a merged multi-party cluster trace (built
  by :mod:`repro.obs.merge`).

The schemas are **append-only**: new optional fields may be added in
later versions, but existing fields are never renamed, retyped, or
removed — dashboards built against version 1 keep working forever.
Validation is hand-rolled (:func:`validate_export`) because the
reproduction is stdlib-only by design.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Optional

RUN_SCHEMA = "dstress.obs.run"
BATCH_SCHEMA = "dstress.obs.batch"
TIMELINE_SCHEMA = "dstress.obs.timeline"
SCHEMA_VERSION = 1

__all__ = [
    "RUN_SCHEMA",
    "BATCH_SCHEMA",
    "TIMELINE_SCHEMA",
    "SCHEMA_VERSION",
    "export_run",
    "export_batch",
    "export_ledger",
    "export_recorder",
    "export_traffic",
    "validate_export",
]


def export_traffic(traffic: Any) -> Optional[Dict[str, Any]]:
    """TrafficMeter -> JSON-safe dict; links as ``[src, dst, bytes]``
    triples (JSON objects can't key on tuples) sorted by (src, dst)."""
    if traffic is None:
        return None
    nodes = {}
    for node_id in traffic.node_ids:
        stats = traffic.node(node_id)
        nodes[str(node_id)] = {
            "bytes_sent": stats.bytes_sent,
            "bytes_received": stats.bytes_received,
            "exponentiations": stats.exponentiations,
            "ot_transfers": stats.ot_transfers,
            "gmw_evaluations": stats.gmw_evaluations,
        }
    links = [
        [src, dst, nbytes]
        for (src, dst), nbytes in sorted(traffic.links().items())
    ]
    return {
        "nodes": nodes,
        "links": links,
        "total_bytes_sent": traffic.total_bytes_sent,
    }


def export_recorder(recorder: Any) -> Optional[Dict[str, Any]]:
    """TraceRecorder -> JSON-safe spans + metrics dict."""
    if recorder is None or not getattr(recorder, "enabled", False):
        return None
    return {
        "party": recorder.party,
        "spans": [span.to_dict() for span in recorder.spans],
        "metrics": recorder.metrics.as_dict(),
    }


def export_run(result: Any, recorder: Any = None) -> Dict[str, Any]:
    """One RunResult -> a ``dstress.obs.run`` document."""
    phases = getattr(result, "phases", None)
    doc = {
        "schema": RUN_SCHEMA,
        "version": SCHEMA_VERSION,
        "engine": result.engine,
        "program": result.program,
        "aggregate": result.aggregate,
        "pre_noise_aggregate": result.pre_noise_aggregate,
        "noise_raw": result.noise_raw,
        "epsilon": result.epsilon,
        "iterations": result.iterations,
        "wall_seconds": result.wall_seconds,
        "trajectory": list(result.trajectory),
        "extras": dict(result.extras or {}),
        "phases": dict(phases.seconds) if phases is not None else None,
        "traffic": export_traffic(getattr(result, "traffic", None)),
        "trace": export_recorder(recorder),
    }
    releases = getattr(result, "releases", None)
    if releases:
        # append-only schema extension: per-window release records for
        # runs driven through the lifecycle's release seam
        doc["releases"] = [asdict(record) for record in releases]
    return doc


def export_ledger(accountant: Any) -> Optional[Dict[str, Any]]:
    """PrivacyAccountant -> its audit ledger plus a reconciliation."""
    if accountant is None:
        return None
    reconciliation = accountant.reconcile()
    return {
        "epsilon_max": accountant.epsilon_max,
        "period": accountant.period,
        "spent": accountant.spent,
        "entries": [entry.to_dict() for entry in accountant.ledger],
        "reconciliation": {
            "ok": reconciliation.ok,
            "ledger_spent": reconciliation.ledger_spent,
            "accounted_spent": reconciliation.accounted_spent,
            "outstanding": reconciliation.outstanding,
            "issues": list(reconciliation.issues),
        },
    }


def export_batch(batch: Any, accountant: Any = None) -> Dict[str, Any]:
    """One BatchResult -> a ``dstress.obs.batch`` document."""
    outcomes = []
    for outcome in batch.outcomes:
        entry: Dict[str, Any] = {
            "name": outcome.name,
            "ok": outcome.ok,
            "error": outcome.error,
            "seconds": outcome.seconds,
            "cached": outcome.cached,
        }
        if outcome.result is not None:
            entry["engine"] = outcome.result.engine
            entry["aggregate"] = outcome.result.aggregate
            entry["epsilon"] = outcome.result.epsilon
        outcomes.append(entry)
    return {
        "schema": BATCH_SCHEMA,
        "version": SCHEMA_VERSION,
        "wall_seconds": batch.wall_seconds,
        "workers": batch.workers,
        "epsilon_charged": batch.epsilon_charged,
        "cache_hits": batch.cache_hits,
        "cache_misses": batch.cache_misses,
        "outcomes": outcomes,
        "ledger": export_ledger(accountant),
    }


def _issue(issues: List[str], condition: bool, message: str) -> None:
    if not condition:
        issues.append(message)


def _check_spans(spans: Any, where: str, issues: List[str]) -> None:
    if not isinstance(spans, list):
        issues.append(f"{where}: spans must be a list")
        return
    ids = set()
    for i, span in enumerate(spans):
        if not isinstance(span, dict):
            issues.append(f"{where}: span[{i}] is not an object")
            continue
        for key in ("span_id", "name", "start"):
            if key not in span:
                issues.append(f"{where}: span[{i}] missing {key!r}")
        if "span_id" in span:
            ids.add(span["span_id"])
        end = span.get("end")
        if end is not None and "start" in span and end < span["start"]:
            issues.append(f"{where}: span[{i}] ends before it starts")
    for i, span in enumerate(spans):
        parent = isinstance(span, dict) and span.get("parent_id")
        if parent and parent not in ids:
            issues.append(f"{where}: span[{i}] has unknown parent {parent}")


def _check_traffic(traffic: Any, where: str, issues: List[str]) -> None:
    if traffic is None:
        return
    if not isinstance(traffic, dict):
        issues.append(f"{where}: traffic must be an object or null")
        return
    links = traffic.get("links")
    if not isinstance(links, list):
        issues.append(f"{where}: traffic.links must be a list")
        return
    for i, link in enumerate(links):
        if not (isinstance(link, list) and len(link) == 3):
            issues.append(f"{where}: traffic.links[{i}] must be [src, dst, bytes]")


def validate_export(payload: Any) -> List[str]:
    """Hand-rolled schema check; returns a list of problems (empty = ok)."""
    issues: List[str] = []
    if not isinstance(payload, dict):
        return ["document must be a JSON object"]
    schema = payload.get("schema")
    version = payload.get("version")
    if schema not in (RUN_SCHEMA, BATCH_SCHEMA, TIMELINE_SCHEMA):
        return [f"unknown schema {schema!r}"]
    if not isinstance(version, int) or version < 1:
        issues.append(f"version must be a positive integer, got {version!r}")

    if schema == RUN_SCHEMA:
        for key in ("engine", "program", "aggregate", "iterations", "wall_seconds",
                    "trajectory", "extras"):
            _issue(issues, key in payload, f"run document missing {key!r}")
        if not isinstance(payload.get("trajectory", []), list):
            issues.append("trajectory must be a list")
        _check_traffic(payload.get("traffic"), "run", issues)
        trace = payload.get("trace")
        if trace is not None:
            if not isinstance(trace, dict):
                issues.append("trace must be an object or null")
            else:
                _check_spans(trace.get("spans", []), "trace", issues)
    elif schema == BATCH_SCHEMA:
        for key in ("wall_seconds", "workers", "epsilon_charged", "outcomes"):
            _issue(issues, key in payload, f"batch document missing {key!r}")
        outcomes = payload.get("outcomes", [])
        if not isinstance(outcomes, list):
            issues.append("outcomes must be a list")
            outcomes = []
        for i, outcome in enumerate(outcomes):
            if not isinstance(outcome, dict) or "name" not in outcome:
                issues.append(f"outcomes[{i}] must be an object with a name")
        ledger = payload.get("ledger")
        if ledger is not None:
            if not isinstance(ledger, dict) or "entries" not in ledger:
                issues.append("ledger must be an object with entries")
            else:
                reconciliation = ledger.get("reconciliation", {})
                if not reconciliation.get("ok", False):
                    problems = reconciliation.get("issues", ["no reconciliation"])
                    issues.extend(f"ledger: {p}" for p in problems)
    elif schema == TIMELINE_SCHEMA:
        for key in ("parties", "entries"):
            _issue(issues, key in payload, f"timeline document missing {key!r}")
        entries = payload.get("entries", [])
        if not isinstance(entries, list):
            issues.append("entries must be a list")
            entries = []
        previous = None
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                issues.append(f"entries[{i}] must be an object")
                continue
            for key in ("round", "party", "start", "end"):
                if key not in entry:
                    issues.append(f"entries[{i}] missing {key!r}")
            if previous is not None and "round" in entry and "party" in entry:
                if (entry["round"], entry["party"]) < previous:
                    issues.append(
                        f"entries[{i}] breaks (round, party) ordering"
                    )
            if "round" in entry and "party" in entry:
                previous = (entry["round"], entry["party"])
    return issues
