"""Cross-process trace collection: JSONL shards and the merged timeline.

Each party process in :func:`repro.net.cluster.run_scenario_cluster`
records its own :class:`~repro.obs.trace.TraceRecorder` and — after its
engine run completes, so no trace I/O interleaves with the protocol —
writes one JSONL shard (``party-<id>.jsonl``). The harness then merges
the shards into a single ``dstress.obs.timeline`` document.

Clocks are per-process monotonic counters with unrelated origins, so the
merge never compares raw timestamps *across* parties. The causal order
it can assert is exactly what the round-synchronous protocol guarantees:
spans are totally ordered **within** a party (one process, one monotonic
clock) and round-**monotonic** across parties (round r+1 cannot start
anywhere before round r's messages exist somewhere). The timeline
therefore sorts by ``(round, party)`` — the key the property tests pin.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.export import SCHEMA_VERSION, TIMELINE_SCHEMA, export_traffic

__all__ = [
    "write_trace_shard",
    "load_trace_shard",
    "merge_shards",
    "merge_cluster_trace",
]


def write_trace_shard(
    path,
    recorder: Any,
    traffic: Any = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Serialize one party's recorder (and optionally its run's traffic
    meter) as a JSONL shard. One JSON object per line; the ``type`` field
    discriminates."""
    path = Path(path)
    lines: List[Dict[str, Any]] = [
        {"type": "meta", "party": recorder.party, **(meta or {})}
    ]
    lines.extend({"type": "span", **span.to_dict()} for span in recorder.spans)
    lines.append({"type": "metrics", "metrics": recorder.metrics.as_dict()})
    exported = export_traffic(traffic)
    if exported is not None:
        lines.append({"type": "traffic", "traffic": exported})
    with path.open("w") as handle:
        for line in lines:
            handle.write(json.dumps(line) + "\n")
    return path


def load_trace_shard(path) -> Dict[str, Any]:
    """Read one JSONL shard back into ``{party, meta, spans, metrics,
    traffic}``."""
    shard: Dict[str, Any] = {
        "party": None,
        "meta": {},
        "spans": [],
        "metrics": None,
        "traffic": None,
    }
    with Path(path).open() as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            record = json.loads(raw)
            kind = record.pop("type", None)
            if kind == "meta":
                shard["party"] = record.pop("party", None)
                shard["meta"] = record
            elif kind == "span":
                shard["spans"].append(record)
            elif kind == "metrics":
                shard["metrics"] = record.get("metrics")
            elif kind == "traffic":
                shard["traffic"] = record.get("traffic")
    return shard


def _round_of(span: Dict[str, Any]) -> Optional[int]:
    value = (span.get("attrs") or {}).get("round")
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        return None


def merge_shards(shards: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge loaded shards into one ``dstress.obs.timeline`` document.

    Timeline entries aggregate each party's spans per round: entry
    ``(round, party)`` covers every span carrying that ``round`` attr
    (min start, max end, span count). Entries are sorted by
    ``(round, party)`` — the causal order the protocol guarantees.
    """
    parties: List[int] = []
    entries: Dict[Any, Dict[str, Any]] = {}
    traffic: Dict[str, Any] = {}
    metrics: Dict[str, Any] = {}
    for shard in shards:
        party = shard.get("party")
        if party is None:
            continue
        parties.append(party)
        if shard.get("traffic") is not None:
            traffic[str(party)] = shard["traffic"]
        if shard.get("metrics") is not None:
            metrics[str(party)] = shard["metrics"]
        for span in shard.get("spans", []):
            round_index = _round_of(span)
            if round_index is None:
                continue
            key = (round_index, party)
            end = span.get("end", span["start"])
            if end is None:
                end = span["start"]
            entry = entries.get(key)
            if entry is None:
                entries[key] = {
                    "round": round_index,
                    "party": party,
                    "start": span["start"],
                    "end": end,
                    "spans": 1,
                }
            else:
                entry["start"] = min(entry["start"], span["start"])
                entry["end"] = max(entry["end"], end)
                entry["spans"] += 1
    return {
        "schema": TIMELINE_SCHEMA,
        "version": SCHEMA_VERSION,
        "parties": sorted(parties),
        "entries": [entries[key] for key in sorted(entries)],
        "traffic": traffic,
        "metrics": metrics,
    }


def merge_cluster_trace(trace_dir) -> Dict[str, Any]:
    """Merge every ``party-*.jsonl`` shard under ``trace_dir`` and write
    the result next to them as ``timeline.json``."""
    trace_dir = Path(trace_dir)
    shards = [
        load_trace_shard(path) for path in sorted(trace_dir.glob("party-*.jsonl"))
    ]
    timeline = merge_shards(shards)
    (trace_dir / "timeline.json").write_text(json.dumps(timeline, indent=2) + "\n")
    return timeline
