"""A namespaced metrics registry plus absorbers for the repo's existing
telemetry surfaces.

The registry is deliberately small: counters (monotonic sums), gauges
(last-write-wins), and histograms (count/sum/min/max). Keys are
``name{label=value,...}`` with labels sorted, so two code paths emitting
the same logical series always collide onto one entry.

The ``absorb_*`` helpers translate the pre-existing telemetry objects —
:class:`PhaseTimer`, :class:`TrafficMeter`, GMW ``pair_bits``, cache
``stats()`` — into registry series under the stable names documented in
README.md, which is what makes ``repro.obs`` the single query surface
for "what did this run spend and where did the time go".
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple


def _key(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by name + sorted labels."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        hist = self.histograms.get(key)
        value = float(value)
        if hist is None:
            self.histograms[key] = {"count": 1.0, "sum": value, "min": value, "max": value}
            return
        hist["count"] += 1.0
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def merge(self, other: "MetricsRegistry") -> None:
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + value
        self.gauges.update(other.gauges)
        for key, hist in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                self.histograms[key] = dict(hist)
                continue
            mine["count"] += hist["count"]
            mine["sum"] += hist["sum"]
            mine["min"] = min(mine["min"], hist["min"])
            mine["max"] = max(mine["max"], hist["max"])


def absorb_phases(registry: MetricsRegistry, phases: Any) -> None:
    """PhaseTimer -> ``phase.seconds{phase=...}`` gauges."""
    if phases is None:
        return
    for name, seconds in phases.seconds.items():
        registry.set_gauge("phase.seconds", seconds, phase=name)


def absorb_traffic(registry: MetricsRegistry, traffic: Any) -> None:
    """TrafficMeter -> per-node byte gauges + per-directed-link gauges."""
    if traffic is None:
        return
    for node_id in traffic.node_ids:
        stats = traffic.node(node_id)
        registry.set_gauge("traffic.node.bytes_sent", stats.bytes_sent, node=node_id)
        registry.set_gauge("traffic.node.bytes_received", stats.bytes_received, node=node_id)
    for (src, dst), nbytes in traffic.links().items():
        registry.set_gauge("traffic.link.bytes", nbytes, src=src, dst=dst)


def absorb_gmw(registry: MetricsRegistry, pair_bits: Mapping[Tuple[int, int], Any]) -> None:
    """GMW per-pair bit counts -> ``gmw.pair_bits{src=,dst=}`` counters."""
    for (src, dst), bits in pair_bits.items():
        registry.inc("gmw.pair_bits", float(bits), src=src, dst=dst)


def absorb_cache(registry: MetricsRegistry, cache: Any) -> None:
    """Scenario-cache counters -> ``cache.*`` gauges (tiered caches expose
    eviction/rejection counts; the in-memory tier has only hits/misses)."""
    if cache is None:
        return
    registry.set_gauge("cache.hits", float(getattr(cache, "hits", 0)))
    registry.set_gauge("cache.misses", float(getattr(cache, "misses", 0)))
    for attr in ("evictions", "evicted_bytes", "rejections"):
        value = getattr(cache, attr, None)
        if value is not None:
            registry.set_gauge(f"cache.{attr}", float(value))


def absorb_result(registry: MetricsRegistry, result: Any) -> None:
    """Absorb a finished RunResult's telemetry into the registry."""
    absorb_phases(registry, getattr(result, "phases", None))
    absorb_traffic(registry, getattr(result, "traffic", None))
    registry.set_gauge("run.wall_seconds", result.wall_seconds, engine=result.engine)
    registry.set_gauge("run.iterations", float(result.iterations), engine=result.engine)
    for name, value in (result.extras or {}).items():
        try:
            registry.set_gauge(f"run.extras.{name}", float(value), engine=result.engine)
        except (TypeError, ValueError):
            continue


def record_run(result: Any) -> None:
    """Absorb a finished run into the ambient recorder, if one is active."""
    from repro.obs.trace import current_recorder

    recorder = current_recorder()
    if recorder.enabled:
        absorb_result(recorder.metrics, result)
