"""Render exported telemetry documents: ``python -m repro.obs.report``.

Accepts any document produced by :mod:`repro.obs.export` or
:mod:`repro.obs.merge` — a run export, a batch export, or a merged
cluster timeline — and renders the round timeline, per-link traffic
table, phase breakdown, and ledger summary as plain text.

``--check`` validates instead of rendering: the document must pass
:func:`~repro.obs.export.validate_export` (which, for batch documents
with an embedded ledger, includes the ledger reconciliation invariant).
Exit status 1 on any failure — this is the CI smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

from repro.obs.export import (
    BATCH_SCHEMA,
    RUN_SCHEMA,
    TIMELINE_SCHEMA,
    validate_export,
)

__all__ = ["main", "render"]


def _table(headers: List[str], rows: List[List[Any]]) -> List[str]:
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return lines


def _render_traffic(traffic: Dict[str, Any], out: List[str]) -> None:
    links = traffic.get("links") or []
    out.append("")
    out.append(f"Per-link traffic ({len(links)} directed links, "
               f"{traffic.get('total_bytes_sent', 0.0):.0f} bytes total):")
    rows = [[src, dst, f"{nbytes:.0f}"] for src, dst, nbytes in links]
    out.extend(_table(["src", "dst", "bytes"], rows))


def _render_phases(phases: Dict[str, float], out: List[str]) -> None:
    out.append("")
    out.append("Phase breakdown:")
    total = sum(phases.values()) or 1.0
    rows = [
        [name, f"{seconds:.4f}", f"{seconds / total:.1%}"]
        for name, seconds in sorted(phases.items(), key=lambda kv: -kv[1])
    ]
    out.extend(_table(["phase", "seconds", "share"], rows))


def _render_round_timeline(spans: List[Dict[str, Any]], out: List[str]) -> None:
    rounds: Dict[int, Dict[str, Any]] = {}
    for span in spans:
        attrs = span.get("attrs") or {}
        if "round" not in attrs:
            continue
        index = int(attrs["round"])
        end = span.get("end") or span["start"]
        slot = rounds.setdefault(
            index, {"start": span["start"], "end": end, "spans": 0}
        )
        slot["start"] = min(slot["start"], span["start"])
        slot["end"] = max(slot["end"], end)
        slot["spans"] += 1
    if not rounds:
        return
    out.append("")
    out.append("Round timeline:")
    rows = [
        [index, f"{slot['start']:.4f}", f"{slot['end']:.4f}",
         f"{slot['end'] - slot['start']:.4f}", slot["spans"]]
        for index, slot in sorted(rounds.items())
    ]
    out.extend(_table(["round", "start", "end", "duration", "spans"], rows))


def _render_ledger(ledger: Dict[str, Any], out: List[str]) -> None:
    out.append("")
    reconciliation = ledger.get("reconciliation", {})
    verdict = "reconciles" if reconciliation.get("ok") else "DOES NOT RECONCILE"
    out.append(
        f"Budget ledger: {len(ledger.get('entries', []))} entries, "
        f"spent {ledger.get('spent', 0.0):.4g} of "
        f"{ledger.get('epsilon_max', 0.0):.4g} "
        f"(period {ledger.get('period', 0)}) — {verdict}"
    )
    rows = [
        [e["seq"], e["kind"], e["label"], f"{e['epsilon']:.4g}", e["period"],
         (e.get("fingerprint") or "")[:12]]
        for e in ledger.get("entries", [])
    ]
    if rows:
        out.extend(_table(["seq", "kind", "label", "epsilon", "period", "fingerprint"], rows))
    for issue in reconciliation.get("issues", []):
        out.append(f"  issue: {issue}")


def render(payload: Dict[str, Any]) -> str:
    out: List[str] = []
    schema = payload.get("schema")
    if schema == RUN_SCHEMA:
        out.append(
            f"Run export: {payload.get('program')} via {payload.get('engine')} — "
            f"aggregate={payload.get('aggregate'):.4f}, "
            f"iterations={payload.get('iterations')}, "
            f"wall={payload.get('wall_seconds'):.2f}s"
        )
        if payload.get("epsilon") is not None:
            out.append(f"Released under epsilon={payload['epsilon']:g}")
        trace = payload.get("trace")
        if trace:
            _render_round_timeline(trace.get("spans", []), out)
        if payload.get("phases"):
            _render_phases(payload["phases"], out)
        if payload.get("traffic"):
            _render_traffic(payload["traffic"], out)
    elif schema == BATCH_SCHEMA:
        outcomes = payload.get("outcomes", [])
        ok = sum(1 for o in outcomes if o.get("ok"))
        out.append(
            f"Batch export: {ok}/{len(outcomes)} scenarios ok, "
            f"workers={payload.get('workers')}, "
            f"epsilon_charged={payload.get('epsilon_charged'):.4g}, "
            f"cache={payload.get('cache_hits', 0)}h/{payload.get('cache_misses', 0)}m"
        )
        rows = [
            [o["name"], "ok" if o.get("ok") else "FAILED",
             "cached" if o.get("cached") else "ran", f"{o.get('seconds', 0.0):.3f}s"]
            for o in outcomes
        ]
        out.extend(_table(["scenario", "status", "source", "seconds"], rows))
        if payload.get("ledger"):
            _render_ledger(payload["ledger"], out)
    elif schema == TIMELINE_SCHEMA:
        out.append(
            f"Cluster timeline: parties {payload.get('parties')} — "
            f"{len(payload.get('entries', []))} (round, party) entries"
        )
        rows = [
            [e["round"], e["party"], f"{e['start']:.4f}", f"{e['end']:.4f}", e["spans"]]
            for e in payload.get("entries", [])
        ]
        out.extend(_table(["round", "party", "start", "end", "spans"], rows))
        for party, traffic in sorted(payload.get("traffic", {}).items()):
            out.append("")
            out.append(f"Party {party}:")
            _render_traffic(traffic, out)
    else:
        out.append(f"unknown schema {schema!r}")
    return "\n".join(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__
    )
    parser.add_argument("files", nargs="+", type=Path,
                        help="exported JSON document(s) to render")
    parser.add_argument("--check", action="store_true",
                        help="validate the schema + ledger reconciliation "
                             "instead of rendering; exit 1 on any failure")
    args = parser.parse_args(argv)

    failures = 0
    for path in args.files:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            failures += 1
            continue
        if args.check:
            issues = validate_export(payload)
            if issues:
                failures += 1
                print(f"{path}: INVALID")
                for issue in issues:
                    print(f"  - {issue}")
            else:
                print(f"{path}: ok ({payload.get('schema')} v{payload.get('version')})")
        else:
            try:
                print(render(payload))
                print()
            except BrokenPipeError:
                # downstream pager/head closed the pipe; that's its call
                return 1 if failures else 0
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
