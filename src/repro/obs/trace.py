"""Structured tracing spans with an ambient, swappable recorder.

The default recorder is a shared :class:`NullRecorder` whose
``span``/``event`` calls are no-ops, so instrumented hot paths cost one
attribute read and a truth test when tracing is off. Enabling tracing is
scoped::

    rec = TraceRecorder()
    with recording(rec):
        test.engine("async").run(iterations=4)
    rec.spans  # -> [SpanRecord, ...]

Design constraints, in order of importance:

* **Determinism.** Spans read only the injected :class:`Clock`; they
  never touch the seeded :class:`DeterministicRNG` or reorder protocol
  work, so a traced run's released outputs are bit-identical to an
  untraced run (asserted across the engine parity matrix).
* **Ambient recorder is a module global, not a ContextVar.** The async
  engines fall back to running their event loop on a worker thread when
  a loop is already running (``run_coroutine``), and forked cluster
  children inherit module state; a ContextVar would silently drop the
  recorder in both cases.
* **Span parentage *is* a ContextVar.** ``asyncio`` tasks copy their
  context at creation, so per-task span nesting comes out right even
  with dozens of interleaved vertex pipelines.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.clock import SYSTEM_CLOCK, Clock
from repro.obs.metrics import MetricsRegistry

_ACTIVE_SPAN: ContextVar[Optional[int]] = ContextVar("repro_obs_active_span", default=None)


@dataclass
class SpanRecord:
    """One closed (or still-open) span: a named, timed unit of work."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[Tuple[float, str, Dict[str, Any]]] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "events": [
                {"time": ts, "name": name, "attrs": dict(attrs)}
                for ts, name, attrs in self.events
            ],
        }


class NullRecorder:
    """The default, disabled recorder: every operation is a no-op."""

    enabled = False
    party: Optional[int] = None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        yield None

    def event(self, name: str, **attrs: Any) -> None:
        pass


class TraceRecorder:
    """Collects spans and metrics for one run (or one party process)."""

    enabled = True

    def __init__(self, clock: Optional[Clock] = None, party: Optional[int] = None) -> None:
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.party = party
        self.spans: List[SpanRecord] = []
        self.metrics = MetricsRegistry()
        self._ids = itertools.count(1)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=_ACTIVE_SPAN.get(),
            name=name,
            start=self.clock.now(),
            attrs=dict(attrs),
        )
        self.spans.append(record)
        token = _ACTIVE_SPAN.set(record.span_id)
        try:
            yield record
        finally:
            _ACTIVE_SPAN.reset(token)
            record.end = self.clock.now()

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point-in-time event to the active span (or record a
        zero-length root event when no span is open)."""
        stamp = self.clock.now()
        active = _ACTIVE_SPAN.get()
        if active is not None:
            for record in reversed(self.spans):
                if record.span_id == active:
                    record.events.append((stamp, name, dict(attrs)))
                    return
        self.spans.append(
            SpanRecord(
                span_id=next(self._ids),
                parent_id=None,
                name=name,
                start=stamp,
                end=stamp,
                attrs=dict(attrs),
            )
        )


_NULL = NullRecorder()
_RECORDER: Any = _NULL


def current_recorder() -> Any:
    """The ambient recorder: a :class:`TraceRecorder` inside a
    :func:`recording` block, the shared no-op otherwise."""
    return _RECORDER


def set_recorder(recorder: Optional[Any]) -> Any:
    """Install ``recorder`` as the ambient recorder (``None`` restores the
    no-op). Returns the previous recorder so callers can restore it."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder if recorder is not None else _NULL
    return previous


@contextmanager
def recording(recorder: Any) -> Iterator[Any]:
    """Scope ``recorder`` as the ambient recorder for a ``with`` block."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


@contextmanager
def timed_phase(
    phases: Any, name: str, span: bool = True, **attrs: Any
) -> Iterator[None]:
    """Time a block into ``phases`` (a :class:`PhaseTimer` or ``None``)
    and, when tracing is on, record it as a ``phase`` span too.

    This is the one shared code path that fills ``RunResult.phases`` for
    every engine. With ``phases is None`` and tracing off it degenerates
    to a bare ``yield`` — zero clock reads on the disabled path.
    ``span=False`` keeps the PhaseTimer accounting but suppresses the
    span — the lifecycle's ``stage:*`` timings use it because a stage
    envelope span would re-parent the per-round spans engines emit
    inside it, and the round→run nesting is part of the traced contract.
    """
    recorder = _RECORDER
    if phases is None and not recorder.enabled:
        yield
        return
    if span and recorder.enabled:
        record = None
        try:
            with recorder.span("phase", phase=name, **attrs) as record:
                yield
        finally:
            # span end is stamped on context exit; reuse it so the
            # PhaseTimer and the span agree to the same clock reads
            if phases is not None and record is not None and record.end is not None:
                phases.add(name, max(0.0, record.end - record.start))
        return
    if phases is None:
        yield
        return
    started = SYSTEM_CLOCK.now()
    try:
        yield
    finally:
        phases.add(name, SYSTEM_CLOCK.now() - started)
