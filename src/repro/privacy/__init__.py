"""Differential privacy: mechanisms, budgets, dollar-DP, edge privacy."""

from repro.privacy.admission import (
    Precharge,
    precharge,
    release_epsilon,
    release_schedule,
)
from repro.privacy.budget import DEFAULT_EPSILON_MAX, BudgetCharge, PrivacyAccountant
from repro.privacy.dollar import DEFAULT_GRANULARITY_USD, DollarPrivacySpec
from repro.privacy.edge_privacy import (
    EdgePrivacyAnalysis,
    alpha_max_for_failure_budget,
    dlog_table_entries,
    failure_probability,
    mechanism_alpha,
    per_iteration_epsilon,
    total_transfers,
    transfer_sensitivity,
)
from repro.privacy.mechanisms import (
    LaplaceMechanism,
    TwoSidedGeometricMechanism,
    geometric_sample,
    laplace_mechanism,
    laplace_sample,
    laplace_tail_probability,
    two_sided_geometric_mechanism,
    two_sided_geometric_sample,
)
from repro.privacy.utility import (
    UtilityAnalysis,
    epsilon_for_precision,
    measure_noise_impact,
    runs_per_year,
)

__all__ = [
    "BudgetCharge",
    "DEFAULT_EPSILON_MAX",
    "DEFAULT_GRANULARITY_USD",
    "DollarPrivacySpec",
    "EdgePrivacyAnalysis",
    "LaplaceMechanism",
    "Precharge",
    "PrivacyAccountant",
    "TwoSidedGeometricMechanism",
    "UtilityAnalysis",
    "alpha_max_for_failure_budget",
    "dlog_table_entries",
    "epsilon_for_precision",
    "failure_probability",
    "geometric_sample",
    "laplace_mechanism",
    "laplace_sample",
    "laplace_tail_probability",
    "measure_noise_impact",
    "mechanism_alpha",
    "per_iteration_epsilon",
    "precharge",
    "release_epsilon",
    "release_schedule",
    "runs_per_year",
    "total_transfers",
    "transfer_sensitivity",
    "two_sided_geometric_mechanism",
    "two_sided_geometric_sample",
]
