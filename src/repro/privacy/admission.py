"""Shared pre-charge admission control for releasing runs.

Three layers used to hand-roll the same notarize -> charge -> refund
dance against the :class:`~repro.privacy.budget.PrivacyAccountant`: the
engine lifecycle, ``run_batch`` (both its streaming and barriered
paths), and ``StressTestService._submit``. Each copy risked drifting on
the rules — what a releasing run costs, how a multi-window schedule is
itemized in the audit ledger, and which charges are refunded when a run
dies halfway. This module is now the single authority:

* :func:`release_schedule` — the itemized ``(label, epsilon)`` entries a
  run will charge: one entry for a one-shot release, one per window for
  continual release (suffixed ``-w1``, ``-w2``, ... so ledger replay
  shows the window structure).
* :func:`release_epsilon` — the total, used by admission gates and the
  scenario notary to price a run before anything executes.
* :func:`precharge` — charge the whole schedule atomically (all entries
  or none), returning a :class:`Precharge` whose ``refund()`` gives back
  exactly the entries whose windows never released.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.exceptions import PrivacyBudgetExceeded
from repro.privacy.budget import BudgetCharge, PrivacyAccountant

__all__ = ["Precharge", "precharge", "release_schedule", "release_epsilon"]


def release_schedule(
    engine: Any, config: Any, label: str
) -> List[Tuple[str, float]]:
    """The itemized charges executing ``engine`` once will incur.

    Non-releasing runs cost nothing. A single release charges under
    ``label`` itself; a windowed schedule suffixes the window ordinal so
    the audit ledger's replay exposes the release structure.
    """
    if not getattr(engine, "releases_output", False):
        return []
    policy = getattr(engine, "release_policy", None)
    if policy is None:
        # engines outside the lifecycle (custom test doubles) release
        # once at the config's full output epsilon
        return [(label, config.output_epsilon)]
    epsilons = policy.epsilon_schedule(config)
    if len(epsilons) == 1:
        return [(label, epsilons[0])]
    return [(f"{label}-w{i + 1}", eps) for i, eps in enumerate(epsilons)]


def release_epsilon(engine: Any, config: Any) -> float:
    """Total budget one execution of ``engine`` will charge."""
    return sum(eps for _, eps in release_schedule(engine, config, "release"))


@dataclass
class Precharge:
    """The live charges of one admitted run.

    ``confirm()`` marks the next window as released (its charge is now
    spent for good); ``refund()`` gives back every unconfirmed charge.
    A caller that never confirms — the batch/service layers, which treat
    the whole run as one release — refunds everything on failure.
    """

    accountant: PrivacyAccountant
    charges: List[BudgetCharge] = field(default_factory=list)
    released: int = 0

    @property
    def epsilon(self) -> float:
        """Total epsilon across all charged entries."""
        return sum(charge.epsilon for charge in self.charges)

    def confirm(self, count: int = 1) -> None:
        """Mark the next ``count`` windows' charges as irrevocably spent."""
        self.released = min(len(self.charges), self.released + count)

    def refund(self) -> None:
        """Give back every charge whose window never released."""
        pending, self.charges = self.charges[self.released:], self.charges[: self.released]
        for charge in reversed(pending):
            self.accountant.refund(charge)


def precharge(
    accountant: Optional[PrivacyAccountant],
    schedule: List[Tuple[str, float]],
    fingerprint: Optional[str] = None,
) -> Optional[Precharge]:
    """Charge a release schedule atomically, before anything executes.

    Returns ``None`` when there is nothing to charge (no accountant, or a
    non-releasing schedule). If a later entry of a multi-window schedule
    is refused, the earlier entries are rolled back before the
    :class:`~repro.exceptions.PrivacyBudgetExceeded` propagates — the
    ledger never retains a half-admitted run.
    """
    if accountant is None or not schedule:
        return None
    admitted = Precharge(accountant)
    try:
        for label, epsilon in schedule:
            admitted.charges.append(
                accountant.charge(epsilon, label=label, fingerprint=fingerprint)
            )
    except PrivacyBudgetExceeded:
        admitted.refund()
        raise
    return admitted
