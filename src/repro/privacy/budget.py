"""Privacy-budget accounting with sequential composition.

The paper maintains a privacy budget ``eps_max = ln 2`` that is replenished
yearly (§4.5) and drawn down both by query releases and by the edge-privacy
leakage of the transfer protocol (Appendix B). :class:`PrivacyAccountant`
tracks the draw-downs, refuses charges that would exceed the budget, and
models the replenishment schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.exceptions import PrivacyBudgetExceeded, SensitivityError

__all__ = [
    "BudgetCharge",
    "LedgerEntry",
    "LedgerReconciliation",
    "PrivacyAccountant",
    "DEFAULT_EPSILON_MAX",
    "whole_releases",
]

#: The paper's choice: an adversary's confidence in any fact about the
#: input may at most double, so ``e^eps = 2``.
DEFAULT_EPSILON_MAX = math.log(2.0)


def whole_releases(epsilon_max: float, epsilon_per_query: float) -> int:
    """Largest number of ``epsilon_per_query``-sized releases that fit in
    ``epsilon_max``.

    Plain ``int()`` truncation misreads binary float division:
    ``0.6 / 0.2`` is ``2.999...96``, which must count as 3 releases, not
    2. Instead of trusting the quotient, the floor is bumped by one
    exactly when that extra release would still *fit* under
    :meth:`PrivacyAccountant.can_afford`'s absolute ``1e-12`` slack,
    after reserving headroom for the left-to-right summation drift that
    :attr:`PrivacyAccountant.spent` accumulates over ``count`` charges —
    so the count this function reports is chargeable by construction: a
    budget genuinely short of N releases (``epsilon_max = 0.6 - 1e-10``
    against 0.2-sized queries, or ``10 - 2e-12`` against 2.0-sized ones)
    answers N-1, never an N whose last charge would raise — and neither
    does a million-release schedule whose cumulative rounding exceeds
    the slack — while the paper's ``ln 2 / 0.23 = 3.01…`` still answers
    3.
    """
    if epsilon_per_query <= 0:
        raise SensitivityError("epsilon per query must be positive")
    if epsilon_max < 0:
        raise SensitivityError("epsilon_max cannot be negative")

    def _fits(n: int) -> bool:
        # worst-case |naive-sum(n terms of q) - n*q| grows ~ n * ulp(n*q);
        # 2e-16 over-covers the 1.1e-16 unit roundoff with margin
        drift = n * n * epsilon_per_query * 2e-16
        return n * epsilon_per_query + drift <= epsilon_max + 1e-12

    # the fit check governs in both directions: the floor is bumped when
    # one more release fits, and walked down when the floor itself does
    # not (an exact binary quotient like 1.0/1e-6 floors to a count whose
    # accumulated charges would overshoot the slack). _fits is monotone
    # in n, so the walk-down is a binary search — a tiny per-query
    # epsilon (count ~ 1e12) answers in ~40 probes, never a linear scan
    count = math.floor(epsilon_max / epsilon_per_query)
    if _fits(count + 1):
        return int(count + 1)
    lo, hi = 0, count
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if _fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return int(lo)


@dataclass(frozen=True)
class BudgetCharge:
    """One recorded draw against the budget."""

    label: str
    epsilon: float
    period: int


@dataclass(frozen=True)
class LedgerEntry:
    """One immutable line of the audit ledger: every budget mutation —
    charge, refund, replenish — in the order it happened.

    Unlike :attr:`PrivacyAccountant.charges` (the *live* books, which a
    refund edits in place), the ledger is append-only: a refunded charge
    stays visible together with the refund that undid it, which is what
    makes after-the-fact budget audits possible. ``fingerprint`` carries
    the scenario fingerprint for charges issued by the batch layer, and
    a refund's ``charge_seq`` names the ledger line it undoes.
    """

    seq: int
    kind: str  # "charge" | "refund" | "replenish"
    label: str
    epsilon: float
    period: int
    fingerprint: Optional[str] = None
    charge_seq: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "label": self.label,
            "epsilon": self.epsilon,
            "period": self.period,
            "fingerprint": self.fingerprint,
            "charge_seq": self.charge_seq,
        }


@dataclass
class LedgerReconciliation:
    """Result of replaying the ledger against the live books.

    The invariant (documented in DESIGN.md "Observability"): replaying
    charges minus refunds in ledger order reproduces
    :attr:`PrivacyAccountant.spent` *exactly* — bit-for-bit, not within a
    tolerance — because refunds remove the earliest matching charge on
    both sides, so the surviving charges are summed in the same order.
    """

    ok: bool
    ledger_spent: float
    accounted_spent: float
    outstanding: int
    issues: List[str] = field(default_factory=list)


@dataclass
class PrivacyAccountant:
    """Sequential-composition accountant with periodic replenishment.

    Sequential composition: the total privacy loss of consecutive releases
    is the sum of their epsilons, so the accountant simply sums charges
    within the current period. ``replenish`` starts a new period (the
    paper replenishes once per year because banks publicly disclose
    aggregate positions annually).
    """

    epsilon_max: float = DEFAULT_EPSILON_MAX
    charges: List[BudgetCharge] = field(default_factory=list)
    period: int = 0
    #: Append-only audit trail of every charge/refund/replenish, in
    #: order. ``charges`` above is the *live* state (refunds edit it);
    #: the ledger never forgets — see :meth:`reconcile`.
    ledger: List[LedgerEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.epsilon_max <= 0:
            raise SensitivityError("epsilon_max must be positive")

    @property
    def spent(self) -> float:
        """Total epsilon consumed in the current period."""
        return sum(c.epsilon for c in self.charges if c.period == self.period)

    @property
    def remaining(self) -> float:
        return self.epsilon_max - self.spent

    def can_afford(self, epsilon: float) -> bool:
        return epsilon <= self.remaining + 1e-12

    def charge(
        self, epsilon: float, label: str = "query", fingerprint: Optional[str] = None
    ) -> BudgetCharge:
        """Record a draw of ``epsilon``; raise if the budget would overrun.

        ``fingerprint`` (optional) ties the ledger line to a scenario
        fingerprint so audits can answer "which run spent this".
        """
        if epsilon < 0:
            raise SensitivityError("cannot charge a negative epsilon")
        if not self.can_afford(epsilon):
            raise PrivacyBudgetExceeded(
                f"charge of {epsilon:.4g} exceeds remaining budget "
                f"{self.remaining:.4g} (of {self.epsilon_max:.4g})"
            )
        charge = BudgetCharge(label=label, epsilon=epsilon, period=self.period)
        self.charges.append(charge)
        self.ledger.append(
            LedgerEntry(
                seq=len(self.ledger),
                kind="charge",
                label=label,
                epsilon=epsilon,
                period=self.period,
                fingerprint=fingerprint,
            )
        )
        return charge

    def refund(self, charge: BudgetCharge) -> None:
        """Remove a recorded charge whose release never happened.

        Sound only when the noised output covered by ``charge`` was never
        computed and published — e.g. a pre-charged streaming batch
        abandoned before the scenario ran (releasing nothing consumes no
        privacy). Raises if the charge is not on the books (already
        refunded, or recorded by a different accountant).
        """
        try:
            self.charges.remove(charge)
        except ValueError:
            raise SensitivityError(
                f"cannot refund unknown charge {charge.label!r} "
                f"(epsilon {charge.epsilon:.4g}); was it already refunded?"
            ) from None
        # Mirror ``list.remove``'s first-equal-match on the ledger: the
        # refund points at the earliest charge line with the same
        # (label, epsilon, period) that no prior refund already undid, so
        # replaying the ledger edits the same slot the live books did.
        undone = {e.charge_seq for e in self.ledger if e.kind == "refund"}
        target = next(
            (
                e
                for e in self.ledger
                if e.kind == "charge"
                and e.seq not in undone
                and (e.label, e.epsilon, e.period)
                == (charge.label, charge.epsilon, charge.period)
            ),
            None,
        )
        self.ledger.append(
            LedgerEntry(
                seq=len(self.ledger),
                kind="refund",
                label=charge.label,
                epsilon=charge.epsilon,
                period=charge.period,
                fingerprint=target.fingerprint if target is not None else None,
                charge_seq=target.seq if target is not None else None,
            )
        )

    def replenish(self) -> None:
        """Start a new budget period (e.g. a new disclosure year)."""
        self.period += 1
        self.ledger.append(
            LedgerEntry(
                seq=len(self.ledger),
                kind="replenish",
                label="replenish",
                epsilon=0.0,
                period=self.period,
            )
        )

    def reconcile(self) -> LedgerReconciliation:
        """Replay the ledger and check it reproduces the live books exactly.

        Returns a :class:`LedgerReconciliation`; ``ok`` is True iff every
        refund points at a real outstanding charge and the surviving
        charges match :attr:`charges` one-for-one in order — which makes
        the replayed spend equal :attr:`spent` bit-for-bit (identical
        summands, identical order).
        """
        issues: List[str] = []
        outstanding: List[LedgerEntry] = []
        for entry in self.ledger:
            if entry.kind == "charge":
                outstanding.append(entry)
            elif entry.kind == "refund":
                if entry.charge_seq is None:
                    issues.append(
                        f"ledger seq {entry.seq}: refund of {entry.label!r} "
                        "matches no outstanding charge"
                    )
                    continue
                match = next(
                    (e for e in outstanding if e.seq == entry.charge_seq), None
                )
                if match is None:
                    issues.append(
                        f"ledger seq {entry.seq}: refund points at charge "
                        f"seq {entry.charge_seq} which is not outstanding"
                    )
                    continue
                outstanding.remove(match)
        live = [(c.label, c.epsilon, c.period) for c in self.charges]
        replayed = [(e.label, e.epsilon, e.period) for e in outstanding]
        if live != replayed:
            issues.append(
                f"ledger replay yields {len(replayed)} outstanding charge(s) "
                f"but the live books hold {len(live)}"
            )
        ledger_spent = sum(
            e.epsilon for e in outstanding if e.period == self.period
        )
        accounted = self.spent
        if not issues and ledger_spent != accounted:
            issues.append(
                f"ledger spend {ledger_spent!r} != accounted spend {accounted!r}"
            )
        return LedgerReconciliation(
            ok=not issues,
            ledger_spent=ledger_spent,
            accounted_spent=accounted,
            outstanding=len(outstanding),
            issues=issues,
        )

    def queries_per_period(self, epsilon_per_query: float) -> int:
        """How many identical releases fit in one period — the paper's
        '(ln 2)/0.23 = 3 runs per year' computation. Tolerant of float
        division dust: an ``epsilon_max`` that is an exact multiple of
        the per-query epsilon counts every release (see
        :func:`whole_releases`)."""
        return whole_releases(self.epsilon_max, epsilon_per_query)
