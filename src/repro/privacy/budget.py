"""Privacy-budget accounting with sequential composition.

The paper maintains a privacy budget ``eps_max = ln 2`` that is replenished
yearly (§4.5) and drawn down both by query releases and by the edge-privacy
leakage of the transfer protocol (Appendix B). :class:`PrivacyAccountant`
tracks the draw-downs, refuses charges that would exceed the budget, and
models the replenishment schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.exceptions import PrivacyBudgetExceeded, SensitivityError

__all__ = [
    "BudgetCharge",
    "PrivacyAccountant",
    "DEFAULT_EPSILON_MAX",
    "whole_releases",
]

#: The paper's choice: an adversary's confidence in any fact about the
#: input may at most double, so ``e^eps = 2``.
DEFAULT_EPSILON_MAX = math.log(2.0)


def whole_releases(epsilon_max: float, epsilon_per_query: float) -> int:
    """Largest number of ``epsilon_per_query``-sized releases that fit in
    ``epsilon_max``.

    Plain ``int()`` truncation misreads binary float division:
    ``0.6 / 0.2`` is ``2.999...96``, which must count as 3 releases, not
    2. Instead of trusting the quotient, the floor is bumped by one
    exactly when that extra release would still *fit* under
    :meth:`PrivacyAccountant.can_afford`'s absolute ``1e-12`` slack,
    after reserving headroom for the left-to-right summation drift that
    :attr:`PrivacyAccountant.spent` accumulates over ``count`` charges —
    so the count this function reports is chargeable by construction: a
    budget genuinely short of N releases (``epsilon_max = 0.6 - 1e-10``
    against 0.2-sized queries, or ``10 - 2e-12`` against 2.0-sized ones)
    answers N-1, never an N whose last charge would raise — and neither
    does a million-release schedule whose cumulative rounding exceeds
    the slack — while the paper's ``ln 2 / 0.23 = 3.01…`` still answers
    3.
    """
    if epsilon_per_query <= 0:
        raise SensitivityError("epsilon per query must be positive")
    if epsilon_max < 0:
        raise SensitivityError("epsilon_max cannot be negative")

    def _fits(n: int) -> bool:
        # worst-case |naive-sum(n terms of q) - n*q| grows ~ n * ulp(n*q);
        # 2e-16 over-covers the 1.1e-16 unit roundoff with margin
        drift = n * n * epsilon_per_query * 2e-16
        return n * epsilon_per_query + drift <= epsilon_max + 1e-12

    # the fit check governs in both directions: the floor is bumped when
    # one more release fits, and walked down when the floor itself does
    # not (an exact binary quotient like 1.0/1e-6 floors to a count whose
    # accumulated charges would overshoot the slack). _fits is monotone
    # in n, so the walk-down is a binary search — a tiny per-query
    # epsilon (count ~ 1e12) answers in ~40 probes, never a linear scan
    count = math.floor(epsilon_max / epsilon_per_query)
    if _fits(count + 1):
        return int(count + 1)
    lo, hi = 0, count
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if _fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return int(lo)


@dataclass(frozen=True)
class BudgetCharge:
    """One recorded draw against the budget."""

    label: str
    epsilon: float
    period: int


@dataclass
class PrivacyAccountant:
    """Sequential-composition accountant with periodic replenishment.

    Sequential composition: the total privacy loss of consecutive releases
    is the sum of their epsilons, so the accountant simply sums charges
    within the current period. ``replenish`` starts a new period (the
    paper replenishes once per year because banks publicly disclose
    aggregate positions annually).
    """

    epsilon_max: float = DEFAULT_EPSILON_MAX
    charges: List[BudgetCharge] = field(default_factory=list)
    period: int = 0

    def __post_init__(self) -> None:
        if self.epsilon_max <= 0:
            raise SensitivityError("epsilon_max must be positive")

    @property
    def spent(self) -> float:
        """Total epsilon consumed in the current period."""
        return sum(c.epsilon for c in self.charges if c.period == self.period)

    @property
    def remaining(self) -> float:
        return self.epsilon_max - self.spent

    def can_afford(self, epsilon: float) -> bool:
        return epsilon <= self.remaining + 1e-12

    def charge(self, epsilon: float, label: str = "query") -> BudgetCharge:
        """Record a draw of ``epsilon``; raise if the budget would overrun."""
        if epsilon < 0:
            raise SensitivityError("cannot charge a negative epsilon")
        if not self.can_afford(epsilon):
            raise PrivacyBudgetExceeded(
                f"charge of {epsilon:.4g} exceeds remaining budget "
                f"{self.remaining:.4g} (of {self.epsilon_max:.4g})"
            )
        charge = BudgetCharge(label=label, epsilon=epsilon, period=self.period)
        self.charges.append(charge)
        return charge

    def refund(self, charge: BudgetCharge) -> None:
        """Remove a recorded charge whose release never happened.

        Sound only when the noised output covered by ``charge`` was never
        computed and published — e.g. a pre-charged streaming batch
        abandoned before the scenario ran (releasing nothing consumes no
        privacy). Raises if the charge is not on the books (already
        refunded, or recorded by a different accountant).
        """
        try:
            self.charges.remove(charge)
        except ValueError:
            raise SensitivityError(
                f"cannot refund unknown charge {charge.label!r} "
                f"(epsilon {charge.epsilon:.4g}); was it already refunded?"
            ) from None

    def replenish(self) -> None:
        """Start a new budget period (e.g. a new disclosure year)."""
        self.period += 1

    def queries_per_period(self, epsilon_per_query: float) -> int:
        """How many identical releases fit in one period — the paper's
        '(ln 2)/0.23 = 3 runs per year' computation. Tolerant of float
        division dust: an ``epsilon_max`` that is an exact multiple of
        the per-query epsilon counts every release (see
        :func:`whole_releases`)."""
        return whole_releases(self.epsilon_max, epsilon_per_query)
