"""Dollar-differential privacy (Flood et al. [30], §4.1).

Standard DP protects the presence of one *record*; in the financial
setting the protected object is a *position*: two input data sets are
similar when one can be turned into the other by reallocating at most ``T``
dollars within a single portfolio. Choosing the granularity ``T`` sets the
unit in which program sensitivity is measured, so the Laplace mechanism
draws noise from ``T * Lap(s / eps)``.

The paper follows Flood et al. in using ``T = $1 billion`` — roughly the
equity of the 100th largest U.S. bank — which completely protects all
positions up to that size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import SensitivityError
from repro.privacy.mechanisms import laplace_mechanism, laplace_tail_probability

__all__ = ["DollarPrivacySpec", "DEFAULT_GRANULARITY_USD"]

#: $1 billion, the granularity suggested by Flood et al. [30] and adopted
#: in §4.5.
DEFAULT_GRANULARITY_USD = 1e9


@dataclass(frozen=True)
class DollarPrivacySpec:
    """Parameters of a dollar-DP release.

    Attributes
    ----------
    granularity:
        The protection threshold ``T`` in dollars: portfolios differing by
        a reallocation of up to ``T`` dollars are indistinguishable up to
        ``e^epsilon``.
    sensitivity:
        The program's sensitivity in units of ``T`` (e.g. ``2/r`` for
        Elliott-Golub-Jackson with leverage bound ``r``).
    epsilon:
        The per-release privacy parameter.
    """

    granularity: float = DEFAULT_GRANULARITY_USD
    sensitivity: float = 1.0
    epsilon: float = 0.23

    def __post_init__(self) -> None:
        if self.granularity <= 0:
            raise SensitivityError("granularity T must be positive")
        if self.sensitivity < 0:
            raise SensitivityError("sensitivity must be non-negative")
        if self.epsilon <= 0:
            raise SensitivityError("epsilon must be positive")

    @property
    def noise_scale_dollars(self) -> float:
        """Scale of the Laplace noise in dollars: ``T * s / eps``."""
        return self.granularity * self.sensitivity / self.epsilon

    def release(self, value_dollars: float, rng: DeterministicRNG) -> float:
        """Release a dollar-valued output under dollar-DP."""
        return laplace_mechanism(
            value_dollars / self.granularity,
            self.sensitivity,
            self.epsilon,
            rng,
        ) * self.granularity

    def error_probability(self, error_dollars: float) -> float:
        """``P(|noise| > error_dollars)`` for this release."""
        return laplace_tail_probability(self.noise_scale_dollars, error_dollars)
