"""Edge-privacy accounting for the transfer protocol (Appendix B).

The final message transfer protocol leaks a noised *sum* of bit shares for
every bit transferred over an edge. Appendix B treats each such sum as a
query ``Q_(i,j)`` on the graph with sensitivity ``Delta = k + 1`` (every
honest-but-curious sender contributes a bit in {0, 1}) released through the
geometric mechanism. This module implements that accounting:

* the mechanism's per-transfer epsilon,
* the decryption failure probability ``P_fail`` from the bounded dlog
  table (the noised sum rides in an ElGamal exponent),
* the largest usable noise parameter ``alpha_max`` for a target failure
  budget, and
* the per-iteration and per-year draw on the privacy budget, reproducing
  the paper's concrete example (k+1 = 20, L = 16, N = 1750, D = 100,
  I = 11, R = 3, Y = 10 -> 0.0014 per iteration, 0.0469 per year).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import SensitivityError

__all__ = [
    "transfer_sensitivity",
    "mechanism_alpha",
    "failure_probability",
    "alpha_max_for_failure_budget",
    "total_transfers",
    "per_iteration_epsilon",
    "dlog_table_entries",
    "EdgePrivacyAnalysis",
]


def transfer_sensitivity(collusion_bound: int) -> int:
    """``Delta = k + 1``: the sum of ``k+1`` bit shares moves by at most
    the block size when the underlying edge changes."""
    if collusion_bound < 1:
        raise SensitivityError("collusion bound must be at least 1")
    return collusion_bound + 1


def mechanism_alpha(epsilon: float, sensitivity: int) -> float:
    """Noise parameter for the released sums: ``alpha_mech = alpha^{2/Delta}``
    with ``alpha = e^-eps`` — i.e. ``exp(-2 eps / Delta)``.

    The protocol adds ``2 * Geo(alpha^{2/Delta})``, and the factor-2 noise
    granularity cancels the factor-2 in the exponent, giving a ratio bound
    of ``alpha^{|..|/Delta}`` and hence eps-DP per transfer (Appendix B).
    """
    if epsilon <= 0:
        raise SensitivityError("epsilon must be positive")
    return math.exp(-2.0 * epsilon / sensitivity)


def failure_probability(alpha_param: float, table_entries: int) -> float:
    """``P_fail``: the geometric draw escapes the dlog window (Appendix B).

    The lookup table spans ``[-N_l/2, N_l/2]``; the paper's closed form is
    ``(2 alpha^{N_l/2} + alpha - 1) / (1 + alpha)`` (clamped to [0, 1] —
    the geometric-series approximation can dip below zero for alpha
    near 1).
    """
    if not 0.0 < alpha_param < 1.0:
        raise SensitivityError("alpha must lie in (0, 1)")
    if table_entries < 2:
        raise SensitivityError("table must have at least 2 entries")
    half = table_entries / 2.0
    raw = (2.0 * alpha_param**half + alpha_param - 1.0) / (1.0 + alpha_param)
    return min(1.0, max(0.0, raw))


def alpha_max_for_failure_budget(table_entries: int, max_failure: float) -> float:
    """Largest noise parameter with ``P_fail <= max_failure`` (ineq. (1)).

    ``P_fail`` is increasing in alpha, so bisection on (0, 1) suffices.
    """
    if not 0.0 < max_failure < 1.0:
        raise SensitivityError("failure budget must lie in (0, 1)")
    lo, hi = 1e-12, 1.0 - 1e-15
    if failure_probability(lo, table_entries) > max_failure:
        raise SensitivityError("even negligible noise exceeds the failure budget")
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if failure_probability(mid, table_entries) <= max_failure:
            lo = mid
        else:
            hi = mid
    return lo


def total_transfers(
    years: int,
    runs_per_year: int,
    iterations: int,
    num_nodes: int,
    degree_bound: int,
    message_bits: int,
    collusion_bound: int,
) -> int:
    """``N_q = Y * R * I * N * D * L * (k+1)^2`` (Appendix B)."""
    block = collusion_bound + 1
    return years * runs_per_year * iterations * num_nodes * degree_bound * message_bits * block * block


def per_iteration_epsilon(collusion_bound: int, message_bits: int, epsilon_per_transfer: float) -> float:
    """Budget drawn per iteration: ``k * (k+1) * L * eps``.

    An adversary controlling ``k`` of the ``k+1`` members of the receiving
    block observes ``k * (k+1) * L`` noised sums per iteration over the
    target edge.
    """
    k = collusion_bound
    return k * (k + 1) * message_bits * epsilon_per_transfer


def dlog_table_entries(ram_bytes: int, ciphertext_bits: int) -> int:
    """Entries that fit in a decryption lookup table of ``ram_bytes``."""
    if ciphertext_bits <= 0:
        raise SensitivityError("ciphertext size must be positive")
    return (ram_bytes * 8) // ciphertext_bits


@dataclass(frozen=True)
class EdgePrivacyAnalysis:
    """End-to-end Appendix B accounting for one deployment configuration."""

    collusion_bound: int = 19
    message_bits: int = 16
    num_nodes: int = 1750
    degree_bound: int = 100
    iterations: int = 11
    runs_per_year: int = 3
    years: int = 10
    table_entries: int = 230_000_000
    epsilon_per_transfer: float = 2.34e-7

    @property
    def sensitivity(self) -> int:
        return transfer_sensitivity(self.collusion_bound)

    @property
    def alpha(self) -> float:
        """``alpha = e^-eps`` for the per-transfer epsilon."""
        return math.exp(-self.epsilon_per_transfer)

    @property
    def noise_parameter(self) -> float:
        """Parameter of the geometric the protocol actually samples."""
        return mechanism_alpha(self.epsilon_per_transfer, self.sensitivity)

    @property
    def transfers(self) -> int:
        return total_transfers(
            self.years,
            self.runs_per_year,
            self.iterations,
            self.num_nodes,
            self.degree_bound,
            self.message_bits,
            self.collusion_bound,
        )

    @property
    def failure_probability(self) -> float:
        return failure_probability(self.alpha, self.table_entries)

    @property
    def meets_failure_budget(self) -> bool:
        """Inequality (1): fail at most once in ``N_q`` transfers."""
        return self.failure_probability <= 1.0 / self.transfers

    @property
    def epsilon_per_iteration(self) -> float:
        return per_iteration_epsilon(
            self.collusion_bound, self.message_bits, self.epsilon_per_transfer
        )

    @property
    def epsilon_per_year(self) -> float:
        return self.epsilon_per_iteration * self.runs_per_year * self.iterations
