"""Differential privacy mechanisms: Laplace and two-sided geometric.

The Laplace mechanism (Dwork et al. [24]) noises the final DStress output
(§3.1, §3.6); the two-sided geometric mechanism (Ghosh et al. [33]) noises
the bit sums inside the message transfer protocol (§3.5, Appendix B). Both
are implemented from first principles on the deterministic RNG.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import SensitivityError

__all__ = [
    "laplace_sample",
    "laplace_mechanism",
    "geometric_sample",
    "two_sided_geometric_sample",
    "two_sided_geometric_mechanism",
    "laplace_tail_probability",
    "LaplaceMechanism",
    "TwoSidedGeometricMechanism",
]


def laplace_sample(scale: float, rng: DeterministicRNG) -> float:
    """One draw from ``Lap(scale)`` via inverse-CDF sampling."""
    if scale <= 0:
        raise SensitivityError("Laplace scale must be positive")
    # u in (-0.5, 0.5]; the open lower end avoids log(0).
    u = rng.random() - 0.5
    if u == -0.5:
        u = 0.5
    return -scale * math.copysign(1.0, u) * math.log(1.0 - 2.0 * abs(u))


def laplace_mechanism(value: float, sensitivity: float, epsilon: float, rng: DeterministicRNG) -> float:
    """``value + Lap(sensitivity / epsilon)`` — epsilon-DP for queries with
    the given L1 sensitivity."""
    if sensitivity < 0:
        raise SensitivityError("sensitivity must be non-negative")
    if epsilon <= 0:
        raise SensitivityError("epsilon must be positive")
    if sensitivity == 0:
        return value
    return value + laplace_sample(sensitivity / epsilon, rng)


def laplace_tail_probability(scale: float, threshold: float) -> float:
    """``P(|Lap(scale)| > threshold)`` — used by the §4.5 utility analysis."""
    if threshold < 0:
        return 1.0
    return math.exp(-threshold / scale)


def geometric_sample(alpha: float, rng: DeterministicRNG) -> int:
    """One-sided geometric on {0, 1, ...} with ``P(k) = (1-alpha) alpha^k``."""
    if not 0.0 < alpha < 1.0:
        raise SensitivityError("alpha must lie in (0, 1)")
    u = rng.random()
    if u <= 0.0:
        return 0
    # Inverse CDF: smallest k with 1 - alpha^{k+1} >= u.
    return max(0, math.ceil(math.log(1.0 - u) / math.log(alpha)) - 1)


def two_sided_geometric_sample(alpha: float, rng: DeterministicRNG) -> int:
    """Two-sided geometric: ``P(d) = (1-alpha)/(1+alpha) * alpha^|d|``.

    Sampled as the difference of two independent one-sided geometrics,
    which has exactly this PMF.
    """
    return geometric_sample(alpha, rng) - geometric_sample(alpha, rng)


def two_sided_geometric_mechanism(
    value: int, sensitivity: int, epsilon: float, rng: DeterministicRNG
) -> int:
    """``value + Y`` with ``Y`` two-sided geometric, ``alpha = e^{-eps/s}``.

    For integer-valued queries of sensitivity ``s`` this is the universally
    utility-maximizing epsilon-DP mechanism of Ghosh et al. [33].
    """
    if sensitivity < 0:
        raise SensitivityError("sensitivity must be non-negative")
    if epsilon <= 0:
        raise SensitivityError("epsilon must be positive")
    if sensitivity == 0:
        return value
    alpha = math.exp(-epsilon / sensitivity)
    return value + two_sided_geometric_sample(alpha, rng)


@dataclass(frozen=True)
class LaplaceMechanism:
    """A reusable epsilon-DP Laplace mechanism for a fixed query shape."""

    sensitivity: float
    epsilon: float

    @property
    def scale(self) -> float:
        return self.sensitivity / self.epsilon

    def release(self, value: float, rng: DeterministicRNG) -> float:
        return laplace_mechanism(value, self.sensitivity, self.epsilon, rng)

    def tail_probability(self, threshold: float) -> float:
        """``P(|noise| > threshold)``."""
        return laplace_tail_probability(self.scale, threshold)


@dataclass(frozen=True)
class TwoSidedGeometricMechanism:
    """A reusable epsilon-DP geometric mechanism for integer queries."""

    sensitivity: int
    epsilon: float

    @property
    def alpha(self) -> float:
        return math.exp(-self.epsilon / self.sensitivity)

    def release(self, value: int, rng: DeterministicRNG) -> int:
        return two_sided_geometric_mechanism(value, self.sensitivity, self.epsilon, rng)
