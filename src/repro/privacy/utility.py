"""The §4.5 utility analysis: choosing epsilon and counting runs per year.

The paper's policy arithmetic: with an adversary-confidence cap of 2x
(``eps_max = ln 2``), granularity ``T = $1B``, EGJ sensitivity ``2/r = 20``
(Basel III leverage bound ``r = 0.1``) and a required precision of
+-$200B on a ~$500B total-dollar-shortfall, the per-query epsilon must be
at least ~0.23, allowing ``(ln 2)/0.23 = 3`` stress tests per year.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import SensitivityError
from repro.privacy.budget import DEFAULT_EPSILON_MAX, whole_releases
from repro.privacy.dollar import DollarPrivacySpec

__all__ = [
    "epsilon_for_precision",
    "runs_per_year",
    "UtilityAnalysis",
    "measure_noise_impact",
]


def epsilon_for_precision(
    sensitivity: float,
    max_error_units: float,
    confidence: float = 0.95,
    two_sided: bool = False,
) -> float:
    """Smallest epsilon keeping the Laplace noise within ``max_error_units``
    (in units of T) with probability ``confidence``.

    With ``two_sided=False`` (the paper's reading) the bound is
    ``P(X <= E) >= confidence`` for one tail, giving
    ``eps >= s * ln(1 / (2 (1 - confidence))) / E`` — this reproduces the
    paper's 0.23. The strictly two-sided bound ``P(|X| <= E)`` gives the
    slightly larger ``s * ln(1 / (1 - confidence)) / E``.
    """
    if not 0.0 < confidence < 1.0:
        raise SensitivityError("confidence must lie in (0, 1)")
    if max_error_units <= 0:
        raise SensitivityError("error bound must be positive")
    if sensitivity <= 0:
        raise SensitivityError("sensitivity must be positive")
    tail = 1.0 - confidence
    if two_sided:
        return sensitivity * math.log(1.0 / tail) / max_error_units
    return sensitivity * math.log(1.0 / (2.0 * tail)) / max_error_units


def runs_per_year(epsilon_query: float, epsilon_max: float = DEFAULT_EPSILON_MAX) -> int:
    """How many releases the yearly budget supports (float-dust tolerant:
    an exact-multiple budget counts every release — see
    :func:`repro.privacy.budget.whole_releases`)."""
    return whole_releases(epsilon_max, epsilon_query)


@dataclass(frozen=True)
class UtilityAnalysis:
    """The complete §4.5 computation for one policy configuration."""

    granularity_usd: float = 1e9
    leverage_bound: float = 0.1
    sensitivity_factor: float = 2.0  # 2/r for EGJ, 1/r for EN
    max_error_usd: float = 200e9
    confidence: float = 0.95
    epsilon_max: float = DEFAULT_EPSILON_MAX

    @property
    def sensitivity_units(self) -> float:
        """Program sensitivity in units of T: ``factor / r``."""
        return self.sensitivity_factor / self.leverage_bound

    @property
    def epsilon_query(self) -> float:
        return epsilon_for_precision(
            self.sensitivity_units,
            self.max_error_usd / self.granularity_usd,
            self.confidence,
        )

    @property
    def runs_per_year(self) -> int:
        return runs_per_year(self.epsilon_query, self.epsilon_max)

    @property
    def noise_scale_usd(self) -> float:
        return self.granularity_usd * self.sensitivity_units / self.epsilon_query

    def spec(self) -> DollarPrivacySpec:
        """The dollar-DP release spec implied by this policy."""
        return DollarPrivacySpec(
            granularity=self.granularity_usd,
            sensitivity=self.sensitivity_units,
            epsilon=self.epsilon_query,
        )


def measure_noise_impact(
    true_value_usd: float,
    spec: DollarPrivacySpec,
    rng: DeterministicRNG,
    trials: int = 1000,
) -> dict:
    """Empirical noise impact on a released TDS — the Appendix utility
    experiment showing DP does not diminish the measure's usefulness.

    Returns summary statistics of the released values over ``trials``
    independent releases.
    """
    releases = [spec.release(true_value_usd, rng) for _ in range(trials)]
    mean = sum(releases) / trials
    abs_errors = sorted(abs(r - true_value_usd) for r in releases)
    return {
        "true_value": true_value_usd,
        "mean_release": mean,
        "median_abs_error": abs_errors[trials // 2],
        "p95_abs_error": abs_errors[int(trials * 0.95)],
        "max_abs_error": abs_errors[-1],
        "relative_p95_error": abs_errors[int(trials * 0.95)] / max(abs(true_value_usd), 1e-9),
    }
