"""The fleet-scale stress-test service layer.

DStress's end-state is not a library invoked per run but a standing
service banks query for systemic-risk numbers. This package wraps the
session/batch API (:mod:`repro.api`) in that service:

* :mod:`repro.service.scenario_ast` — scenarios arrive as a versioned
  JSON **AST** (graph generator + params, program, engine + options,
  epsilon request), pass a strict whitelist validator, and are
  **notarized**: canonicalized and fingerprinted with the same
  content digests the scenario cache keys on. Only checked, bounded
  documents ever reach an engine — no arbitrary code crosses the wire.
* :mod:`repro.service.server` — :class:`StressTestService`, an asyncio
  TCP/JSON-lines server with a bounded worker pool. Every request is
  admission-controlled by atomically pre-charging the shared
  :class:`~repro.privacy.budget.PrivacyAccountant` before scheduling
  (refunded on failure), and concurrent identical requests coalesce
  into one engine run and one epsilon charge (**single-flight**).
* :mod:`repro.service.cachetier` — a networked cache protocol in front
  of :class:`~repro.api.diskcache.PersistentScenarioCache`, so a fleet
  of service replicas deduplicates releases by notarized fingerprint.
* :mod:`repro.service.client` — the sync :class:`ServiceClient`.

Run a service: ``python -m repro.service`` (see ``--help``); a cache
tier: ``python -m repro.service --role cache``. DESIGN.md "Service
layer" documents the AST schema and the admission/single-flight flow.
"""

from repro.service.cachetier import CacheTierServer, RemoteScenarioCache
from repro.service.client import ServiceClient, ServiceResponse
from repro.service.scenario_ast import (
    AST_VERSION,
    NotarizedScenario,
    build_session,
    canonical_json,
    notarize,
    validate_scenario,
)
from repro.service.server import StressTestService

__all__ = [
    "AST_VERSION",
    "CacheTierServer",
    "NotarizedScenario",
    "RemoteScenarioCache",
    "ServiceClient",
    "ServiceResponse",
    "StressTestService",
    "build_session",
    "canonical_json",
    "notarize",
    "validate_scenario",
]
