"""``python -m repro.service`` — run a service or cache-tier replica.

Prints ``LISTENING <port>`` on stdout once bound (port 0 picks a free
port), so harnesses can scrape the actual endpoint; exits cleanly on a
``shutdown`` op or SIGINT.

Examples::

    # a stress-test service with a fresh ln(2) budget and an in-memory
    # release cache
    python -m repro.service --port 7117

    # a fleet: one shared cache tier, two service replicas behind it
    python -m repro.service --role cache --cache-dir /tmp/releases &
    python -m repro.service --cache tcp://127.0.0.1:7200 &
    python -m repro.service --cache tcp://127.0.0.1:7200 &
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
from typing import Optional

from repro.api.cache import ScenarioCache, ScenarioCacheBase
from repro.api.diskcache import PersistentScenarioCache
from repro.exceptions import ServiceProtocolError
from repro.privacy.budget import PrivacyAccountant
from repro.service.cachetier import CacheTierServer, RemoteScenarioCache
from repro.service.server import StressTestService


def _parse_endpoint(value: str) -> tuple:
    text = value[len("tcp://"):] if value.startswith("tcp://") else value
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ServiceProtocolError(
            f"cache endpoint {value!r} is not tcp://host:port"
        )
    return host or "127.0.0.1", int(port)


def _build_cache(args: argparse.Namespace) -> Optional[ScenarioCacheBase]:
    if args.cache:
        host, port = _parse_endpoint(args.cache)
        return RemoteScenarioCache(host, port)
    if args.cache_dir:
        return PersistentScenarioCache(args.cache_dir)
    if args.no_cache:
        return None
    return ScenarioCache()


async def _run_service(args: argparse.Namespace) -> int:
    accountant = None
    if args.budget > 0:
        accountant = PrivacyAccountant(epsilon_max=args.budget)
    service = StressTestService(
        args.host,
        args.port,
        accountant=accountant,
        cache=_build_cache(args),
        max_workers=args.workers,
    )
    port = await service.start()
    print(f"LISTENING {port}", flush=True)
    await service.serve_until_closed()
    return 0


async def _run_cachetier(args: argparse.Namespace) -> int:
    backing: ScenarioCacheBase
    if args.cache_dir:
        backing = PersistentScenarioCache(args.cache_dir)
    else:
        backing = ScenarioCache()
    server = CacheTierServer(backing, args.host, args.port)
    port = await server.start()
    print(f"LISTENING {port}", flush=True)
    await server.serve_until_closed()
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run a DStress stress-test service or cache-tier replica.",
    )
    parser.add_argument(
        "--role",
        choices=("service", "cache"),
        default="service",
        help="what to run: a scenario service (default) or a cache tier",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick a free port, announced on stdout)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=PrivacyAccountant().epsilon_max,
        help="privacy budget epsilon_max (default ln 2; 0 disables admission)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="bound on concurrently-executing engine runs (default 2)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="back releases with a PersistentScenarioCache at this directory",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="tcp://HOST:PORT",
        help="use a remote cache tier instead of a local cache (service role)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run the service without any release cache",
    )
    args = parser.parse_args(argv)
    runner = _run_cachetier if args.role == "cache" else _run_service
    try:
        return asyncio.run(runner(args))
    except KeyboardInterrupt:
        with contextlib.suppress(Exception):
            print("interrupted, shutting down", file=sys.stderr)
        return 0


if __name__ == "__main__":
    sys.exit(main())
