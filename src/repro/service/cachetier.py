"""The networked cache tier: fleet-shared release deduplication.

A :class:`CacheTierServer` fronts any
:class:`~repro.api.cache.ScenarioCacheBase` (typically the on-disk
:class:`~repro.api.diskcache.PersistentScenarioCache`) over the same
JSON-lines protocol the service speaks, and
:class:`RemoteScenarioCache` is the matching client-side
:class:`~repro.api.cache.ScenarioCacheBase` adapter — plug it into a
:class:`~repro.service.server.StressTestService`, ``run_batch``, or a
session, and a *fleet* of replicas shares one release store keyed by
notarized fingerprint: the first replica to release a scenario pays the
engine run and the epsilon; every other replica answers from the tier.

Results cross the wire as base64-pickled :class:`RunResult` payloads —
the **same trust model as the disk cache** (DESIGN.md "Persistent
scenario cache"): the bytes are as trusted as the code on both ends of
the connection, which in this reproduction is always our own fleet.

Failure semantics follow the cache's prime directive — *only err toward
miss*. By default the remote cache is **tolerant**: an unreachable or
crashed tier turns every lookup into a miss and every store into a
no-op (the replica recomputes; correctness is untouched, only dedup is
lost). ``strict=True`` converts those faults into
:class:`~repro.exceptions.ServiceUnavailableError` for deployments that
would rather fail loudly than quietly forfeit deduplication.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import pickle
from typing import Any, Dict, Optional

from repro.api.cache import ScenarioCacheBase
from repro.api.result import RunResult
from repro.exceptions import ServiceError, ServiceUnavailableError
from repro.obs.trace import current_recorder
from repro.service.client import ServiceClient
from repro.service.server import SERVICE_PROTOCOL_VERSION

__all__ = ["CacheTierServer", "RemoteScenarioCache"]

_MAX_LINE_BYTES = 64 * 1024 * 1024  # pickled trajectories are chunky


def _encode_result(result: RunResult) -> Optional[str]:
    try:
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None
    return base64.b64encode(payload).decode("ascii")


def _decode_result(text: str) -> Optional[RunResult]:
    try:
        result = pickle.loads(base64.b64decode(text.encode("ascii")))
    except (Exception, binascii.Error):
        return None
    return result if isinstance(result, RunResult) else None


class CacheTierServer:
    """Serve one :class:`ScenarioCacheBase` to the fleet.

    Ops: ``ping``, ``lookup`` (fingerprint → payload or miss), ``store``
    (fingerprint + payload), ``stats``, ``clear``, ``shutdown``. Every
    response is a typed JSON line; a malformed request gets an error
    line, never silence.
    """

    def __init__(
        self,
        backing: ScenarioCacheBase,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_line_bytes: int = _MAX_LINE_BYTES,
        name: str = "dstress-cachetier",
    ) -> None:
        self.backing = backing
        self.host = host
        self.port = port
        self.name = name
        self.max_line_bytes = max_line_bytes
        self._server: Optional[asyncio.base_events.Server] = None
        self._closed = asyncio.Event()
        self._connections: "set[asyncio.Task[None]]" = set()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "lookups": 0,
            "hits": 0,
            "stores": 0,
            "malformed": 0,
        }

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=self.max_line_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_until_closed(self) -> None:
        await self._closed.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    async def close(self) -> None:
        self._closed.set()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.counters["malformed"] += 1
                    await self._send(
                        writer,
                        self._error(
                            f"request line exceeds {self.max_line_bytes} bytes"
                        ),
                    )
                    break
                if not line:
                    break
                response = self._dispatch_line(line)
                await self._send(writer, response)
                if response.get("op") == "shutdown":
                    self._closed.set()
                    break
        except asyncio.CancelledError:
            pass  # deliberate shutdown cancellation: close quietly
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, body: Dict[str, Any]) -> None:
        writer.write(json.dumps(body, allow_nan=False).encode("utf-8") + b"\n")
        await writer.drain()

    def _ok(self, **fields: Any) -> Dict[str, Any]:
        body = {"ok": True, "version": SERVICE_PROTOCOL_VERSION}
        body.update(fields)
        return body

    def _error(self, message: str) -> Dict[str, Any]:
        return {
            "ok": False,
            "version": SERVICE_PROTOCOL_VERSION,
            "status": "error",
            "error": "ServiceProtocolError",
            "message": message,
        }

    def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        self.counters["requests"] += 1
        try:
            request = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.counters["malformed"] += 1
            return self._error(f"request is not valid JSON: {exc}")
        if not isinstance(request, dict) or not isinstance(request.get("op"), str):
            self.counters["malformed"] += 1
            return self._error("request must be an object with a string 'op'")
        op = request["op"]
        if op == "ping":
            return self._ok(op="ping", server=self.name)
        if op == "stats":
            return self._ok(
                op="stats",
                counters=dict(self.counters),
                entries=len(self.backing),
                hits=self.backing.hits,
                misses=self.backing.misses,
            )
        if op == "shutdown":
            return self._ok(op="shutdown")
        if op == "clear":
            self.backing.clear()
            return self._ok(op="clear")
        if op == "lookup":
            return self._lookup(request)
        if op == "store":
            return self._store(request)
        self.counters["malformed"] += 1
        return self._error(
            f"unknown op {op!r}; supported: ping, lookup, store, stats, "
            "clear, shutdown"
        )

    def _fingerprint_of(self, request: Dict[str, Any]) -> Optional[str]:
        fingerprint = request.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            return None
        return fingerprint

    def _lookup(self, request: Dict[str, Any]) -> Dict[str, Any]:
        fingerprint = self._fingerprint_of(request)
        if fingerprint is None:
            self.counters["malformed"] += 1
            return self._error("lookup requires a non-empty string 'fingerprint'")
        self.counters["lookups"] += 1
        with current_recorder().span("cachetier.lookup", fingerprint=fingerprint[:16]):
            result = self.backing.lookup(fingerprint)
        if result is None:
            return self._ok(op="lookup", hit=False)
        payload = _encode_result(result)
        if payload is None:
            # unpicklable entry: err toward miss, never a broken payload
            return self._ok(op="lookup", hit=False)
        self.counters["hits"] += 1
        return self._ok(op="lookup", hit=True, payload=payload)

    def _store(self, request: Dict[str, Any]) -> Dict[str, Any]:
        fingerprint = self._fingerprint_of(request)
        payload = request.get("payload")
        if fingerprint is None or not isinstance(payload, str):
            self.counters["malformed"] += 1
            return self._error(
                "store requires a non-empty string 'fingerprint' and a "
                "string 'payload'"
            )
        result = _decode_result(payload)
        if result is None:
            self.counters["malformed"] += 1
            return self._error("store payload does not decode to a RunResult")
        self.counters["stores"] += 1
        with current_recorder().span("cachetier.store", fingerprint=fingerprint[:16]):
            self.backing.store(fingerprint, result)
        return self._ok(op="store", stored=True)


class RemoteScenarioCache(ScenarioCacheBase):
    """A :class:`ScenarioCacheBase` whose storage lives across a socket.

    Drop-in anywhere a cache is accepted — ``run_batch(cache=...)``
    (including the ``"tcp://host:port"`` shorthand), a
    :class:`~repro.service.server.StressTestService`, or a session.
    Entries arrive already isolated (they were pickled on the wire), so
    no extra copy is made.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        strict: bool = False,
    ) -> None:
        super().__init__()
        self.strict = strict
        self._client = ServiceClient(
            host, port, timeout=timeout, max_line_bytes=_MAX_LINE_BYTES
        )

    # ----------------------------------------------------------- plumbing --

    @property
    def endpoint(self) -> str:
        return f"tcp://{self._client.host}:{self._client.port}"

    def close(self) -> None:
        self._client.close()

    def _call(self, body: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """One request; tolerant mode maps any fault to ``None`` (miss)."""
        try:
            response = self._client.request(body)
            response.raise_for_status()
            return response.body
        except ServiceError:
            if self.strict:
                raise
            return None

    # ------------------------------------------------------ cache protocol --

    def _fetch(self, fingerprint: str) -> Optional[RunResult]:
        body = self._call({"op": "lookup", "fingerprint": fingerprint})
        if body is None or not body.get("hit"):
            return None
        payload = body.get("payload")
        if not isinstance(payload, str):
            return None
        return _decode_result(payload)

    def _persist(self, fingerprint: str, result: RunResult) -> None:
        payload = _encode_result(result)
        if payload is None:
            return
        self._call({"op": "store", "fingerprint": fingerprint, "payload": payload})

    def clear(self) -> None:
        body = self._call({"op": "clear"})
        if body is None and self.strict:  # pragma: no cover - strict raises above
            raise ServiceUnavailableError(f"cache tier {self.endpoint} unreachable")

    def __len__(self) -> int:
        body = self._call({"op": "stats"})
        if body is None:
            return 0
        entries = body.get("entries")
        return int(entries) if isinstance(entries, int) else 0
