""":class:`ServiceClient` — the synchronous stress-test service client.

One TCP connection, JSON-lines both ways (the mirror of
:class:`~repro.service.server.StressTestService`). The client is
deliberately dumb: it serializes a request object, reads one response
line, and wraps it in a :class:`ServiceResponse` whose
:meth:`~ServiceResponse.raise_for_status` maps the server's typed
refusals back onto the :mod:`repro.exceptions` taxonomy — so a caller
that ignores the transport entirely still sees the same
:class:`~repro.exceptions.ScenarioValidationError` /
:class:`~repro.exceptions.PrivacyBudgetExceeded` it would get from the
in-process API. Network failures surface as
:class:`~repro.exceptions.ServiceUnavailableError`, never raw
``OSError``.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.exceptions import (
    PrivacyBudgetExceeded,
    ScenarioValidationError,
    ServiceError,
    ServiceProtocolError,
    ServiceUnavailableError,
)
from repro.service.server import SERVICE_PROTOCOL_VERSION

__all__ = ["ServiceClient", "ServiceResponse"]

_STATUS_EXCEPTIONS = {
    "rejected": ScenarioValidationError,
    "over-budget": PrivacyBudgetExceeded,
}

_ERROR_EXCEPTIONS = {
    "ScenarioValidationError": ScenarioValidationError,
    "PrivacyBudgetExceeded": PrivacyBudgetExceeded,
    "ServiceProtocolError": ServiceProtocolError,
    "ServiceUnavailableError": ServiceUnavailableError,
}


@dataclass(frozen=True)
class ServiceResponse:
    """One parsed response line from the service."""

    body: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.body.get("ok"))

    @property
    def status(self) -> str:
        return str(self.body.get("status", ""))

    @property
    def error(self) -> Optional[str]:
        value = self.body.get("error")
        return None if value is None else str(value)

    @property
    def message(self) -> str:
        return str(self.body.get("message", ""))

    @property
    def cached(self) -> bool:
        return bool(self.body.get("cached"))

    @property
    def deduped(self) -> bool:
        return bool(self.body.get("deduped"))

    @property
    def fingerprint(self) -> Optional[str]:
        value = self.body.get("fingerprint")
        return None if value is None else str(value)

    @property
    def epsilon_charged(self) -> float:
        return float(self.body.get("epsilon_charged", 0.0))

    @property
    def result(self) -> Optional[Dict[str, Any]]:
        value = self.body.get("result")
        return value if isinstance(value, dict) else None

    def raise_for_status(self) -> "ServiceResponse":
        """Re-raise a refusal as its library exception; returns ``self``
        on success so calls chain (``submit(...).raise_for_status()``)."""
        if self.ok:
            return self
        exc_cls = _STATUS_EXCEPTIONS.get(self.status)
        if exc_cls is None:
            exc_cls = _ERROR_EXCEPTIONS.get(self.error or "", ServiceError)
        raise exc_cls(self.message or f"service refused request ({self.status})")


class ServiceClient:
    """Synchronous JSON-lines client for one service (or cache) endpoint.

    Usable as a context manager; the connection is opened lazily on the
    first request and a dead connection is re-dialed once per request
    before giving up with :class:`ServiceUnavailableError`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        max_line_bytes: int = 1024 * 1024,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_line_bytes = max_line_bytes
        self._sock: Optional[socket.socket] = None
        self._buffer = b""

    # ---------------------------------------------------------- lifecycle --

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._buffer = b""

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise ServiceUnavailableError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        sock.settimeout(self.timeout)
        self._sock = sock
        self._buffer = b""
        return sock

    # ------------------------------------------------------------ request --

    def request(self, body: Dict[str, Any]) -> ServiceResponse:
        """Send one request object, read one response line."""
        payload = json.dumps(body, allow_nan=False).encode("utf-8") + b"\n"
        for attempt in (0, 1):
            sock = self._connect()
            try:
                sock.sendall(payload)
                line = self._read_line(sock)
                break
            except (OSError, EOFError) as exc:
                self.close()
                if attempt == 1:
                    raise ServiceUnavailableError(
                        f"service at {self.host}:{self.port} dropped the "
                        f"connection: {exc}"
                    ) from exc
        try:
            parsed = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceProtocolError(
                f"service response is not valid JSON: {exc}"
            ) from exc
        if not isinstance(parsed, dict):
            raise ServiceProtocolError("service response is not an object")
        version = parsed.get("version")
        if version != SERVICE_PROTOCOL_VERSION:
            raise ServiceProtocolError(
                f"service protocol version mismatch: got {version!r}, "
                f"expected {SERVICE_PROTOCOL_VERSION}"
            )
        return ServiceResponse(parsed)

    def _read_line(self, sock: socket.socket) -> bytes:
        while b"\n" not in self._buffer:
            if len(self._buffer) > self.max_line_bytes:
                raise ServiceProtocolError(
                    f"service response line exceeds {self.max_line_bytes} bytes"
                )
            chunk = sock.recv(65536)
            if not chunk:
                raise EOFError("connection closed mid-response")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    # ---------------------------------------------------------------- ops --

    def ping(self) -> ServiceResponse:
        return self.request({"op": "ping"}).raise_for_status()

    def stats(self) -> ServiceResponse:
        return self.request({"op": "stats"}).raise_for_status()

    def submit(self, scenario: Dict[str, Any]) -> ServiceResponse:
        """Submit a scenario document. Returns the raw typed response;
        call :meth:`ServiceResponse.raise_for_status` to turn refusals
        into exceptions."""
        return self.request({"op": "submit", "scenario": scenario})

    def shutdown(self) -> ServiceResponse:
        """Ask the server to stop accepting connections and exit."""
        return self.request({"op": "shutdown"})
