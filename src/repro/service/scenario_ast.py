"""The versioned scenario AST: validation, canonicalization, notarization.

A standing service cannot accept what the library API accepts — live
``FinancialNetwork`` objects, ``Engine`` instances, arbitrary
``VertexProgram`` subclasses — because all of those are code, and code
must never cross the service's trust boundary. What crosses instead is a
**JSON document** describing a scenario entirely in terms of whitelisted,
bounded primitives the server already ships:

::

    {
      "version": 1,
      "name": "core-shock-q3",
      "network":  {"generator": "core-periphery",
                   "params": {"num_banks": 50, "core_size": 10},
                   "seed": 7},
      "shock":    {"targets": [0, 1], "severity": 0.5},
      "program":  "eisenberg-noe",
      "engine":   {"name": "secure", "options": {"backend": "bitsliced"}},
      "preset":   "demo",
      "overrides": {"output_epsilon": 0.4},
      "iterations": "auto",
      "seed": 42
    }

Following the GraphProgram code-signing pattern, the document passes
three gates before an engine ever sees it:

1. **Whitelist validation** (:func:`validate_scenario`) — the type system
   *is* the whitelist: unknown top-level keys, unknown generators,
   engines or programs, non-whitelisted engine options or config
   overrides, wrong types (``bool`` is not an ``int``), non-finite
   floats, and out-of-bounds sizes are all rejected with a named
   :class:`~repro.exceptions.ScenarioValidationError`. There is no
   escape hatch: a program is a registry *name*, never a class; an
   engine option is a scalar from a closed set, never an object. The
   document also has a statically-determinable maximum cost — bank
   count, iteration count, and worker-visible sizes are capped.
2. **Canonicalization** (:func:`canonical_json`) — sorted keys, compact
   separators, defaults made explicit — so equality of scenarios is
   equality of strings and the document digest is stable across clients.
3. **Notarization** (:func:`notarize`) — the validated document is built
   into a resolved run and stamped with the same content-based
   :func:`~repro.api.cache.run_fingerprint` digest the scenario cache
   and the accountant's audit ledger key on. Two documents that would
   produce the same released bits get the same fingerprint, which is
   what lets the server single-flight them into one engine run and one
   epsilon charge.

The notarization is a trust stamp, not a privilege gate: the server
re-validates every submitted document itself and never executes anything
a client claims was "already notarized".
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.api.cache import run_fingerprint
from repro.api.session import ResolvedRun, StressTest
from repro.core.config import available_presets
from repro.core.lifecycle import MAX_WINDOWS as LIFECYCLE_MAX_WINDOWS
from repro.privacy.admission import release_epsilon
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import DStressError, ScenarioValidationError
from repro.finance.network import FinancialNetwork
from repro.finance.scenarios import Shock, apply_shock
from repro.graphgen import (
    CorePeripheryParams,
    RandomNetworkParams,
    ScaleFreeParams,
    core_periphery_network,
    random_network,
    scale_free_network,
)

__all__ = [
    "AST_VERSION",
    "MAX_BANKS",
    "MAX_ITERATIONS",
    "NotarizedScenario",
    "build_network",
    "build_session",
    "canonical_json",
    "document_digest",
    "notarize",
    "validate_scenario",
]

#: Schema version of the scenario document. Bump on any incompatible
#: change; documents declaring another version are rejected, never
#: half-interpreted.
AST_VERSION = 1

#: Service-side boundedness caps: a notarized scenario's cost must be
#: statically determinable, so the document cannot ask for more than this.
MAX_BANKS = 512
MAX_ITERATIONS = 512
MAX_NAME_LENGTH = 200
MAX_SHOCK_TARGETS = MAX_BANKS
#: Upper bound on any single epsilon request — far above every sane
#: budget (ln 2 per year), it only exists so the arithmetic downstream
#: never sees an absurd magnitude.
MAX_EPSILON = 16.0

_GENERATORS: Dict[str, Tuple[type, Callable[..., FinancialNetwork]]] = {
    "core-periphery": (CorePeripheryParams, core_periphery_network),
    "random": (RandomNetworkParams, random_network),
    "scale-free": (ScaleFreeParams, scale_free_network),
}

#: Engine whitelist: the closed set of backends a service will run, and
#: for each the closed set of constructor options a document may set.
#: Notably *not* whitelisted: ``transport`` beyond the in-process string
#: specs (a transport instance is live code), and any engine registered
#: at runtime by library callers — the service's whitelist is its own.
_ENGINE_OPTIONS: Dict[str, Dict[str, Callable[[str, Any], Any]]] = {}

#: Config override whitelist: scalar fields of
#: :class:`~repro.core.config.DStressConfig` a document may override.
#: Structured fields (``fmt``, ``group``) are reachable only through the
#: named presets.
_OVERRIDE_FIELDS: Dict[str, Callable[[str, Any], Any]] = {}


def _fail(message: str) -> None:
    raise ScenarioValidationError(message)


def _require_int(where: str, value: Any, lo: int, hi: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(f"{where} must be an int, got {type(value).__name__}")
    if not lo <= value <= hi:
        _fail(f"{where} must lie in [{lo}, {hi}], got {value}")
    return value


def _require_float(where: str, value: Any, lo: float, hi: float) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"{where} must be a number, got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value):
        _fail(f"{where} must be finite, got {value!r}")
    if not lo <= value <= hi:
        _fail(f"{where} must lie in [{lo:g}, {hi:g}], got {value!r}")
    return value


def _require_bool(where: str, value: Any) -> bool:
    if not isinstance(value, bool):
        _fail(f"{where} must be a bool, got {type(value).__name__}")
    return value


def _require_str(where: str, value: Any, choices: Sequence[str]) -> str:
    if not isinstance(value, str):
        _fail(f"{where} must be a string, got {type(value).__name__}")
    if value not in choices:
        _fail(f"{where} must be one of {sorted(choices)}, got {value!r}")
    return value


def _int_field(lo: int, hi: int) -> Callable[[str, Any], int]:
    return lambda where, value: _require_int(where, value, lo, hi)


def _float_field(lo: float, hi: float) -> Callable[[str, Any], float]:
    return lambda where, value: _require_float(where, value, lo, hi)


def _str_field(*choices: str) -> Callable[[str, Any], str]:
    return lambda where, value: _require_str(where, value, choices)


def _require_int_list(
    where: str, value: Any, lo: int, hi: int, max_length: int
) -> Tuple[int, ...]:
    if not isinstance(value, list) or not value:
        _fail(f"{where} must be a non-empty list of round counts")
    if len(value) > max_length:
        _fail(f"{where} holds {len(value)} windows, cap is {max_length}")
    return tuple(
        _require_int(f"{where}[{i}]", item, lo, hi) for i, item in enumerate(value)
    )


#: Release-seam options every engine exposes (the lifecycle is shared, so
#: the whitelist is too): continual release is wire-submittable on any
#: backend. Cross-field rules (windows must sum to the iteration count)
#: live in :func:`validate_scenario` — they span sections.
_RELEASE_OPTIONS = {
    "release": _str_field("oneshot", "windowed"),
    "windows": lambda where, value: _require_int_list(
        where, value, 1, MAX_ITERATIONS, LIFECYCLE_MAX_WINDOWS
    ),
    "window_epsilon": _float_field(1e-6, MAX_EPSILON),
}

_ENGINE_OPTIONS.update(
    {
        "plaintext": {**_RELEASE_OPTIONS},
        "fixed": {**_RELEASE_OPTIONS},
        "secure": {"backend": _str_field("scalar", "bitsliced"), **_RELEASE_OPTIONS},
        "naive-mpc": {**_RELEASE_OPTIONS},
        "sharded": {"shards": _int_field(1, 16), **_RELEASE_OPTIONS},
        "async": {
            "tasks": _int_field(1, 64),
            "overlap": lambda where, value: _require_bool(where, value),
            "transport": _str_field("memory", "wan"),
            **_RELEASE_OPTIONS,
        },
        "secure-async": {
            "tasks": _int_field(1, 64),
            "overlap": lambda where, value: _require_bool(where, value),
            "transport": _str_field("memory", "wan"),
            "backend": _str_field("scalar", "bitsliced"),
            **_RELEASE_OPTIONS,
        },
    }
)

_OVERRIDE_FIELDS.update(
    {
        "collusion_bound": _int_field(1, 16),
        "output_epsilon": _float_field(1e-6, MAX_EPSILON),
        "dlog_half_width": _int_field(2, 1 << 20),
        "edge_noise_alpha": _float_field(1e-6, 1.0 - 1e-6),
        "noise_precision_bits": _int_field(1, 64),
        "aggregation_fanout": _int_field(2, 1024),
        "gmw_mode": _str_field("ot", "beaver"),
        "pad_transfers": lambda where, value: _require_bool(where, value),
        "wan_latency_seconds": _float_field(0.0, 10.0),
        "wan_jitter": _float_field(0.0, 1.0),
        "seed": _int_field(-(2**62), 2**62),
    }
)


def _check_keys(where: str, mapping: Mapping[str, Any], allowed: Sequence[str]) -> None:
    if not isinstance(mapping, dict):
        _fail(f"{where} must be a JSON object, got {type(mapping).__name__}")
    for key in mapping:
        if not isinstance(key, str):
            _fail(f"{where} has a non-string key {key!r}")
        if key not in allowed:
            _fail(
                f"{where} has unknown key {key!r}; allowed keys: "
                + ", ".join(sorted(allowed))
            )


@dataclass(frozen=True)
class ValidatedScenario:
    """The typed result of :func:`validate_scenario`: every field checked,
    bounded, and whitelisted — safe to build and execute."""

    name: str
    generator: str
    generator_params: Dict[str, Any]
    network_seed: int
    shock_targets: Optional[Tuple[int, ...]]
    shock_severity: float
    program: str
    engine: str
    engine_options: Dict[str, Any]
    preset: Optional[str]
    overrides: Dict[str, Any]
    epsilon: Optional[float]
    iterations: Union[int, str]
    max_iterations: Optional[int]
    seed: Optional[int]
    degree_bound: Optional[int]

    def document(self) -> Dict[str, Any]:
        """The canonical document form: every default explicit, so two
        scenarios that validate to the same thing serialize to the same
        bytes (and therefore the same digest)."""
        doc: Dict[str, Any] = {
            "version": AST_VERSION,
            "name": self.name,
            "network": {
                "generator": self.generator,
                "params": dict(self.generator_params),
                "seed": self.network_seed,
            },
            "program": self.program,
            "engine": {"name": self.engine, "options": dict(self.engine_options)},
            "overrides": dict(self.overrides),
            "iterations": self.iterations,
        }
        if self.shock_targets is not None:
            doc["shock"] = {
                "targets": list(self.shock_targets),
                "severity": self.shock_severity,
            }
        if self.preset is not None:
            doc["preset"] = self.preset
        if self.epsilon is not None:
            doc["epsilon"] = self.epsilon
        if self.max_iterations is not None:
            doc["max_iterations"] = self.max_iterations
        if self.seed is not None:
            doc["seed"] = self.seed
        if self.degree_bound is not None:
            doc["degree_bound"] = self.degree_bound
        return doc


_TOP_LEVEL_KEYS = (
    "version",
    "name",
    "network",
    "shock",
    "program",
    "engine",
    "preset",
    "overrides",
    "epsilon",
    "iterations",
    "max_iterations",
    "seed",
    "degree_bound",
)


def _validate_network(section: Any) -> Tuple[str, Dict[str, Any], int]:
    _check_keys("network", section, ("generator", "params", "seed"))
    if "generator" not in section:
        _fail("network needs a 'generator'")
    generator = _require_str("network.generator", section["generator"], _GENERATORS)
    params_cls, _factory = _GENERATORS[generator]
    raw_params = section.get("params", {})
    allowed = {f.name: f for f in fields(params_cls)}
    _check_keys("network.params", raw_params, tuple(allowed))
    params: Dict[str, Any] = {}
    for key, value in raw_params.items():
        where = f"network.params.{key}"
        declared = allowed[key].type
        if "int" in str(declared):
            params[key] = _require_int(where, value, 0, max(MAX_BANKS, 1 << 20))
        else:
            params[key] = _require_float(where, value, 0.0, 1e9)
    # the dataclass's own __post_init__ still runs (shape constraints like
    # core_size <= num_banks); the service adds the boundedness cap
    banks = params.get("num_banks", params_cls().num_banks)
    if banks > MAX_BANKS:
        _fail(f"network.params.num_banks must be at most {MAX_BANKS}, got {banks}")
    try:
        params_cls(**params)
    except DStressError as exc:
        _fail(f"network.params rejected by {params_cls.__name__}: {exc}")
    seed = _require_int("network.seed", section.get("seed", 0), -(2**62), 2**62)
    return generator, params, seed


def _validate_shock(section: Any) -> Tuple[Tuple[int, ...], float]:
    _check_keys("shock", section, ("targets", "severity"))
    raw_targets = section.get("targets")
    if not isinstance(raw_targets, list) or not raw_targets:
        _fail("shock.targets must be a non-empty list of bank ids")
    if len(raw_targets) > MAX_SHOCK_TARGETS:
        _fail(f"shock.targets holds {len(raw_targets)} ids, cap is {MAX_SHOCK_TARGETS}")
    targets = tuple(
        _require_int(f"shock.targets[{i}]", t, 0, MAX_BANKS - 1)
        for i, t in enumerate(raw_targets)
    )
    if len(set(targets)) != len(targets):
        _fail("shock.targets contains duplicate bank ids")
    severity = _require_float("shock.severity", section.get("severity"), 0.0, 1.0)
    return targets, severity


def _validate_engine(section: Any) -> Tuple[str, Dict[str, Any]]:
    if isinstance(section, str):
        section = {"name": section}
    _check_keys("engine", section, ("name", "options"))
    if "name" not in section:
        _fail("engine needs a 'name'")
    name = _require_str("engine.name", section["name"], _ENGINE_OPTIONS)
    allowed = _ENGINE_OPTIONS[name]
    raw_options = section.get("options", {})
    _check_keys("engine.options", raw_options, tuple(allowed))
    options = {
        key: allowed[key](f"engine.options.{key}", value)
        for key, value in raw_options.items()
    }
    return name, options


def validate_scenario(doc: Any) -> ValidatedScenario:
    """Validate a raw scenario document against the whitelist.

    Returns the typed :class:`ValidatedScenario`; raises
    :class:`~repro.exceptions.ScenarioValidationError` on the first
    violation. Nothing is built and nothing is charged — validation is
    pure inspection.
    """
    _check_keys("scenario", doc, _TOP_LEVEL_KEYS)
    version = doc.get("version")
    if version != AST_VERSION:
        _fail(
            f"unsupported scenario version {version!r} "
            f"(this service speaks version {AST_VERSION})"
        )
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        _fail("scenario needs a non-empty string 'name'")
    if len(name) > MAX_NAME_LENGTH:
        _fail(f"scenario name exceeds {MAX_NAME_LENGTH} characters")
    if "network" not in doc:
        _fail("scenario needs a 'network' section")
    generator, params, network_seed = _validate_network(doc["network"])

    shock_targets: Optional[Tuple[int, ...]] = None
    shock_severity = 0.0
    if "shock" in doc:
        shock_targets, shock_severity = _validate_shock(doc["shock"])
        num_banks = params.get("num_banks", _GENERATORS[generator][0]().num_banks)
        for target in shock_targets:
            if target >= num_banks:
                _fail(
                    f"shock targets bank {target} but the network has only "
                    f"{num_banks} banks"
                )

    program = doc.get("program")
    # the program whitelist is the closed set of built-in names — never a
    # class, never a callable, and aliases resolve to the same canonical
    if not isinstance(program, str):
        _fail("scenario 'program' must be a registry name string")
    from repro.api.registry import get_program

    try:
        program = get_program(program).name
    except DStressError as exc:
        _fail(f"program: {exc}")

    if "engine" not in doc:
        _fail("scenario needs an 'engine' section")
    engine, engine_options = _validate_engine(doc["engine"])

    preset = doc.get("preset")
    if preset is not None:
        preset = _require_str("preset", preset, available_presets())

    raw_overrides = doc.get("overrides", {})
    _check_keys("overrides", raw_overrides, tuple(_OVERRIDE_FIELDS))
    overrides = {
        key: _OVERRIDE_FIELDS[key](f"overrides.{key}", value)
        for key, value in raw_overrides.items()
    }

    epsilon = doc.get("epsilon")
    if epsilon is not None:
        epsilon = _require_float("epsilon", epsilon, 1e-6, MAX_EPSILON)

    iterations: Union[int, str] = doc.get("iterations", "auto")
    if iterations != "auto":
        iterations = _require_int("iterations", iterations, 1, MAX_ITERATIONS)
    max_iterations = doc.get("max_iterations")
    if max_iterations is not None:
        max_iterations = _require_int("max_iterations", max_iterations, 1, MAX_ITERATIONS)

    # Cross-field release-seam rules (the engine constructor re-checks the
    # intra-option ones; the iteration match spans sections, so the
    # notary must enforce it before anything resolves or charges).
    release = engine_options.get("release", "oneshot")
    if release != "windowed":
        for key in ("windows", "window_epsilon"):
            if key in engine_options:
                _fail(f"engine.options.{key} requires engine.options.release='windowed'")
    else:
        if "windows" not in engine_options:
            _fail("engine.options.release='windowed' needs engine.options.windows")
        if iterations == "auto":
            _fail(
                "release='windowed' needs an explicit 'iterations' count "
                "matching its windows; 'auto' cannot be split into windows"
            )
        total = sum(engine_options["windows"])
        if total != iterations:
            _fail(
                f"engine.options.windows cover {total} rounds but "
                f"'iterations' is {iterations}; they must match exactly"
            )

    seed = doc.get("seed")
    if seed is not None:
        seed = _require_int("seed", seed, -(2**62), 2**62)
    degree_bound = doc.get("degree_bound")
    if degree_bound is not None:
        degree_bound = _require_int("degree_bound", degree_bound, 1, MAX_BANKS)

    return ValidatedScenario(
        name=name,
        generator=generator,
        generator_params=params,
        network_seed=network_seed,
        shock_targets=shock_targets,
        shock_severity=shock_severity,
        program=program,
        engine=engine,
        engine_options=engine_options,
        preset=preset,
        overrides=overrides,
        epsilon=epsilon,
        iterations=iterations,
        max_iterations=max_iterations,
        seed=seed,
        degree_bound=degree_bound,
    )


# --------------------------------------------------------- canonical form --


def canonical_json(doc: Any) -> str:
    """The canonical serialization: sorted keys, compact separators, no
    NaN/Infinity. Equality of canonical strings is the service's
    definition of document equality."""
    try:
        return json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ScenarioValidationError(f"document is not canonical JSON: {exc}") from exc


def document_digest(doc: Any) -> str:
    """SHA-256 of the canonical serialization — the notary's stamp over
    the *document* (the run fingerprint separately stamps the *work*)."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


# ------------------------------------------------------------ materialize --


def build_network(validated: ValidatedScenario) -> FinancialNetwork:
    """Materialize the whitelisted generator (and optional shock)."""
    params_cls, factory = _GENERATORS[validated.generator]
    network = factory(
        params_cls(**validated.generator_params),
        DeterministicRNG(validated.network_seed),
    )
    if validated.shock_targets is not None:
        network = apply_shock(
            network,
            Shock(
                targets=validated.shock_targets,
                severity=validated.shock_severity,
                label=validated.name,
            ),
        )
    return network


def build_session(validated: ValidatedScenario) -> StressTest:
    """A ready-to-run :class:`~repro.api.session.StressTest` for a
    validated scenario — the exact session a library caller would have
    built by hand, so service results are bit-identical to direct runs."""
    session = StressTest(build_network(validated))
    session.program(validated.program)
    session.engine(validated.engine, **validated.engine_options)
    if validated.preset is not None:
        session.preset(validated.preset)
    if validated.overrides:
        session.configure(**validated.overrides)
    if validated.epsilon is not None:
        session.privacy(epsilon=validated.epsilon)
    if validated.seed is not None:
        session.seed(validated.seed)
    if validated.degree_bound is not None:
        session.degree_bound(validated.degree_bound)
    return session


@dataclass(frozen=True)
class NotarizedScenario:
    """A scenario that passed every gate: validated, canonicalized,
    resolved, and fingerprinted.

    ``fingerprint`` is the :func:`~repro.api.cache.run_fingerprint`
    content digest — the same key the scenario caches and the
    accountant's audit ledger use, so a service hit, a batch-cache hit,
    and a ledger line all name the same run. ``digest`` stamps the
    canonical document itself.
    """

    name: str
    document: Dict[str, Any]
    canonical: str
    digest: str
    fingerprint: str
    resolved: ResolvedRun
    releases: bool
    epsilon: float


def notarize(doc: Any) -> NotarizedScenario:
    """Validate, canonicalize, resolve, and fingerprint one document.

    Raises :class:`~repro.exceptions.ScenarioValidationError` for any
    document that fails a gate — including the (defensive) case of a
    whitelisted document whose resolved run is unfingerprintable, since
    an unfingerprintable run could never be deduplicated or audited.
    """
    validated = validate_scenario(doc)
    canonical_doc = validated.document()
    canonical = canonical_json(canonical_doc)
    try:
        resolved = build_session(validated).resolve(
            validated.iterations,
            max_iterations=validated.max_iterations,
            label=validated.name,
        )
    except ScenarioValidationError:
        raise
    except DStressError as exc:
        raise ScenarioValidationError(
            f"scenario {validated.name!r} failed to resolve: {exc}"
        ) from exc
    fingerprint = run_fingerprint(resolved)
    if fingerprint is None:  # pragma: no cover - whitelisted inputs always token
        raise ScenarioValidationError(
            f"scenario {validated.name!r} resolved to an unfingerprintable "
            "run; notarized scenarios must be content-addressable"
        )
    releases = bool(resolved.engine.releases_output)
    try:
        # priced by the shared admission authority: a windowed run's cost
        # is its per-window schedule, not the config's headline epsilon —
        # and an unchargeable schedule is refused here, before admission
        epsilon = release_epsilon(resolved.engine, resolved.config) if releases else 0.0
    except DStressError as exc:
        raise ScenarioValidationError(
            f"scenario {validated.name!r} has an unchargeable release "
            f"schedule: {exc}"
        ) from exc
    return NotarizedScenario(
        name=validated.name,
        document=canonical_doc,
        canonical=canonical,
        digest=hashlib.sha256(canonical.encode("utf-8")).hexdigest(),
        fingerprint=fingerprint,
        resolved=resolved,
        releases=releases,
        epsilon=epsilon,
    )
