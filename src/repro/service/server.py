""":class:`StressTestService` — the long-running stress-test server.

One asyncio TCP server speaking newline-delimited JSON (one request
object per line, one response object per line — the service sibling of
the :mod:`repro.net.wire` length-prefix rule: the receiver always knows
where a message ends, so garbage is rejected at the line, never by
wandering into the stream). Ops: ``ping``, ``submit``, ``stats``,
``shutdown``.

A ``submit`` carries a scenario document (see
:mod:`repro.service.scenario_ast`) and walks four gates, all on the
event-loop thread so their composition is atomic with respect to every
other in-flight request:

1. **Notarize.** Whitelist-validate, canonicalize, resolve, fingerprint.
   A malformed or unwhitelisted document gets a typed ``rejected``
   response before anything is built further or charged.
2. **Single-flight.** If an identical scenario (same notarized
   fingerprint) is already executing, this request *joins* it: no second
   engine run, no second charge — N concurrent identical requests cost
   one run and one epsilon, and all N get bit-identical responses.
3. **Cache.** A fingerprint already released (this replica's cache, or
   the fleet-shared :class:`~repro.service.cachetier.RemoteScenarioCache`
   tier) is answered from the cache with zero compute and zero charge —
   re-publishing an already-released value consumes no fresh privacy.
4. **Admission.** A releasing scenario atomically pre-charges the shared
   :class:`~repro.privacy.budget.PrivacyAccountant` *before* it is
   scheduled (the PR-5 pre-charge/refund machinery: `charge` either
   records the draw or raises, there is no check-then-charge gap).
   Over budget ⇒ typed ``over-budget`` response, books untouched. A run
   that subsequently *fails* refunds its pre-charge — nothing was
   released, so nothing was spent — and answers with a typed ``error``.

Execution happens on a bounded worker pool (a ``ThreadPoolExecutor`` of
``max_workers`` threads; engines are synchronous and their intra-run
process pools are env-scrubbed, see :mod:`repro.api.pool`). Every
response is typed from the :class:`~repro.exceptions.ServiceError`
taxonomy — rejected / over-budget / malformed / failed — **never a
hang**: any exception a handler can raise is mapped onto a response
line, and a connection that sends garbage gets an error line, not
silence.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from typing import Any, Dict, Optional

from repro.api.cache import ScenarioCacheBase
from repro.api.session import execute_resolved
from repro.exceptions import (
    DStressError,
    PrivacyBudgetExceeded,
    ScenarioValidationError,
    ServiceProtocolError,
)
from repro.obs.trace import current_recorder
from repro.privacy.admission import precharge, release_schedule
from repro.privacy.budget import PrivacyAccountant
from repro.service.scenario_ast import NotarizedScenario, notarize

__all__ = ["StressTestService", "SERVICE_PROTOCOL_VERSION", "result_payload"]

#: Version stamped into every response; clients refuse a mismatch.
SERVICE_PROTOCOL_VERSION = 1

#: Longest request line the server will read (the JSON-lines analogue of
#: the wire layer's frame cap: refused before allocation balloons).
DEFAULT_MAX_LINE_BYTES = 1024 * 1024


def result_payload(result: Any) -> Dict[str, Any]:
    """The JSON-safe, bit-comparable essence of a released run result.

    Floats survive JSON round-trips exactly (``repr``-based encoding), so
    two payloads comparing equal means the underlying releases are
    bit-identical — the same contract :func:`repro.net.cluster` uses for
    cluster summaries.
    """
    payload = {
        "engine": result.engine,
        "program": result.program,
        "aggregate": result.aggregate,
        "pre_noise_aggregate": result.pre_noise_aggregate,
        "noise_raw": result.noise_raw,
        "trajectory": list(result.trajectory),
        "iterations": result.iterations,
        "epsilon": result.epsilon,
        "extras": {k: v for k, v in result.extras.items()},
    }
    releases = getattr(result, "releases", None)
    if releases:
        # continual release: the per-window outputs ARE the product — a
        # windowed submission's client sees every published value, not
        # just the final one
        payload["releases"] = [asdict(record) for record in releases]
    return payload


class StressTestService:
    """The standing service: submit notarized scenarios, get releases.

    Parameters
    ----------
    accountant:
        The shared privacy budget every admitted release draws from.
        ``None`` runs without admission control (demo/plaintext fleets).
    cache:
        A :class:`~repro.api.cache.ScenarioCacheBase` fronting released
        results — the in-memory cache, the on-disk
        :class:`~repro.api.diskcache.PersistentScenarioCache`, or the
        fleet-shared :class:`~repro.service.cachetier.RemoteScenarioCache`.
    max_workers:
        Bound on concurrently-executing engine runs. Further admitted
        requests queue on the executor (admission happens first, so the
        budget semantics are unaffected by queueing order).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        accountant: Optional[PrivacyAccountant] = None,
        cache: Optional[ScenarioCacheBase] = None,
        max_workers: int = 2,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        name: str = "dstress-service",
    ) -> None:
        if max_workers < 1:
            raise ServiceProtocolError("max_workers must be at least 1")
        self.host = host
        self.port = port
        self.name = name
        self.accountant = accountant
        self.cache = cache
        self.max_line_bytes = max_line_bytes
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=f"{name}-worker"
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._closed = asyncio.Event()
        #: fingerprint -> future resolving to the shared response body;
        #: the single-flight table.
        self._inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        #: open connection handlers, cancelled at shutdown so a client
        #: holding its connection open cannot orphan a task.
        self._connections: "set[asyncio.Task[None]]" = set()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "admitted": 0,
            "rejected": 0,
            "over_budget": 0,
            "deduped": 0,
            "cache_hits": 0,
            "engine_runs": 0,
            "failed": 0,
            "malformed": 0,
        }

    # ---------------------------------------------------------- lifecycle --

    async def start(self) -> int:
        """Bind and start serving; returns the actually-bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=self.max_line_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_until_closed(self) -> None:
        """Block until :meth:`close` (or a ``shutdown`` op) is called."""
        await self._closed.wait()
        await self._shutdown()

    async def close(self) -> None:
        self._closed.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # let in-flight runs finish: their futures answer joined waiters
        pending = [f for f in self._inflight.values() if not f.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._executor.shutdown(wait=True)

    # --------------------------------------------------------- connection --

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.counters["malformed"] += 1
                    await self._send(
                        writer,
                        self._error_body(
                            "ServiceProtocolError",
                            f"request line exceeds {self.max_line_bytes} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                response = await self._dispatch_line(line)
                await self._send(writer, response)
                if response.get("op") == "shutdown":
                    self._closed.set()
                    break
        except asyncio.CancelledError:
            pass  # deliberate shutdown cancellation: close quietly
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, body: Dict[str, Any]) -> None:
        writer.write(json.dumps(body, allow_nan=False).encode("utf-8") + b"\n")
        await writer.drain()

    def _error_body(
        self, error: str, message: str, status: str = "error"
    ) -> Dict[str, Any]:
        return {
            "ok": False,
            "version": SERVICE_PROTOCOL_VERSION,
            "status": status,
            "error": error,
            "message": message,
        }

    async def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        self.counters["requests"] += 1
        try:
            request = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.counters["malformed"] += 1
            return self._error_body(
                "ServiceProtocolError", f"request is not valid JSON: {exc}"
            )
        if not isinstance(request, dict) or not isinstance(request.get("op"), str):
            self.counters["malformed"] += 1
            return self._error_body(
                "ServiceProtocolError", "request must be an object with a string 'op'"
            )
        op = request["op"]
        recorder = current_recorder()
        with recorder.span("service.request", op=op):
            if op == "ping":
                return self._ok(op="ping", server=self.name)
            if op == "stats":
                return self._stats_body()
            if op == "shutdown":
                return self._ok(op="shutdown")
            if op == "submit":
                return await self._submit(request.get("scenario"))
        self.counters["malformed"] += 1
        return self._error_body(
            "ServiceProtocolError",
            f"unknown op {op!r}; supported: ping, stats, submit, shutdown",
        )

    def _ok(self, **fields: Any) -> Dict[str, Any]:
        body = {"ok": True, "version": SERVICE_PROTOCOL_VERSION}
        body.update(fields)
        return body

    def _stats_body(self) -> Dict[str, Any]:
        body = self._ok(op="stats", counters=dict(self.counters))
        if self.accountant is not None:
            body["budget"] = {
                "epsilon_max": self.accountant.epsilon_max,
                "spent": self.accountant.spent,
                "remaining": self.accountant.remaining,
                "period": self.accountant.period,
            }
        if self.cache is not None:
            body["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            }
        body["inflight"] = len(self._inflight)
        return body

    # ------------------------------------------------------------- submit --

    async def _submit(self, doc: Any) -> Dict[str, Any]:
        metrics = current_recorder().metrics if current_recorder().enabled else None
        # Gate 1: notarize. Bounded by the whitelist caps, so validation
        # on the loop thread cannot be weaponized into a stall.
        try:
            notarized = notarize(doc)
        except ScenarioValidationError as exc:
            self.counters["rejected"] += 1
            if metrics is not None:
                metrics.inc("service.rejected")
            return self._error_body(
                "ScenarioValidationError", str(exc), status="rejected"
            )

        # Gate 2: single-flight. Everything from here to the future being
        # installed runs without an await, so two identical requests can
        # never both reach the charge.
        existing = self._inflight.get(notarized.fingerprint)
        if existing is not None:
            self.counters["deduped"] += 1
            if metrics is not None:
                metrics.inc("service.deduped")
            body = dict(await asyncio.shield(existing))
            body["deduped"] = True
            return body

        # Gate 3: the released-results cache (replica-local or fleet tier).
        if self.cache is not None:
            prior = self.cache.lookup(notarized.fingerprint)
            if prior is not None:
                self.counters["cache_hits"] += 1
                if metrics is not None:
                    metrics.inc("service.cache_hits")
                return self._release_body(notarized, prior, cached=True)

        # Gate 4: admission — atomic pre-charge before scheduling, itemized
        # (one ledger line per release window) by the shared
        # repro.privacy.admission authority the engine lifecycle and the
        # batch layer also charge through.
        charge = None
        if self.accountant is not None and notarized.releases:
            try:
                charge = precharge(
                    self.accountant,
                    release_schedule(
                        notarized.resolved.engine,
                        notarized.resolved.config,
                        notarized.name,
                    ),
                    fingerprint=notarized.fingerprint,
                )
            except PrivacyBudgetExceeded as exc:
                self.counters["over_budget"] += 1
                if metrics is not None:
                    metrics.inc("service.over_budget")
                return self._error_body(
                    "PrivacyBudgetExceeded", str(exc), status="over-budget"
                )
        self.counters["admitted"] += 1
        if metrics is not None:
            metrics.inc("service.admitted")

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._inflight[notarized.fingerprint] = future
        try:
            body = await self._execute(notarized, charge)
            future.set_result(body)
        except BaseException as exc:  # pragma: no cover - defensive re-raise
            future.set_exception(exc)
            future.exception()  # consumed: joined waiters re-raise their own
            raise
        finally:
            self._inflight.pop(notarized.fingerprint, None)
        return body

    async def _execute(
        self, notarized: NotarizedScenario, charge: Any
    ) -> Dict[str, Any]:
        """Run the engine on the worker pool; store or refund afterwards."""
        metrics = current_recorder().metrics if current_recorder().enabled else None
        loop = asyncio.get_running_loop()
        self.counters["engine_runs"] += 1
        try:
            result = await loop.run_in_executor(
                self._executor,
                lambda: execute_resolved(notarized.resolved, accountant=None),
            )
        except DStressError as exc:
            self.counters["failed"] += 1
            if metrics is not None:
                metrics.inc("service.failed")
            if charge is not None:
                # the release never happened: the pre-charge goes back
                charge.refund()
            return self._error_body(type(exc).__name__, str(exc))
        except Exception as exc:  # defensive: report, never hang the waiters
            self.counters["failed"] += 1
            if charge is not None:
                charge.refund()
            return self._error_body("ServiceError", f"engine crashed: {exc}")
        if self.cache is not None:
            self.cache.store(notarized.fingerprint, result)
        return self._release_body(notarized, result, cached=False)

    def _release_body(
        self, notarized: NotarizedScenario, result: Any, cached: bool
    ) -> Dict[str, Any]:
        return self._ok(
            op="submit",
            status="released",
            name=notarized.name,
            fingerprint=notarized.fingerprint,
            digest=notarized.digest,
            cached=cached,
            deduped=False,
            epsilon_charged=0.0 if cached else notarized.epsilon,
            result=result_payload(result),
        )
