"""Secret sharing: XOR shares, additive shares and subshare splitting."""

from repro.sharing.additive import reconstruct_additive, share_additive
from repro.sharing.subshare import (
    recombine_received,
    split_bit_subshares,
    split_word_subshares,
    subshare_matrix_bits,
)
from repro.sharing.xor import (
    reconstruct_bit,
    reconstruct_value,
    share_bit,
    share_bits,
    share_value,
    xor_all,
)

__all__ = [
    "recombine_received",
    "reconstruct_additive",
    "reconstruct_bit",
    "reconstruct_value",
    "share_additive",
    "share_bit",
    "share_bits",
    "share_value",
    "split_bit_subshares",
    "split_word_subshares",
    "subshare_matrix_bits",
    "xor_all",
]
