"""Additive secret sharing over ``Z_m``.

Two places in DStress need *additive* rather than XOR sharing:

* the aggregation step combines "random shares" into a seed (§3.6);
* the analysis of the transfer protocol views the bit subshares as integers
  whose *sum* (not XOR) travels through the homomorphic aggregation.

Shares of ``V`` are ``s_1 .. s_n`` with ``V = sum_i s_i (mod m)``; any
``n-1`` of them are jointly uniform.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError

__all__ = ["share_additive", "reconstruct_additive"]


def share_additive(value: int, modulus: int, parties: int, rng: DeterministicRNG) -> List[int]:
    """Split ``value`` into ``parties`` additive shares mod ``modulus``."""
    if parties < 1:
        raise ProtocolError("need at least one party")
    if modulus < 2:
        raise ProtocolError("modulus must be at least 2")
    shares = [rng.randbelow(modulus) for _ in range(parties - 1)]
    shares.append((value - sum(shares)) % modulus)
    return shares


def reconstruct_additive(shares: Sequence[int], modulus: int, signed: bool = False) -> int:
    """Recombine additive shares; ``signed`` maps to ``(-m/2, m/2]``."""
    value = sum(shares) % modulus
    if signed and value > modulus // 2:
        value -= modulus
    return value
