"""Subshare splitting for the message transfer protocol (§3.5).

Strawman #2 onwards, each member ``x`` of the sending block splits its share
``s_x`` into ``k+1`` subshares, one per member of the receiving block, with
``s_x = XOR_y s_{x,y}``. The receivers recombine the subshares they receive
(one from each sender) into fresh shares of the same message; as long as one
member of each block is honest, a coalition always misses at least the
subshare exchanged between the two honest members.

The functions here operate on single bits (the protocol transfers messages
bit by bit from strawman #3 onwards) and on L-bit words for the higher-level
strawmen.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.rng import DeterministicRNG
from repro.sharing.xor import share_bit, share_value, xor_all

__all__ = [
    "split_bit_subshares",
    "split_word_subshares",
    "recombine_received",
    "subshare_matrix_bits",
]


def split_bit_subshares(share_bit_value: int, receivers: int, rng: DeterministicRNG) -> List[int]:
    """Split one sender's bit share into one subshare per receiver."""
    return share_bit(share_bit_value, receivers, rng)


def split_word_subshares(share_word: int, bits: int, receivers: int, rng: DeterministicRNG) -> List[int]:
    """Split one sender's L-bit share into one L-bit subshare per receiver."""
    return share_value(share_word, bits, receivers, rng)


def subshare_matrix_bits(
    sender_shares: Sequence[int], receivers: int, rng: DeterministicRNG
) -> List[List[int]]:
    """Split every sender's bit share: result[x][y] is sender x's subshare
    for receiver y. XOR over both indices equals the original message bit."""
    return [split_bit_subshares(share, receivers, rng) for share in sender_shares]


def recombine_received(received: Sequence[int]) -> int:
    """Receiver-side recombination: XOR the subshares received from every
    sender into this receiver's fresh share of the message."""
    return xor_all(list(received))
