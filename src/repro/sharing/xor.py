"""XOR secret sharing — the share representation used throughout DStress.

A value ``V`` is shared among ``n`` parties as shares ``s_1 .. s_n`` with
``V = s_1 XOR ... XOR s_n`` (§3, "Secure multiparty computation"). Any
``n-1`` shares are jointly uniform and independent of ``V``, which is the
information-theoretic basis of the collusion bound: a block of ``k+1`` nodes
tolerates ``k`` colluders.

Values are L-bit integers (the paper's prototype used 12-bit shares); bit
``t`` of the value is shared as bit ``t`` of each share, so the same shares
feed both the GMW engine (bit by bit) and the transfer protocol.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError

__all__ = [
    "share_bit",
    "share_bits",
    "share_value",
    "reconstruct_bit",
    "reconstruct_value",
    "xor_all",
]


def xor_all(values: Sequence[int]) -> int:
    """XOR-fold a sequence of integers."""
    result = 0
    for value in values:
        result ^= value
    return result


def share_bit(bit: int, parties: int, rng: DeterministicRNG) -> List[int]:
    """Split one bit into ``parties`` XOR shares."""
    if bit not in (0, 1):
        raise ProtocolError("bit must be 0 or 1")
    if parties < 1:
        raise ProtocolError("need at least one party")
    shares = [rng.randbit() for _ in range(parties - 1)]
    shares.append(bit ^ xor_all(shares))
    return shares


def share_value(value: int, bits: int, parties: int, rng: DeterministicRNG) -> List[int]:
    """Split an L-bit value into ``parties`` XOR shares (as L-bit ints).

    ``value`` is interpreted modulo ``2**bits`` (two's complement for
    negatives), matching the fixed-point encoding used in the MPC circuits.
    """
    if parties < 1:
        raise ProtocolError("need at least one party")
    if bits < 1:
        raise ProtocolError("need at least one bit")
    mask = (1 << bits) - 1
    value &= mask
    shares = [rng.randbits(bits) for _ in range(parties - 1)]
    shares.append(value ^ xor_all(shares))
    return shares


def share_bits(value: int, bits: int, parties: int, rng: DeterministicRNG) -> List[List[int]]:
    """Share an L-bit value bit-by-bit: result[t][p] is party p's share of
    bit t (bit 0 = least significant)."""
    word_shares = share_value(value, bits, parties, rng)
    return [[(share >> t) & 1 for share in word_shares] for t in range(bits)]


def reconstruct_bit(shares: Sequence[int]) -> int:
    """Recombine XOR shares of a single bit."""
    for share in shares:
        if share not in (0, 1):
            raise ProtocolError("bit shares must be 0 or 1")
    return xor_all(shares)


def reconstruct_value(shares: Sequence[int], bits: int, signed: bool = False) -> int:
    """Recombine XOR shares of an L-bit value.

    With ``signed=True`` the result is interpreted as two's complement.
    """
    mask = (1 << bits) - 1
    value = xor_all(shares) & mask
    if signed and value >> (bits - 1):
        value -= 1 << bits
    return value
