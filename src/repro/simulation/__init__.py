"""Deployment simulation: traffic metering, cost model, projections."""

from repro.simulation.estimator import DeploymentEstimate, ScalabilityEstimator
from repro.simulation.naive_baseline import (
    NaiveBaselineFit,
    estimate_monolithic_seconds,
    fit_naive_baseline,
    matrix_multiply_circuit,
    measure_matmul_seconds,
)
from repro.simulation.netsim import NodeStats, PhaseTimer, TrafficMeter
from repro.simulation.timing import (
    PAPER_COST_CONSTANTS,
    CostConstants,
    measure_cost_constants,
)

__all__ = [
    "CostConstants",
    "DeploymentEstimate",
    "NaiveBaselineFit",
    "NodeStats",
    "PAPER_COST_CONSTANTS",
    "PhaseTimer",
    "ScalabilityEstimator",
    "TrafficMeter",
    "estimate_monolithic_seconds",
    "fit_naive_baseline",
    "matrix_multiply_circuit",
    "measure_cost_constants",
    "measure_matmul_seconds",
]
