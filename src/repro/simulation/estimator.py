"""Scalability estimator: the Figure 6 projection pipeline (§5.5).

Combines per-operation cost constants with exact protocol operation counts
to project end-to-end completion time and per-node traffic for deployments
far larger than the simulation can execute — exactly how the paper reaches
its N = 1750 / 4.8 hours / 750 MB estimates.

Operation counts come from the real circuits (built at the target degree
bound) and the real transfer-protocol formulas, so the projection and the
executable engine share one source of truth. The assumptions mirror §5.5:
a conservative ``D``, block size ``k+1``, ``I`` iterations, a two-level
aggregation tree of fanout 100, and no overlap between the blocks a node
serves in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

from repro.core.aggregation import partial_sum_width
from repro.core.program import VertexProgram
from repro.mpc.noise_circuit import build_noised_sum_bits_circuit, build_partial_sum_circuit
from repro.simulation.timing import CostConstants
from repro.transfer.protocol import TransferTraffic

__all__ = ["DeploymentEstimate", "ScalabilityEstimator"]


@dataclass(frozen=True)
class DeploymentEstimate:
    """Projected cost of one end-to-end run."""

    num_nodes: int
    degree_bound: int
    block_size: int
    iterations: int
    seconds_total: float
    seconds_init: float
    seconds_computation: float
    seconds_communication: float
    seconds_aggregation: float
    traffic_per_node_bytes: float

    @property
    def minutes_total(self) -> float:
        return self.seconds_total / 60.0

    @property
    def hours_total(self) -> float:
        return self.seconds_total / 3600.0

    @property
    def traffic_per_node_mb(self) -> float:
        return self.traffic_per_node_bytes / 1e6


class ScalabilityEstimator:
    """Projects Figure 6 curves for a given program and cost constants."""

    def __init__(
        self,
        program: VertexProgram,
        constants: CostConstants,
        collusion_bound: int = 19,
        element_bytes: int = 49,
        aggregation_fanout: int = 100,
        ot_bytes_per_and: float = 1.0,
    ) -> None:
        self.program = program
        self.constants = constants
        self.collusion_bound = collusion_bound
        self.element_bytes = element_bytes
        self.aggregation_fanout = aggregation_fanout
        #: Per-party wire bytes per AND gate per counterpart. The paper's
        #: GMW backend uses OT extension with bit-packing (§5.3 credits
        #: [41, 46] for the low traffic); back-solving its Figure 4 "EN
        #: step (D=100)" bar (~2.5 MB/node at block 20) against the EN
        #: update circuit's AND count gives ~1 byte. Our own executable
        #: backends are costed from their real message sizes instead.
        self.ot_bytes_per_and = ot_bytes_per_and

    @property
    def block_size(self) -> int:
        return self.collusion_bound + 1

    # -- operation counts -------------------------------------------------------

    @lru_cache(maxsize=32)
    def _update_circuit_ands(self, degree_bound: int) -> int:
        return self.program.build_update_circuit(degree_bound).stats().and_gates

    @lru_cache(maxsize=8)
    def _aggregation_ands(self, group_inputs: int, input_bits: int) -> int:
        circuit = build_partial_sum_circuit(
            group_inputs, input_bits, partial_sum_width(input_bits, group_inputs)
        )
        return circuit.stats().and_gates

    @lru_cache(maxsize=8)
    def _noising_ands(self, root_inputs: int, input_bits: int) -> int:
        circuit = build_noised_sum_bits_circuit(
            num_inputs=root_inputs,
            value_bits=input_bits,
            alpha=0.999,
            magnitude_bits=18,
            precision_bits=16,
        )
        return circuit.stats().and_gates

    # -- per-phase projections -----------------------------------------------------

    def computation_step_seconds(self, degree_bound: int) -> float:
        """One block's update-circuit evaluation (Fig. 3 'EN/EGJ step').

        Per party: ``2 (k) OTs`` per AND gate (as sender to k others and
        receiver from k others, halved by pipelining both directions).
        """
        ands = self._update_circuit_ands(degree_bound)
        per_party_ots = ands * 2 * self.collusion_bound
        return per_party_ots * self.constants.seconds_per_ot

    def transfer_seconds(self) -> float:
        """One §3.5 edge transfer (§5.2: linear in k, exponentiations
        dominate). Critical path: a sender member's encryptions, then the
        endpoints' and receivers' exponentiations."""
        bits = self.program.fmt.total_bits
        k1 = self.block_size
        exps = k1 * (bits + 1) + k1 * bits + k1 + bits
        return exps * self.constants.seconds_per_exp

    def init_seconds(self, degree_bound: int) -> float:
        registers = len(self.program.state_registers(degree_bound)) + degree_bound
        return registers * self.block_size * self.constants.seconds_per_share * 50

    def aggregation_seconds(self, num_nodes: int) -> float:
        """Two-level tree: parallel group sums, then the noised root."""
        bits = self.program.fmt.total_bits
        group_inputs = min(num_nodes, self.aggregation_fanout)
        group_ands = self._aggregation_ands(group_inputs, bits)
        root_inputs = max(1, math.ceil(num_nodes / self.aggregation_fanout))
        root_bits = partial_sum_width(bits, group_inputs)
        root_ands = self._noising_ands(root_inputs, root_bits)
        per_party = (group_ands + root_ands) * 2 * self.collusion_bound
        return per_party * self.constants.seconds_per_ot

    # -- end-to-end ---------------------------------------------------------------------

    def estimate(self, num_nodes: int, degree_bound: int, iterations: int) -> DeploymentEstimate:
        """Project one deployment, mirroring the §5.5 arithmetic.

        A node serves in ``k+1`` blocks on average and cannot overlap them
        (the paper's conservative assumption), so per-iteration computation
        is ``(k+1) x`` one block's time. Communication: a node coordinates
        its own vertex's ``<= D`` incoming transfers and participates in
        its blocks' outgoing ones; transfers pipeline across edges, leaving
        ``D x`` the single-transfer time per iteration.
        """
        comp_step = self.computation_step_seconds(degree_bound) * self.block_size
        comm_step = self.transfer_seconds() * degree_bound
        init = self.init_seconds(degree_bound) * self.block_size
        agg = self.aggregation_seconds(num_nodes)
        total = init + iterations * (comp_step + comm_step) + agg

        traffic = self._traffic_per_node(num_nodes, degree_bound, iterations)
        return DeploymentEstimate(
            num_nodes=num_nodes,
            degree_bound=degree_bound,
            block_size=self.block_size,
            iterations=iterations,
            seconds_total=total,
            seconds_init=init,
            seconds_computation=iterations * comp_step,
            seconds_communication=iterations * comm_step,
            seconds_aggregation=agg,
            traffic_per_node_bytes=traffic,
        )

    def _traffic_per_node(self, num_nodes: int, degree_bound: int, iterations: int) -> float:
        """Average per-node traffic *generated* (bytes sent), as in §5.3.

        GMW: a node serves in ``k+1`` blocks on average; per computation
        step and block it sends ``ANDs * k * ot_bytes_per_and``.

        Transfers: per edge, the sending block's members put ``(k+1)^2``
        subshares on the wire, and nodes ``u`` and ``v`` relay ``k+1``
        aggregates each; with up to ``N * D`` edges per iteration the
        network-wide bytes divide evenly across nodes in expectation.
        """
        ands = self._update_circuit_ands(degree_bound)
        gmw_per_step = ands * self.collusion_bound * self.ot_bytes_per_and
        gmw_total = gmw_per_step * self.block_size * (iterations + 1)

        transfer = TransferTraffic(
            element_bytes=self.element_bytes,
            block_size=self.block_size,
            message_bits=self.program.fmt.total_bits,
        )
        sub = transfer.subshare_bytes
        sent_per_edge = sub * (self.block_size**2 + 2 * self.block_size)
        transfer_total = iterations * degree_bound * sent_per_edge

        return gmw_total + transfer_total
