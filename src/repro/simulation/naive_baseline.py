"""The naive monolithic-MPC baseline (§5.5).

The obvious alternative to DStress is to run the whole systemic-risk
computation as one giant MPC: the closed form of Eisenberg-Noe essentially
raises an N x N matrix to the I-th power, so the paper wrote a Wysteria
matrix-multiply and measured 1.8 min (N=10) to 40 min (N=25), then
extrapolated O(N^3) to "about 287 years" at N = 1750 — the motivation for
DStress's whole architecture.

We reproduce the same pipeline: build a fixed-point matrix-multiply
circuit, evaluate it under our GMW engine for small N, fit the cubic, and
extrapolate. (Data-dependent sparsity cannot be exploited because the
matrix is private, as the paper notes.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.rng import DeterministicRNG
from repro.obs.clock import now as clock_now
from repro.exceptions import ConfigurationError
from repro.mpc.circuit import Circuit
from repro.mpc.fixedpoint import FixedPointBuilder, FixedPointFormat
from repro.mpc.gmw import GMWEngine

__all__ = [
    "matrix_multiply_circuit",
    "measure_matmul_seconds",
    "NaiveBaselineFit",
    "fit_naive_baseline",
    "estimate_monolithic_seconds",
]


def matrix_multiply_circuit(n: int, fmt: FixedPointFormat) -> Circuit:
    """Fixed-point N x N matrix multiply as a Boolean circuit.

    Inputs ``a_i_j`` and ``b_i_j``; outputs ``c_i_j`` with
    ``c[i][j] = sum_k a[i][k] * b[k][j]`` (N^3 multipliers — the O(N^3)
    the baseline extrapolation rests on).
    """
    if n < 1:
        raise ConfigurationError("matrix dimension must be positive")
    builder = FixedPointBuilder(fmt)
    a = [[builder.fx_input(f"a_{i}_{j}") for j in range(n)] for i in range(n)]
    b = [[builder.fx_input(f"b_{i}_{j}") for j in range(n)] for i in range(n)]
    for i in range(n):
        for j in range(n):
            acc = builder.fx_const(0.0)
            for k in range(n):
                acc = builder.fx_add(acc, builder.fx_mul(a[i][k], b[k][j]))
            builder.output_bus(f"c_{i}_{j}", acc)
    return builder.circuit


def measure_matmul_seconds(
    n: int,
    fmt: FixedPointFormat,
    parties: int = 3,
    rng: DeterministicRNG | None = None,
) -> Tuple[float, int]:
    """Evaluate one N x N matrix multiply under GMW; returns (seconds,
    AND-gate count)."""
    rng = rng if rng is not None else DeterministicRNG("naive-baseline")
    circuit = matrix_multiply_circuit(n, fmt)
    engine = GMWEngine(parties)
    shares = {}
    for name, wires in circuit.input_buses.items():
        value = fmt.to_unsigned(fmt.encode(rng.random()))
        shares[name] = engine.share_input(value, len(wires), rng)
    started = clock_now()
    engine.evaluate(circuit, shares, rng)
    elapsed = clock_now() - started
    return elapsed, circuit.stats().and_gates


@dataclass(frozen=True)
class NaiveBaselineFit:
    """Cubic fit ``seconds = coefficient * N^3`` for one matrix multiply."""

    coefficient: float
    sample_points: List[Tuple[int, float]]

    def seconds_for_multiply(self, n: int) -> float:
        return self.coefficient * n**3

    def seconds_end_to_end(self, n: int, iterations: int) -> float:
        """Raising the matrix to the I-th power costs I-1 multiplies (the
        paper's ``(1750/25)^3 * 40 min * 11``)."""
        return self.seconds_for_multiply(n) * max(1, iterations - 1)

    def years_end_to_end(self, n: int, iterations: int) -> float:
        return self.seconds_end_to_end(n, iterations) / (365.25 * 24 * 3600)


def fit_naive_baseline(
    sizes: Sequence[int],
    fmt: FixedPointFormat,
    parties: int = 3,
) -> NaiveBaselineFit:
    """Measure matrix multiplies at the given sizes and fit the cubic.

    Least squares on ``t = c * N^3`` (zero intercept): the paper's own
    extrapolation method.
    """
    samples = []
    for n in sizes:
        seconds, _ = measure_matmul_seconds(n, fmt, parties)
        samples.append((n, seconds))
    numerator = sum(t * n**3 for n, t in samples)
    denominator = sum(n**6 for n, _ in samples)
    return NaiveBaselineFit(coefficient=numerator / denominator, sample_points=samples)


def estimate_monolithic_seconds(
    n: int,
    iterations: int,
    fmt: FixedPointFormat,
    parties: int = 3,
    sample_sizes: Sequence[int] = (2, 3),
) -> Tuple[float, NaiveBaselineFit]:
    """Project the naive-MPC runtime for an ``n``-bank, ``iterations``-round
    stress test (the paper's "about 287 years" pipeline, §5.5).

    Measures real GMW matrix multiplies at ``sample_sizes``, fits the
    cubic, and extrapolates to ``n`` banks and ``iterations - 1``
    multiplies. Returns the projected seconds together with the fit so
    callers can report the calibration points.
    """
    if n < 1:
        raise ConfigurationError("bank count must be positive")
    fit = fit_naive_baseline(sample_sizes, fmt, parties=parties)
    return fit.seconds_end_to_end(n, iterations), fit
