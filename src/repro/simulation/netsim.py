"""Simulated deployment: per-node traffic and operation metering.

The real DStress runs one node per participant on a WAN; we run every node
in one process and *meter* what would have crossed the network. Meters are
deliberately dumb — they only add up what the protocol layers report — so
the numbers in the bandwidth figures are straight protocol arithmetic, not
wall-clock artifacts of the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "NodeStats",
    "TrafficMeter",
    "PhaseTimer",
    "WanProjection",
    "WanValidation",
    "meter_from_rounds",
    "project_wan_seconds",
    "validate_wan_projection",
]


@dataclass
class NodeStats:
    """Per-node counters for one run."""

    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    exponentiations: int = 0
    ot_transfers: int = 0
    gmw_evaluations: int = 0

    @property
    def total_bytes(self) -> float:
        return self.bytes_sent + self.bytes_received


class TrafficMeter:
    """Aggregates :class:`NodeStats` across all simulated nodes.

    Beyond the historical per-node totals, every send is also attributed
    to its directed *link* ``(src, dst)`` — the granularity the simulated
    WAN transport schedules delays at — so link-level hot spots are
    inspectable (:meth:`link_bytes`, :attr:`num_links`).
    """

    def __init__(self) -> None:
        self._stats: Dict[int, NodeStats] = {}
        self._links: Dict[Tuple[int, int], float] = {}

    def node(self, node_id: int) -> NodeStats:
        if node_id not in self._stats:
            self._stats[node_id] = NodeStats()
        return self._stats[node_id]

    def record_send(self, src: int, dst: int, num_bytes: float) -> None:
        """A point-to-point message: bytes leave ``src`` and enter ``dst``."""
        self.node(src).bytes_sent += num_bytes
        self.node(dst).bytes_received += num_bytes
        self._links[(src, dst)] = self._links.get((src, dst), 0.0) + num_bytes

    def link_bytes(self, src: int, dst: int) -> float:
        """Total bytes carried by the directed link ``src -> dst``."""
        return self._links.get((src, dst), 0.0)

    def links(self) -> Dict[Tuple[int, int], float]:
        """All directed links with their carried bytes (a copy)."""
        return dict(self._links)

    @property
    def num_links(self) -> int:
        """Distinct directed links that carried at least one message."""
        return len(self._links)

    def busiest_links(self, top: int = 5) -> List[Tuple[Tuple[int, int], float]]:
        """The ``top`` heaviest directed links, descending by bytes."""
        ranked = sorted(self._links.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:top]

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._stats)

    @property
    def total_bytes_sent(self) -> float:
        return sum(s.bytes_sent for s in self._stats.values())

    def max_node_bytes_sent(self) -> float:
        return max((s.bytes_sent for s in self._stats.values()), default=0.0)

    def mean_node_bytes_sent(self) -> float:
        if not self._stats:
            return 0.0
        return self.total_bytes_sent / len(self._stats)

    def mean_node_total_bytes(self) -> float:
        if not self._stats:
            return 0.0
        return sum(s.total_bytes for s in self._stats.values()) / len(self._stats)

    def summary(self) -> Dict[str, float]:
        return {
            "nodes": len(self._stats),
            "total_bytes_sent": self.total_bytes_sent,
            "mean_node_bytes_sent": self.mean_node_bytes_sent(),
            "max_node_bytes_sent": self.max_node_bytes_sent(),
            "total_exponentiations": sum(s.exponentiations for s in self._stats.values()),
            "total_ot_transfers": sum(s.ot_transfers for s in self._stats.values()),
        }


def meter_from_rounds(graph, iterations: int, message_bytes: float) -> TrafficMeter:
    """Synthesize the per-link meter of a round-synchronous run.

    The in-memory bus doesn't meter (nothing crosses a wire), which left
    ``RunResult.traffic`` empty for plaintext/sharded/async runs unless a
    :class:`SimulatedWanTransport` happened to be attached. But the byte
    profile of a round-synchronous protocol is straight arithmetic — every
    directed edge carries exactly one fixed-point message per routed
    round — so this reconstructs byte-for-byte what the WAN transport's
    meter would have recorded: ``message_bytes * iterations`` on each
    directed link of ``graph.edges()`` (the transport meters *all* edges
    each round, empty outboxes included, because a silent edge still
    transmits framing in the deployment model).
    """
    meter = TrafficMeter()
    for src, dst in graph.edges():
        meter.record_send(src, dst, message_bytes * iterations)
    return meter


@dataclass(frozen=True)
class WanProjection:
    """What a metered run would cost on a WAN, from its per-link bytes.

    ``sequential_seconds`` is the straight-line deployment: every link's
    payload is waited for one after the other (one latency hit plus the
    serialization time per link). ``overlapped_seconds`` is the schedule
    the async engines implement: all links run concurrently, but each
    *node's* egress is serialized (a NIC sends one byte at a time), so the
    bound is the busiest sender's total serialization time plus one
    latency. The gap between the two is the headroom the paper's §6
    communication-bound claim rests on.
    """

    sequential_seconds: float
    overlapped_seconds: float
    total_bytes: float
    num_links: int

    @property
    def overlap_speedup(self) -> float:
        if self.overlapped_seconds <= 0.0:
            return 1.0
        return self.sequential_seconds / self.overlapped_seconds


def project_wan_seconds(
    meter: TrafficMeter,
    latency_seconds: float,
    bandwidth_bytes: Optional[float] = None,
) -> WanProjection:
    """Project a metered run's wire time onto a WAN model.

    Feeds on the meter's per-link attribution — which, since the secure
    engine meters GMW traffic pairwise, includes every OT-extension byte —
    so the projection covers the crypto traffic that dominates §6, not
    just the round messages. ``bandwidth_bytes=None`` models unconstrained
    links (latency only).
    """
    if latency_seconds < 0:
        raise ValueError("latency cannot be negative")
    if bandwidth_bytes is not None and bandwidth_bytes <= 0:
        raise ValueError("bandwidth must be positive (or None)")
    links = meter.links()
    total_bytes = sum(links.values())

    def serialization(num_bytes: float) -> float:
        return 0.0 if bandwidth_bytes is None else num_bytes / bandwidth_bytes

    sequential = sum(latency_seconds + serialization(b) for b in links.values())
    egress: Dict[int, float] = {}
    for (src, _dst), num_bytes in links.items():
        egress[src] = egress.get(src, 0.0) + serialization(num_bytes)
    overlapped = (latency_seconds if links else 0.0) + max(egress.values(), default=0.0)
    return WanProjection(
        sequential_seconds=sequential,
        overlapped_seconds=overlapped,
        total_bytes=total_bytes,
        num_links=len(links),
    )


@dataclass(frozen=True)
class WanValidation:
    """A measured wall-clock next to its :class:`WanProjection`.

    The closing of the loop the projection always promised: run the same
    byte profile over a *real* transport (the loopback TCP mesh), measure
    wall-clock, and report it against what :func:`project_wan_seconds`
    predicts for the metered links. On loopback the latency term is ~0
    and bandwidth is huge, so ``measured_seconds`` bounds the projection
    from *below* — a measured time exceeding the WAN projection would
    mean the model underestimates real serialization and framing costs.
    """

    measured_seconds: float
    projection: WanProjection

    @property
    def measured_vs_sequential(self) -> float:
        """measured / projected-sequential (``inf`` if nothing projected)."""
        if self.projection.sequential_seconds <= 0.0:
            return float("inf") if self.measured_seconds > 0.0 else 1.0
        return self.measured_seconds / self.projection.sequential_seconds

    @property
    def measured_vs_overlapped(self) -> float:
        """measured / projected-overlapped (``inf`` if nothing projected)."""
        if self.projection.overlapped_seconds <= 0.0:
            return float("inf") if self.measured_seconds > 0.0 else 1.0
        return self.measured_seconds / self.projection.overlapped_seconds

    def summary(self) -> Dict[str, float]:
        return {
            "measured_seconds": self.measured_seconds,
            "projected_sequential_seconds": self.projection.sequential_seconds,
            "projected_overlapped_seconds": self.projection.overlapped_seconds,
            "total_bytes": self.projection.total_bytes,
            "num_links": float(self.projection.num_links),
        }


def validate_wan_projection(
    meter: TrafficMeter,
    latency_seconds: float,
    bandwidth_bytes: Optional[float],
    measured_seconds: float,
) -> WanValidation:
    """Pair a real run's measured wall-clock with the WAN projection of
    its metered byte profile (the ``benchmarks/bench_tcp.py`` contract)."""
    if measured_seconds < 0:
        raise ValueError("measured wall-clock cannot be negative")
    projection = project_wan_seconds(meter, latency_seconds, bandwidth_bytes)
    return WanValidation(measured_seconds=measured_seconds, projection=projection)


@dataclass
class PhaseTimer:
    """Wall-clock seconds accumulated per execution phase."""

    seconds: Dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, elapsed: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + elapsed

    @property
    def total(self) -> float:
        return sum(self.seconds.values())
